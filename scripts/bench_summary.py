"""Render benchmark JSON reports as a GitHub step summary.

Reads every ``reports/bench_*.json`` report
(:func:`benchmarks._report.write_report` schema), prints one verdict
line per report and appends the same markdown to
``$GITHUB_STEP_SUMMARY`` when set.  Both the CI ``bench`` job and the
nightly full-suite workflow call this, so the two summaries cannot
drift.

Usage::

    python scripts/bench_summary.py [--title TITLE] [reports-glob]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def render(title: str, pattern: str) -> list[str]:
    lines = [f"### {title}", ""]
    reports = sorted(glob.glob(pattern))
    if not reports:
        lines.append("_no benchmark reports produced_")
    for path in reports:
        with open(path) as handle:
            report = json.load(handle)
        status = "✅" if report.get("passed") else "❌"
        lines.append(
            f"- {status} `{report['benchmark']}`: "
            f"{report['speedup']:.2f}x "
            f"(floor {report['floor']:.1f}x; legacy "
            f"{report['legacy_seconds']:.2f}s → engine "
            f"{report['engine_seconds']:.2f}s)"
        )
        if "reduction" in report:
            lines.append(
                f"  - candidate reduction "
                f"{report['reduction']:.1f}x (floor "
                f"{report['reduction_floor']:.0f}x) at recall "
                f"{report['recall']:.4f} (floor "
                f"{report['recall_floor']})"
            )
        if "serial_p50_ms" in report:
            lines.append(
                f"  - latency p50 {report['serial_p50_ms']:.1f}ms "
                f"→ {report['coalesced_p50_ms']:.1f}ms, p99 "
                f"{report['serial_p99_ms']:.1f}ms → "
                f"{report['coalesced_p99_ms']:.1f}ms "
                f"(mean batch {report['mean_batch_size']:.1f}, "
                f"{report['clients']} concurrent clients)"
            )
        if "budget_bytes" in report:
            mb = 1 << 20
            rss = "✅" if report.get("rss_ok") else "❌"
            lines.append(
                f"  - {rss} memory budget "
                f"{report['budget_bytes'] / mb:.0f}MB: sharded "
                f"peak RSS {report['sharded_rss_bytes'] / mb:.0f}MB "
                f"(dense {report['dense_rss_bytes'] / mb:.0f}MB, "
                f"{report['n_shards']} shards)"
            )
        if "datasets" in report:
            for row in report["datasets"]:
                graph = "✅" if row.get("graph_identical") else "❌"
                lines.append(
                    f"  - {graph} `{row['dataset']}`: "
                    f"{row['n_records']} records → {row['n_edges']} "
                    f"edges, amortized "
                    f"{row['amortized_seconds'] * 1e6:.1f}us/record "
                    f"vs rebuild {row['rebuild_seconds']:.3f}s "
                    f"({row['speedup']:.0f}x)"
                )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "pattern", nargs="?", default="reports/bench_*.json",
        help="glob of report files (default: reports/bench_*.json)",
    )
    parser.add_argument(
        "--title", default="Engine smoke benchmarks",
        help="summary section heading",
    )
    args = parser.parse_args(argv)
    lines = render(args.title, args.pattern)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as handle:
            handle.write("\n".join(lines) + "\n")
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
