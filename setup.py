"""Setup shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables the
legacy ``pip install -e .`` code path (see the note in pyproject.toml).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Bipartite graph matching algorithms for Clean-Clean Entity "
        "Resolution: a reproduction of the EDBT 2022 empirical evaluation"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
