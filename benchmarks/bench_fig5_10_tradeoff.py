"""Figures 5 and 10 — F-measure / runtime trade-off per dataset.

One scatter per dataset: every (algorithm, input family) combination
plotted by macro-average F1 and runtime; the Pareto frontier names
the dominating combinations.  Expected shape (paper): UMC with
syntactic weights sits on or near the frontier almost everywhere.
The benchmark measures the trade-off aggregation across all datasets.
"""

from __future__ import annotations

from conftest import save_report

from repro.evaluation.report import render_table
from repro.experiments.tradeoff import dominating_points, tradeoff_points


def _all_tradeoffs(results):
    datasets = sorted({r.dataset for r in results}, key=lambda c: int(c[1:]))
    return {ds: tradeoff_points(results, ds) for ds in datasets}


def test_fig5_10_tradeoff(benchmark, experiment_results):
    per_dataset = benchmark(_all_tradeoffs, experiment_results)

    sections = []
    frontier_algorithms: set[str] = set()
    for dataset, points in per_dataset.items():
        frontier = dominating_points(points)
        frontier_algorithms.update(p.algorithm for p in frontier)
        rows = [
            [
                p.algorithm,
                p.family.replace("schema_", ""),
                f"{p.mean_f1:.3f}",
                f"{1000 * p.mean_seconds:.1f}",
                "*" if p in frontier else "",
            ]
            for p in sorted(points, key=lambda p: -p.mean_f1)
        ]
        title = (
            f"Figure {'5' if dataset == 'd1' else '10'} — trade-off on "
            f"{dataset} (* = Pareto frontier)"
        )
        sections.append(
            render_table(
                ["alg", "family", "mean F1", "mean ms", "front"],
                rows,
                title=title,
            )
        )
    save_report("fig5_10_tradeoff", "\n\n".join(sections))

    assert per_dataset
    # Some effective greedy algorithm must appear on the frontier.
    assert frontier_algorithms & {"UMC", "EXC", "BMC", "CNC", "KRC"}
