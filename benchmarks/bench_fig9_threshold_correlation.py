"""Figure 9 — Pearson correlation between the algorithms' thresholds.

Expected shape (paper): strongly positive correlations ("well above
0.8 in the vast majority of cases" for syntactic weights) — the
optimal threshold depends on the input, not the algorithm.  The
benchmark measures the correlation-matrix computation.
"""

from __future__ import annotations

import numpy as np
from conftest import save_report

from repro.evaluation.report import render_table
from repro.experiments.thresholds import threshold_correlations
from repro.matching.registry import PAPER_ALGORITHM_CODES


def test_fig9_threshold_correlations(benchmark, experiment_results):
    figure = benchmark(threshold_correlations, experiment_results)

    sections = []
    syntactic_offdiag = []
    for family, matrix in figure.items():
        rows = [
            [
                PAPER_ALGORITHM_CODES[i],
                *[f"{matrix[i, j]:+.2f}" for j in range(matrix.shape[1])],
            ]
            for i in range(matrix.shape[0])
        ]
        sections.append(
            render_table(
                ["", *PAPER_ALGORITHM_CODES],
                rows,
                title=f"Figure 9 — threshold correlations ({family})",
            )
        )
        if family.endswith("syntactic"):
            mask = ~np.eye(matrix.shape[0], dtype=bool)
            syntactic_offdiag.extend(matrix[mask].tolist())
    save_report("fig9_threshold_correlation", "\n\n".join(sections))

    # Shape: cross-algorithm threshold correlations are positive on
    # average for the syntactic families.
    if syntactic_offdiag:
        assert np.mean(syntactic_offdiag) > 0.3
