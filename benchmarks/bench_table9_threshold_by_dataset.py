"""Table 9 — average optimal threshold per algorithm and dataset.

Expected shape (paper): within one dataset row the eight algorithms'
thresholds are highly similar — knowing one algorithm's optimum is a
strong prior for the others.  The benchmark measures the aggregation.
"""

from __future__ import annotations

import numpy as np
from conftest import save_report

from repro.evaluation.report import render_table
from repro.experiments.thresholds import threshold_by_dataset
from repro.matching.registry import PAPER_ALGORITHM_CODES


def test_table9_threshold_by_dataset(benchmark, experiment_results):
    table = benchmark(threshold_by_dataset, experiment_results)

    families = sorted({family for family, _ in table})
    sections = []
    row_spreads = []
    for family in families:
        rows = []
        datasets = sorted(
            (ds for f, ds in table if f == family),
            key=lambda c: int(c[1:]),
        )
        for dataset in datasets:
            cells = table[(family, dataset)]
            rows.append(
                [
                    dataset,
                    *[
                        f"{cells[code][0]:.2f}±{cells[code][1]:.2f}"
                        for code in PAPER_ALGORITHM_CODES
                    ],
                ]
            )
            means = [cells[code][0] for code in PAPER_ALGORITHM_CODES]
            row_spreads.append(max(means) - min(means))
        sections.append(
            render_table(
                ["ds", *PAPER_ALGORITHM_CODES],
                rows,
                title=f"Table 9 — mean optimal threshold ({family})",
            )
        )
    save_report("table9_threshold_by_dataset", "\n\n".join(sections))

    # Shape: thresholds are dataset-driven — within a row the
    # algorithms' mean optima typically stay within a narrow band.
    assert np.median(row_spreads) < 0.5
