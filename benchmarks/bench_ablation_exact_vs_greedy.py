"""Ablation — exact maximum-weight matching vs the efficient heuristics.

The paper excludes the Hungarian algorithm for its cubic complexity.
This ablation quantifies what the efficient algorithms give up: the
matching-weight ratio and F1 against the exact optimum on corpus-like
graphs, plus the runtime gap that justifies the exclusion.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import save_report

from repro.evaluation.metrics import evaluate_pairs
from repro.evaluation.report import render_table
from repro.graph import SimilarityGraph
from repro.matching import create_matcher

HEURISTICS = ("UMC", "KRC", "EXC", "BMC", "RCA", "GSM")


def _workload(n=150, seed=21):
    rng = np.random.default_rng(seed)
    matrix = np.clip(rng.normal(0.35, 0.15, (n, n)), 0.0, 1.0)
    matrix[np.arange(n), np.arange(n)] = np.clip(
        rng.normal(0.75, 0.1, n), 0, 1
    )
    graph = SimilarityGraph.from_matrix(matrix)
    truth = {(i, i) for i in range(n)}
    return graph, truth


@pytest.mark.parametrize("code", ["HUN", "UMC"])
def test_exact_vs_greedy_runtime(benchmark, code):
    graph, _ = _workload()
    matcher = create_matcher(code)
    result = benchmark(matcher.match, graph, 0.5)
    result.validate(graph)


def _exact_vs_greedy_report():
    graph, truth = _workload()
    threshold = 0.5
    pruned = graph.prune(threshold)
    optimum = create_matcher("HUN").match(graph, threshold)
    optimal_weight = optimum.total_weight(pruned)
    optimal_f1 = evaluate_pairs(optimum.pairs, truth).f_measure

    rows = [["HUN (exact)", "1.000", f"{optimal_f1:.3f}"]]
    ratios = {}
    for code in HEURISTICS:
        result = create_matcher(code).match(graph, threshold)
        weight = result.total_weight(pruned)
        ratio = weight / optimal_weight if optimal_weight else 1.0
        ratios[code] = ratio
        f1 = evaluate_pairs(result.pairs, truth).f_measure
        rows.append([code, f"{ratio:.3f}", f"{f1:.3f}"])
    return rows, ratios, threshold


def test_ablation_exact_vs_greedy_report(benchmark):
    rows, ratios, threshold = benchmark.pedantic(
        _exact_vs_greedy_report, rounds=1, iterations=1
    )
    table = render_table(
        ["alg", "weight / optimal", "F1"],
        rows,
        title="Ablation — exact maximum-weight matching vs heuristics "
              f"(t={threshold})",
    )
    save_report("ablation_exact_vs_greedy", table)

    # Greedy matching has a 1/2 guarantee; in practice it lands much
    # closer to the optimum — assert the guarantee and the typical gap.
    assert ratios["UMC"] >= 0.5
    assert ratios["UMC"] >= 0.8, "greedy should be near-optimal here"
