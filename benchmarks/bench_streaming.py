"""Streaming-tier benchmark: amortized delta updates vs full rebuilds.

Replays each workload dataset's self-join union collection as a
seeded insertion stream through the incremental tier
(:mod:`repro.pipeline.streaming`: frozen blocking-index probes,
per-batch sparse kernel passes, in-place compiled-graph delta merges,
incremental clustering) and asserts the properties the tier exists
for:

* **amortized cost** — at the half-way record the cumulative
  incremental update cost per ingested record is at most
  ``MAX_AMORTIZED_FRACTION`` (10%) of one from-scratch
  compile-and-cluster of the same state, i.e. the per-insert speedup
  over rebuild-per-insert is at least 10x,
* **batch equivalence** — the final compiled graph views and all four
  maintained partitions (CC, MCC, EMCC, GECG) are bit-identical to
  the batch path over the same records,
* **batch-size invariance** — replaying with a different insertion
  batch size (and a different arrival seed) reproduces the same final
  graph and partitions.

Run directly (the CI smoke job does)::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--smoke]

Not a pytest-benchmark harness on purpose: the amortized-cost ratio
needs one cold end-to-end replay per dataset, not statistics over hot
repetitions.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

try:  # direct script execution: benchmarks/ is sys.path[0]
    from _report import write_report as _write_report
except ImportError:  # imported as benchmarks.bench_* from the repo root
    from benchmarks._report import write_report as _write_report

from repro.datasets.catalog import dataset_spec
from repro.datasets.generator import generate_dataset
from repro.pipeline.streaming import (
    COMPILED_VIEWS,
    replay_stream,
    stream_report,
)

#: The amortized-cost guard: cumulative incremental update seconds per
#: ingested record at the half-way probe, as a fraction of one full
#: rebuild (compile + cluster all four algorithms) of the same state.
MAX_AMORTIZED_FRACTION = 0.10

#: The equivalent speedup floor reported to CI (>= 10x).
MIN_SPEEDUP = 1.0 / MAX_AMORTIZED_FRACTION

MEASURE = "jaccard"
BLOCKING = "tokens"
THRESHOLD = 0.5

#: Workload rows: (dataset code, scale, max_pairs, batch size).  The
#: self-join union collection is streamed, so the record count is
#: ``scale * (n_left + n_right)`` of the catalog profile.
WORKLOAD = (
    ("d1", 4.0, 20_000, 17),
    ("d3", 2.0, 20_000, 32),
)

WORKLOAD_SMOKE = (("d1", 1.0, 2_000, 13),)

#: The invariance replay: different batch size *and* arrival seed must
#: land on the identical final state.
ALT_BATCH_SIZE = 7
ALT_SEED = 99


def union_texts(code: str, scale: float, max_pairs: int) -> list[str]:
    """The dirty-ER union collection of one catalog profile."""
    dataset = generate_dataset(
        dataset_spec(code, scale, max_pairs), seed=42
    )
    return dataset.left.texts() + dataset.right.texts()


def run_dataset(code: str, scale: float, max_pairs: int, batch_size: int):
    """Replay one dataset and return its verdict row."""
    texts = union_texts(code, scale, max_pairs)
    result = replay_stream(
        texts,
        measure=MEASURE,
        blocking=BLOCKING,
        threshold=THRESHOLD,
        seed=42,
        batch_size=batch_size,
        rebuild_probe=True,
    )
    report = stream_report(result, texts)

    alternate = replay_stream(
        texts,
        measure=MEASURE,
        blocking=BLOCKING,
        threshold=THRESHOLD,
        seed=ALT_SEED,
        batch_size=ALT_BATCH_SIZE,
    )
    invariant = all(
        np.array_equal(
            getattr(result.compiled, name),
            getattr(alternate.compiled, name),
        )
        for name in COMPILED_VIEWS
    ) and result.partitions() == alternate.partitions()

    amortized = report["probe_update_seconds"] / max(
        report["probe_records"], 1
    )
    speedup = (
        report["rebuild_seconds"] / amortized
        if amortized
        else float("inf")
    )
    return {
        "dataset": code,
        "n_records": report["n_records"],
        "n_edges": report["n_edges"],
        "n_batches": report["n_batches"],
        "graph_identical": report["graph_identical"],
        "partitions_identical": report["partitions_identical"],
        "batch_size_invariant": bool(invariant),
        "amortized_seconds": amortized,
        "rebuild_seconds": report["rebuild_seconds"],
        "update_seconds": report["update_seconds"],
        "speedup": speedup,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI profile instead of the full benchmark workload",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report without failing on the floors",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the machine-readable report to this path",
    )
    args = parser.parse_args(argv)
    workload = WORKLOAD_SMOKE if args.smoke else WORKLOAD

    rows = [run_dataset(*entry) for entry in workload]
    for row in rows:
        partitions = " ".join(
            f"{code}={'ok' if same else 'DIVERGED'}"
            for code, same in row["partitions_identical"].items()
        )
        print(
            f"[bench_streaming] {row['dataset']}: {row['n_records']} "
            f"records -> {row['n_edges']} edges in {row['n_batches']} "
            f"batches; amortized {row['amortized_seconds'] * 1e6:.1f}"
            f"us/record vs rebuild {row['rebuild_seconds']:.3f}s "
            f"({row['speedup']:.0f}x); graph "
            f"{'ok' if row['graph_identical'] else 'DIVERGED'}; "
            f"{partitions}; batch-size "
            f"{'invariant' if row['batch_size_invariant'] else 'VARIANT'}"
        )

    identical = all(
        row["graph_identical"]
        and all(row["partitions_identical"].values())
        and row["batch_size_invariant"]
        for row in rows
    )
    speedup = min(row["speedup"] for row in rows)
    rebuild_seconds = sum(row["rebuild_seconds"] for row in rows)
    amortized_seconds = sum(row["amortized_seconds"] for row in rows)
    print(
        f"[bench_streaming] aggregate: worst amortized fraction "
        f"{1.0 / speedup:.4f} (ceiling {MAX_AMORTIZED_FRACTION}), "
        f"equivalence {'ok' if identical else 'FAILED'}"
    )

    if args.json:
        _write_report(
            args.json,
            benchmark="streaming",
            smoke=args.smoke,
            legacy_seconds=rebuild_seconds,
            engine_seconds=amortized_seconds,
            speedup=speedup,
            floor=MIN_SPEEDUP,
            asserted=not args.no_assert,
            identical=identical,
            datasets=rows,
        )

    if not args.no_assert:
        assert identical, "stream diverged from the batch path"
        assert speedup >= MIN_SPEEDUP, (
            f"amortized per-insert cost exceeds "
            f"{MAX_AMORTIZED_FRACTION:.0%} of a full rebuild: "
            f"{1.0 / speedup:.4f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
