"""Resilience benchmark: runner overhead and resume-after-kill cost.

The fault-tolerant runner (:mod:`repro.pipeline.resilience`) wraps
every fan-out in the pipeline, so it must be close to free when
nothing fails, and a ``--resume`` after a mid-run death must cost a
fraction of starting over.  Two self-asserting gates:

* **Overhead** — the full matching sweep driven through
  ``ResilientPool`` must reach at least ``MIN_OVERHEAD_SPEEDUP``
  (0.95x, i.e. <= ~5% overhead) of the same workload submitted to a
  raw ``concurrent.futures.ProcessPoolExecutor``, with bit-identical
  sweep tables.
* **Resume** — after a run is killed partway (a standing injected
  fault fails the tail of the corpus once five of eight graphs have
  journaled), rerunning with the journal must finish within
  ``MAX_RESUME_FRACTION`` (50%) of the cold wall time and reproduce
  the uninterrupted tables exactly.

Run directly (the CI smoke job does)::

    PYTHONPATH=src python benchmarks/bench_resilience.py [--smoke]

Not a pytest-benchmark harness on purpose: both gates need timed
end-to-end runs of one workload under different failure schedules,
not statistics over hot repetitions.
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

try:  # direct script execution: benchmarks/ is sys.path[0]
    from _report import write_report as _write_report
except ImportError:  # imported as benchmarks.bench_* from the repo root
    from benchmarks._report import write_report as _write_report

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import _sweep_graph, run_matching_sweeps
from repro.graph import SimilarityGraph
from repro.matching.registry import PAPER_ALGORITHM_CODES
from repro.pipeline.resilience import ResilienceError, RunJournal
from repro.pipeline.workbench import GraphRecord
from repro.testing import faults

#: The resilient pool versus a raw executor on the same sweep tasks:
#: the wrapper adds one env probe and one journal miss per task, so
#: anything past ~5% overhead is a regression.
MIN_OVERHEAD_SPEEDUP = 0.95

#: Resumed wall time over cold wall time after 5 of 8 graphs
#: journaled (3 of 6 under ``--smoke``): the resumed run recomputes
#: the un-journaled tail only, so well under half a cold run.
MAX_RESUME_FRACTION = 0.50

CONFIG = ExperimentConfig(bah_max_moves=150, bah_time_limit=60.0)


def synthetic_records(n_graphs: int, m: int, seed: int = 23):
    """Uniform-cost synthetic corpus (equal edge counts per graph)."""
    rng = np.random.default_rng(seed)
    n_left = max(40, m // 50)
    n_right = max(36, (9 * n_left) // 10)
    records = []
    for index in range(n_graphs):
        graph = SimilarityGraph(
            n_left,
            n_right,
            rng.integers(0, n_left, m),
            rng.integers(0, n_right, m),
            np.maximum(np.round(rng.random(m), 2), 0.01),
            name=f"g{index}",
        )
        truth = {(int(i), int(i % n_right)) for i in range(n_left // 2)}
        records.append(
            GraphRecord(
                graph=graph,
                dataset=f"d{index}",
                family="synthetic",
                function=f"fn{index}",
                category="BLC",
                ground_truth=truth,
            )
        )
    return records


def _flatten(results):
    """The timing-free content of a sweep table (exact floats)."""
    return [
        (
            result.dataset,
            code,
            [(point.threshold, point.scores) for point in sweep.points],
        )
        for result in results
        for code, sweep in result.sweeps.items()
    ]


def _raw_pool_sweep(records, workers: int):
    """The pre-resilience driver: bare executor, no retry, no journal."""
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _sweep_graph,
                record.graph,
                record.ground_truth,
                PAPER_ALGORITHM_CODES,
                CONFIG,
            )
            for record in records
        ]
        return [future.result() for future in futures]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller CI profile (6 graphs instead of 8)",
    )
    parser.add_argument(
        "--workers", "-j", type=int, default=2,
        help="worker processes for the overhead gate",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="overhead timing repeats; the per-driver minimum is used",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report without failing on the thresholds",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the machine-readable report to this path",
    )
    args = parser.parse_args(argv)
    n_graphs, m = (6, 20_000) if args.smoke else (8, 40_000)
    records = synthetic_records(n_graphs, m)

    # Warm-up: one untimed serial pass absorbs import and allocator
    # costs, and its result is the bit-identity reference.
    reference = run_matching_sweeps(records, CONFIG)

    # ------------------------------------------------------------------
    # Gate 1: resilient-pool overhead vs a raw executor
    # ------------------------------------------------------------------
    raw_seconds = resilient_seconds = float("inf")
    for _ in range(max(args.repeats, 1)):
        start = time.perf_counter()
        raw = _raw_pool_sweep(records, args.workers)
        raw_seconds = min(raw_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        resilient = run_matching_sweeps(
            records, CONFIG, workers=args.workers
        )
        resilient_seconds = min(
            resilient_seconds, time.perf_counter() - start
        )

    assert _flatten(resilient) == _flatten(reference), (
        "resilient pooled sweep diverged from the serial reference"
    )
    raw_flat = [
        (record.dataset, code,
         [(point.threshold, point.scores) for point in sweeps[code].points])
        for record, sweeps in zip(records, raw)
        for code in PAPER_ALGORITHM_CODES
    ]
    assert raw_flat == _flatten(reference), (
        "raw-pool and resilient results diverged"
    )
    overhead_speedup = (
        raw_seconds / resilient_seconds if resilient_seconds else 1.0
    )
    print(
        f"[bench_resilience] overhead: raw pool {raw_seconds:.2f}s | "
        f"resilient {resilient_seconds:.2f}s | ratio "
        f"{overhead_speedup:.3f}x (floor {MIN_OVERHEAD_SPEEDUP}, "
        f"{n_graphs} graphs x {len(PAPER_ALGORITHM_CODES)} algorithms, "
        f"workers={args.workers}, min of {max(args.repeats, 1)})"
    )

    # ------------------------------------------------------------------
    # Gate 2: resume-after-kill vs cold wall time (serial, so the
    # ratio reflects work skipped, not scheduling noise)
    # ------------------------------------------------------------------
    journaled = n_graphs - (n_graphs // 8 + 2)  # 5 of 8, 3 of 6
    with tempfile.TemporaryDirectory(prefix="repro-journal-") as root:
        start = time.perf_counter()
        cold = run_matching_sweeps(records, CONFIG)
        cold_seconds = time.perf_counter() - start

        # Kill the run once `journaled` graphs have committed: a
        # standing fault permanently fails every later graph.
        rules = [
            {"match": f":fn{index}:", "action": "error", "attempts": None}
            for index in range(journaled, n_graphs)
        ]
        os.environ[faults.ENV_VAR] = faults.fault_spec(rules)
        try:
            journal = RunJournal(root, "bench-resume")
            try:
                run_matching_sweeps(records, CONFIG, journal=journal)
            except ResilienceError:
                pass
            else:
                raise AssertionError("the injected mid-run kill never fired")
        finally:
            del os.environ[faults.ENV_VAR]
        assert len(journal.completed_keys()) == journaled, (
            f"expected {journaled} journaled graphs, found "
            f"{len(journal.completed_keys())}"
        )

        start = time.perf_counter()
        resumed = run_matching_sweeps(records, CONFIG, journal=journal)
        resume_seconds = time.perf_counter() - start

    assert _flatten(resumed) == _flatten(cold), (
        "resumed sweep diverged from the uninterrupted run"
    )
    resume_fraction = resume_seconds / cold_seconds if cold_seconds else 0.0
    print(
        f"[bench_resilience] resume: cold {cold_seconds:.2f}s | resumed "
        f"after kill at {journaled}/{n_graphs} graphs "
        f"{resume_seconds:.2f}s | fraction {resume_fraction:.2f} "
        f"(ceiling {MAX_RESUME_FRACTION}, bit-identical)"
    )

    overhead_ok = overhead_speedup >= MIN_OVERHEAD_SPEEDUP
    resume_ok = resume_fraction <= MAX_RESUME_FRACTION
    passed = overhead_ok and resume_ok
    if args.json:
        _write_report(
            args.json,
            "bench_resilience",
            args.smoke,
            legacy_seconds=raw_seconds,
            engine_seconds=resilient_seconds,
            speedup=overhead_speedup,
            floor=MIN_OVERHEAD_SPEEDUP,
            asserted=not args.no_assert,
            cold_seconds=cold_seconds,
            resume_seconds=resume_seconds,
            resume_fraction=resume_fraction,
            resume_ceiling=MAX_RESUME_FRACTION,
            resume_passed=resume_ok,
        )
    if not args.no_assert:
        assert overhead_ok, (
            f"resilient-pool overhead ratio {overhead_speedup:.3f}x is "
            f"below the {MIN_OVERHEAD_SPEEDUP}x floor"
        )
        assert resume_ok, (
            f"resume fraction {resume_fraction:.2f} exceeds the "
            f"{MAX_RESUME_FRACTION} ceiling"
        )
    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
