"""Table 7 — tuned UMC vs the state-of-the-art stand-ins (D2-D5).

Expected shape (paper): UMC beats the unsupervised comparator
(ZeroER) consistently; the supervised learned model wins at most on
the noisiest product dataset.  The benchmark measures one ZeroER-like
end-to-end matching (EM fit + posterior matching).
"""

from __future__ import annotations

import numpy as np
from conftest import save_report

from repro.baselines import ZeroERLikeMatcher
from repro.evaluation.report import render_table
from repro.experiments.sota import run_sota_comparison
from repro.graph import SimilarityGraph


def _zeroer_workload():
    rng = np.random.default_rng(7)
    n = 150
    matrix = np.clip(rng.normal(0.3, 0.1, (n, n)), 0.01, 1.0)
    matrix[np.arange(n), np.arange(n)] = np.clip(
        rng.normal(0.85, 0.05, n), 0, 1
    )
    return SimilarityGraph.from_matrix(matrix)


def test_zeroer_like_end_to_end(benchmark):
    graph = _zeroer_workload()
    matcher = ZeroERLikeMatcher()
    result = benchmark(matcher.match, graph, 0.0)
    result.validate(graph)
    assert len(result.pairs) > 0


def test_table7_sota_comparison(benchmark):
    rows = benchmark(
        run_sota_comparison,
        ("d2", "d3", "d4", "d5"),
        0.04,
        12_000,
        42,
        (("char", 2), ("token", 1), ("char", 4)),
    )
    body = [
        [
            row.dataset,
            f"{row.zeroer_f1:.2f}",
            f"{row.learned_f1:.2f}",
            f"{row.umc_f1:.2f}",
            f"({row.umc_model}, t={row.umc_threshold:.2f})",
        ]
        for row in rows
    ]
    table = render_table(
        ["ds", "ZeroER-like", "Learned (DITTO role)", "UMC", "UMC config"],
        body,
        title="Table 7 — comparison to state-of-the-art matching stand-ins",
    )
    save_report("table7_sota", table)

    # Shape: UMC outperforms the unsupervised baseline on most datasets.
    wins = sum(1 for row in rows if row.umc_f1 >= row.zeroer_f1)
    assert wins >= len(rows) - 1
