"""Table 8 — distribution of optimal similarity thresholds per family.

Mean, std, quartiles of every algorithm's optimal threshold per input
family, plus the Pearson correlation with the normalized graph size.
Expected shape (paper): schema-based syntactic thresholds are high
(negative size correlation), schema-agnostic syntactic thresholds are
much lower (positive size correlation).  The benchmark measures the
statistics computation.
"""

from __future__ import annotations

from conftest import save_report

from repro.evaluation.report import render_table
from repro.experiments.thresholds import threshold_stats


def test_table8_threshold_stats(benchmark, experiment_results):
    table = benchmark(threshold_stats, experiment_results)

    sections = []
    for family, rows in table.items():
        body = [
            [
                row.algorithm,
                f"{row.mean:.2f}±{row.std:.2f}",
                f"{row.minimum:.2f}",
                f"{row.q1:.2f}",
                f"{row.median:.2f}",
                f"{row.q3:.2f}",
                f"{row.maximum:.2f}",
                f"{row.correlation_with_size:+.2f}",
            ]
            for row in rows
        ]
        sections.append(
            render_table(
                ["alg", "mean±std", "min", "Q1", "Q2", "Q3", "max",
                 "rho(t,size)"],
                body,
                title=f"Table 8 — optimal thresholds ({family})",
            )
        )
    save_report("table8_threshold_stats", "\n\n".join(sections))

    # Shape: schema-based syntactic thresholds are on average higher
    # than schema-agnostic syntactic ones (the paper's headline).
    if (
        "schema_based_syntactic" in table
        and "schema_agnostic_syntactic" in table
    ):
        sb = {r.algorithm: r.mean for r in table["schema_based_syntactic"]}
        sa = {r.algorithm: r.mean
              for r in table["schema_agnostic_syntactic"]}
        higher = sum(1 for code in sb if sb[code] >= sa[code])
        assert higher >= len(sb) // 2
