"""Figure 3 — P/R/F1 distributions per input-family.

Expected shape (paper): schema-based syntactic weights push precision
up for (almost) every algorithm relative to the overall averages;
schema-agnostic syntactic weights rebalance precision and recall;
schema-agnostic semantic weights degrade every measure.  The
benchmark measures the per-family aggregation.
"""

from __future__ import annotations

from conftest import save_report

from repro.evaluation.report import format_mu_sigma, render_table
from repro.experiments.effectiveness import family_effectiveness


def test_fig3_family_distributions(benchmark, experiment_results):
    breakdown = benchmark(family_effectiveness, experiment_results)

    sections = []
    for family, rows in breakdown.items():
        body = [
            [
                row.algorithm,
                format_mu_sigma(row.precision_mu, row.precision_sigma),
                format_mu_sigma(row.recall_mu, row.recall_sigma),
                format_mu_sigma(row.f1_mu, row.f1_sigma),
                row.n_graphs,
            ]
            for row in rows
        ]
        sections.append(
            render_table(
                ["alg", "precision", "recall", "F1", "|G|"],
                body,
                title=f"Figure 3 ({family})",
            )
        )
    save_report("fig3_family_distributions", "\n\n".join(sections))

    # The paper's within-family ordering must hold in every family:
    # CNC tops precision, KRC or UMC tops F1, BAH trails everything.
    # (The paper's *cross*-family comparison — schema-based syntactic
    # precision exceeding the overall average — hinges on the real
    # attribute vocabularies; our synthetic schema-based attributes
    # are shorter/noisier than the full profiles, which inverts that
    # particular direction.  Documented in EXPERIMENTS.md.)
    for family, rows in breakdown.items():
        by_code = {r.algorithm: r for r in rows}
        assert by_code["CNC"].precision_mu == max(
            r.precision_mu for r in rows
        ), f"CNC should top precision in {family}"
        f1_ranking = sorted(by_code, key=lambda c: -by_code[c].f1_mu)
        assert {"KRC", "UMC"} & set(f1_ranking[:3]), (
            f"KRC/UMC should lead F1 in {family}"
        )
        assert by_code["BAH"].f1_mu == min(r.f1_mu for r in rows), (
            f"BAH should trail F1 in {family}"
        )
