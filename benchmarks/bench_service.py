"""Service benchmark: micro-batch coalescing vs serial execution.

Stands up the ER-as-a-service app twice over the same warm
:class:`~repro.service.resolver.ResolverService` configuration — once
with the micro-batch scheduler coalescing (the production path) and
once with ``coalesce=False`` (strict serial per-request execution) —
and drives both with ``CLIENTS`` concurrent in-process clients, each
issuing a stream of ``POST /resolve`` requests.  Then

* asserts the coalesced path reaches at least ``MIN_SPEEDUP``x the
  serial throughput at the same concurrency,
* asserts every coalesced response body is **byte-identical** to the
  serial response for the same query (per-pair kernels are exact, so
  batch composition cannot change a score), and
* reports p50/p99 request latency for both modes.

Run directly (the CI smoke job does)::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--json PATH]

Latency is measured around the full ASGI round trip (parse, schedule,
kernel pass, serialize), in-process — no sockets, so the numbers
isolate the engine + scheduler cost the service adds per request.

Not a pytest-benchmark harness on purpose: the comparison needs two
end-to-end concurrent runs of the same request stream, not statistics
over many hot repetitions of one call.
"""

from __future__ import annotations

import argparse
import asyncio
import statistics
import sys
import time

try:  # direct script execution: benchmarks/ is sys.path[0]
    from _report import write_report as _write_report
except ImportError:  # imported as benchmarks.bench_* from the repo root
    from benchmarks._report import write_report as _write_report

from repro.service import ServiceConfig, create_app
from repro.service.testclient import AsgiClient

#: Required coalesced-vs-serial throughput gain at CLIENTS concurrent
#: clients.  Coalescing amortizes one StringBatch + SparsePlan +
#: kernel pass over the whole batch, so the gain tracks the achieved
#: batch size; 2x is the acceptance floor, typical gains are higher.
MIN_SPEEDUP = 2.0

#: Concurrent in-process clients (the acceptance criterion's 16).
CLIENTS = 16

#: Requests each client issues per run.
REQUESTS_FULL = 24
REQUESTS_SMOKE = 6

#: Dataset profile served by the benchmark app.
DATASET = "d1"
SCALE_FULL = 0.4
SCALE_SMOKE = 0.05
MAX_PAIRS = 2000


def _service_config(smoke: bool, coalesce: bool) -> ServiceConfig:
    return ServiceConfig(
        datasets=(DATASET,),
        blocking="tokens",
        measure="jaccard",
        scale=SCALE_SMOKE if smoke else SCALE_FULL,
        max_pairs=MAX_PAIRS,
        seed=42,
        tick=0.002,
        max_batch=CLIENTS * 2,
        coalesce=coalesce,
    )


def _queries(app, per_client: int) -> list[list[str]]:
    """Per-client query streams drawn from the served dataset's own
    left collection (every record resolves against real candidates)."""
    service = app.state["service"]
    index = service.index(DATASET)
    lefts, _ = index.cache.texts()
    streams = []
    for client in range(CLIENTS):
        streams.append(
            [
                lefts[(client * per_client + k) % len(lefts)]
                for k in range(per_client)
            ]
        )
    return streams


async def _drive(app, per_client: int):
    """Run the concurrent client fleet; returns (seconds, latencies,
    bodies, batch sizes) with bodies keyed by (client, request)."""
    async with AsgiClient(app) as client:
        streams = _queries(app, per_client)
        latencies: list[float] = []
        bodies: dict[tuple[int, int], bytes] = {}
        batch_sizes: list[int] = []

        async def one_client(cid: int) -> None:
            for k, query in enumerate(streams[cid]):
                start = time.perf_counter()
                response = await client.post(
                    "/resolve",
                    json_body={"dataset": DATASET, "record": query},
                )
                latencies.append(time.perf_counter() - start)
                assert response.status == 200, response.body
                bodies[(cid, k)] = response.body
                batch_sizes.append(
                    int(response.headers.get("x-batch-size", "1"))
                )

        begin = time.perf_counter()
        await asyncio.gather(
            *[one_client(cid) for cid in range(CLIENTS)]
        )
        seconds = time.perf_counter() - begin
    return seconds, latencies, bodies, batch_sizes


def _percentiles(latencies: list[float]) -> tuple[float, float]:
    ranked = sorted(latencies)
    p50 = statistics.median(ranked)
    p99 = ranked[min(len(ranked) - 1, int(0.99 * len(ranked)))]
    return p50, p99


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--json", dest="json_path", default=None)
    parser.add_argument("--no-assert", action="store_true")
    args = parser.parse_args(argv)
    per_client = REQUESTS_SMOKE if args.smoke else REQUESTS_FULL
    total = CLIENTS * per_client

    serial_app = create_app(_service_config(args.smoke, coalesce=False))
    serial_seconds, serial_lat, serial_bodies, _ = asyncio.run(
        _drive(serial_app, per_client)
    )
    coalesced_app = create_app(_service_config(args.smoke, coalesce=True))
    batched_seconds, batched_lat, batched_bodies, batch_sizes = asyncio.run(
        _drive(coalesced_app, per_client)
    )

    assert serial_bodies.keys() == batched_bodies.keys()
    mismatched = [
        key
        for key in serial_bodies
        if serial_bodies[key] != batched_bodies[key]
    ]
    assert not mismatched, (
        f"{len(mismatched)} coalesced responses differ from serial: "
        f"{mismatched[:5]}"
    )

    speedup = serial_seconds / batched_seconds
    serial_p50, serial_p99 = _percentiles(serial_lat)
    batched_p50, batched_p99 = _percentiles(batched_lat)
    mean_batch = sum(batch_sizes) / len(batch_sizes)
    print(
        f"serial    : {total} requests in {serial_seconds:.2f}s "
        f"({total / serial_seconds:.0f} rps)  "
        f"p50 {serial_p50 * 1000:.1f}ms  p99 {serial_p99 * 1000:.1f}ms"
    )
    print(
        f"coalesced : {total} requests in {batched_seconds:.2f}s "
        f"({total / batched_seconds:.0f} rps)  "
        f"p50 {batched_p50 * 1000:.1f}ms  p99 {batched_p99 * 1000:.1f}ms  "
        f"mean batch {mean_batch:.1f}"
    )
    print(
        f"throughput gain {speedup:.2f}x (floor {MIN_SPEEDUP}x) — "
        f"all {total} responses byte-identical to the serial path"
    )
    if args.json_path:
        _write_report(
            args.json_path,
            benchmark="service",
            smoke=args.smoke,
            legacy_seconds=serial_seconds,
            engine_seconds=batched_seconds,
            speedup=speedup,
            floor=MIN_SPEEDUP,
            asserted=not args.no_assert,
            clients=CLIENTS,
            requests=total,
            mean_batch_size=mean_batch,
            serial_p50_ms=serial_p50 * 1000,
            serial_p99_ms=serial_p99 * 1000,
            coalesced_p50_ms=batched_p50 * 1000,
            coalesced_p99_ms=batched_p99 * 1000,
        )
    if not args.no_assert:
        assert mean_batch > 1.0, (
            f"coalescing never batched (mean batch {mean_batch:.2f})"
        )
        assert speedup >= MIN_SPEEDUP, (
            f"coalescing gain {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x floor"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
