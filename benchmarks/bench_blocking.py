"""Blocking benchmark: dense all-pairs scoring vs candidate generation.

Runs the schema-based measure suite over a slice of the dataset
catalog twice — once through the dense all-pairs engine path
(:meth:`~repro.pipeline.engine.SimilarityEngine.compute`) and once
through the blocked candidate path
(:meth:`~repro.pipeline.engine.SimilarityEngine.compute_pairs` with a
per-dataset ``blocking=`` spec) — then

* asserts the candidate sets reach at least ``MIN_REDUCTION``x pair
  reduction at ``MIN_RECALL`` ground-truth pair recall, aggregated
  over the workload (total dense cells / total candidate pairs, and
  total recovered truth pairs / total truth pairs),
* asserts every blocked score is **bit-identical** to the dense
  matrix on every retained cell (the sparse kernels run the same
  integer DPs, restricted to candidate cells), including one dense
  -then-gather fallback family,
* asserts the blocked suite is at least ``MIN_SPEEDUP``x faster
  wall-clock than the dense suite,
* re-runs the blocked path under ``--threads N`` and asserts the
  candidate sets and scores are invariant under the thread count, and
* completes a synthetic ~10^6-record run under the blocked path where
  the dense grid (~2.5 * 10^11 cells, ~2 TB of float64) is infeasible.

Run directly (the CI smoke job does)::

    PYTHONPATH=src python benchmarks/bench_blocking.py [--smoke] [-j N]

``--artifact-store PATH`` (plus optional ``--store-read-tier PATH``)
backs the blocked engines with a persistent
:class:`~repro.pipeline.store.ArtifactStore`, exercising the
content-addressed ``candidate_set`` artifacts across runs.

Not a pytest-benchmark harness on purpose: the comparison needs cold
end-to-end runs of the same workload, not statistics over many hot
repetitions.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

try:  # direct script execution: benchmarks/ is sys.path[0]
    from _report import write_report as _write_report
except ImportError:  # imported as benchmarks.bench_* from the repo root
    from benchmarks._report import write_report as _write_report

from repro.datasets.catalog import dataset_spec
from repro.datasets.generator import CleanCleanDataset, DatasetSpec, generate_dataset
from repro.datasets.profile import EntityCollection, EntityProfile
from repro.pipeline.blocking import build_candidate_set
from repro.pipeline.engine import SimilarityEngine
from repro.pipeline.kernels import kernel_threads
from repro.pipeline.similarity_functions import SimilarityFunctionSpec
from repro.pipeline.store import ArtifactStore, dataset_store_key
from repro.textsim.registry import SCHEMA_BASED_MEASURES

#: Aggregate candidate-quality floors over the benchmark workload:
#: total dense cells / total candidate pairs, and total recovered
#: ground-truth pairs / total ground-truth pairs.
MIN_REDUCTION = 10.0
MIN_RECALL = 0.98

#: Required blocked-vs-dense speedup on the schema-based suite.  The
#: sparse plan scores only candidate cells, so the speedup tracks the
#: pair reduction (minus shared artifact costs).
MIN_SPEEDUP = 3.0

#: Floor for the tiny ``--smoke`` profile, where per-run timing noise
#: on loaded CI runners is large relative to the workload.
MIN_SPEEDUP_SMOKE = 2.0

#: Candidate-quality corpora: (dataset code, scale, max_pairs,
#: blocking spec), measured at multi-million-cell scale (candidate
#: generation is cheap; only the dense *scoring* grid is not).  The
#: spec is tuned per noise profile — d1's light noise keeps word
#: tokens intact (plain token blocking), d4/d7 corrupt whole tokens so
#: only q-gram keys survive the typos.  d6's heavy missing-value rate
#: leaves some duplicates with no shared keys at all; it cannot reach
#: the recall floor at 10x reduction and is deliberately excluded.
QUALITY_WORKLOAD = (
    ("d1", 4.0, 4_000_000, "tokens:max_df=0.05"),
    ("d4", 2.0, 4_000_000, "tokens:q=4,max_df=0.02"),
    ("d7", 2.0, 4_000_000, "tokens:q=4,max_df=0.02"),
)

QUALITY_WORKLOAD_SMOKE = (
    ("d1", 1.0, 500_000, "tokens:max_df=0.05"),
    ("d4", 0.5, 500_000, "tokens:q=4,max_df=0.02"),
)

#: Timed-suite corpora: quality tuple + the scored attribute.  Scales
#: are capped so the *dense* reference pass stays in benchmark range —
#: d4's authors attribute has 233-char outliers that pad every
#: alignment DP, making its dense grid the most expensive per cell
#: (exactly the case blocking exists for).
SUITE_WORKLOAD = (
    ("d1", 4.0, 4_000_000, "tokens:max_df=0.05", "name"),
    ("d4", 0.5, 500_000, "tokens:q=4,max_df=0.02", "authors"),
    ("d7", 2.0, 4_000_000, "tokens:q=4,max_df=0.02", "name"),
)

SUITE_WORKLOAD_SMOKE = (
    ("d1", 1.0, 500_000, "tokens:max_df=0.05", "name"),
    ("d4", 0.25, 125_000, "tokens:q=4,max_df=0.02", "authors"),
)

_WARMUP = ("d1", 0.03, 1_000, "tokens", "name")

#: Records per side of the synthetic mega run (~10^6 / ~10^5 total).
MEGA_RECORDS = 500_000
MEGA_RECORDS_SMOKE = 50_000


def _load_workload(workload, store_path, read_tier):
    """``(label, specs, dense engine, blocked engine)`` per corpus."""
    loaded = []
    for code, scale, max_pairs, blocking, attribute in workload:
        dataset = generate_dataset(
            dataset_spec(code, scale=scale, max_pairs=max_pairs), seed=42
        )
        store = None
        dataset_key = None
        if store_path is not None:
            store = ArtifactStore(store_path, read_tier=read_tier)
            dataset_key = dataset_store_key(code, scale, max_pairs, 42)
        specs = [
            SimilarityFunctionSpec(
                family="schema_based_syntactic",
                details={"attribute": attribute, "measure": measure},
                name=measure,
            )
            for measure in SCHEMA_BASED_MEASURES
        ]
        dense = SimilarityEngine(dataset)
        blocked = SimilarityEngine(
            dataset,
            store=store,
            dataset_key=dataset_key,
            blocking=blocking,
        )
        loaded.append((f"{code}.{attribute}:{blocking}", specs, dense, blocked))
    return loaded


def run_dense(loaded) -> tuple[dict, float]:
    """The dense suite; returns matrices + wall-clock seconds."""
    matrices = {}
    start = time.perf_counter()
    for label, specs, dense, _ in loaded:
        for spec in specs:
            matrices[(label, spec.name)] = dense.compute(spec)
    return matrices, time.perf_counter() - start


def run_blocked(loaded) -> tuple[dict, float]:
    """The blocked suite; returns PairScores + wall-clock seconds."""
    pairs = {}
    start = time.perf_counter()
    for label, specs, _, blocked in loaded:
        for spec in specs:
            pairs[(label, spec.name)] = blocked.compute_pairs(spec)
    return pairs, time.perf_counter() - start


def assert_identical(matrices: dict, pairs: dict) -> None:
    """Every blocked score equals the dense matrix on its cell."""
    assert matrices.keys() == pairs.keys()
    for key, scores in pairs.items():
        dense_cells = matrices[key][scores.left, scores.right]
        assert np.array_equal(dense_cells, scores.values), (
            f"blocked scores differ from dense cells for {key}"
        )


def candidate_quality(workload) -> tuple[float, float, float, list[str]]:
    """Aggregate reduction + recall (+ build seconds) over the workload."""
    pairs = cells = hits = truth = 0
    build_seconds = 0.0
    lines = []
    for code, scale, max_pairs, blocking in workload:
        dataset = generate_dataset(
            dataset_spec(code, scale=scale, max_pairs=max_pairs), seed=42
        )
        start = time.perf_counter()
        candidates = build_candidate_set(
            dataset.left.texts(), dataset.right.texts(), blocking
        )
        seconds = time.perf_counter() - start
        recall = candidates.recall(dataset.ground_truth)
        lines.append(
            f"[bench_blocking] {code} {candidates.n_left}x"
            f"{candidates.n_right} {blocking}: {candidates.n_pairs} "
            f"candidates, reduction {candidates.reduction:.1f}x, recall "
            f"{recall:.4f} ({seconds:.2f}s)"
        )
        pairs += candidates.n_pairs
        cells += candidates.n_left * candidates.n_right
        hits += round(recall * len(dataset.ground_truth))
        truth += len(dataset.ground_truth)
        build_seconds += seconds
    return cells / pairs, hits / truth, build_seconds, lines


def assert_fallback_gather(loaded) -> None:
    """Dense-then-gather families return the dense cells verbatim."""
    label, _, dense, blocked = loaded[0]
    spec = SimilarityFunctionSpec(
        family="schema_agnostic_syntactic",
        details={"model": "vector", "unit": "char", "n": 2, "measure": "cosine_tf"},
        name="vector_fallback",
    )
    matrix = dense.compute(spec)
    scores = blocked.compute_pairs(spec)
    assert scores.fallback, "vector family should take the gather fallback"
    assert np.array_equal(matrix[scores.left, scores.right], scores.values), (
        f"gather fallback differs from dense cells on {label}"
    )


def _mega_dataset(n_records: int) -> CleanCleanDataset:
    """Synthetic clean-clean dataset with ``n_records`` per side.

    Every record carries one globally-rare key token (shared exactly
    by its true match on the other side) plus side-local filler, so
    token blocking recovers every truth pair from ~n^2 cells.  The
    right side is shuffled so matches are not index-aligned.
    """
    rng = np.random.default_rng(42)
    left = EntityCollection(
        name="mega-left",
        profiles=[
            EntityProfile(
                identifier=f"L{i}",
                attributes={"name": f"rec{i:07d} alpha{i % 997:03d}"},
            )
            for i in range(n_records)
        ],
    )
    order = rng.permutation(n_records)
    right = EntityCollection(
        name="mega-right",
        profiles=[
            EntityProfile(
                identifier=f"R{j}",
                attributes={"name": f"rec{int(order[j]):07d} beta{j % 983:03d}"},
            )
            for j in range(n_records)
        ],
    )
    spec = DatasetSpec(
        code="mega",
        domain="synthetic",
        n_left=n_records,
        n_right=n_records,
        n_duplicates=n_records,
        schema_attributes=("name",),
    )
    truth = {(int(order[j]), j) for j in range(n_records)}
    return CleanCleanDataset(spec=spec, left=left, right=right, ground_truth=truth)


def bench_mega(n_records: int) -> str:
    """End-to-end blocked scoring of a ~2 * n_records corpus."""
    dataset = _mega_dataset(n_records)
    engine = SimilarityEngine(dataset, blocking="tokens")
    spec = SimilarityFunctionSpec(
        family="schema_based_syntactic",
        details={"attribute": "name", "measure": "levenshtein"},
        name="levenshtein",
    )
    start = time.perf_counter()
    scores = engine.compute_pairs(spec)
    seconds = time.perf_counter() - start
    candidates = engine.cache.candidate_set(engine.blocking)
    recall = candidates.recall(dataset.ground_truth)
    assert recall == 1.0, f"mega run lost truth pairs (recall {recall})"
    assert candidates.reduction >= n_records * 0.5, (
        f"mega reduction {candidates.reduction:.0f}x below the "
        f"{n_records // 2}x floor"
    )
    dense_cells = n_records * n_records
    return (
        f"[bench_blocking] mega {n_records}x{n_records} tokens: "
        f"{scores.n_pairs} scored pairs from {dense_cells:.1e} dense "
        f"cells (reduction {candidates.reduction:.0f}x, recall "
        f"{recall:.1f}) in {seconds:.2f}s end-to-end"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI profile instead of the full benchmark workload",
    )
    parser.add_argument(
        "--threads", "-j", type=int, default=1,
        help="also run the blocked path with N kernel threads and "
        "assert the candidate sets and scores are invariant",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report without failing on the quality/speedup floors",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="interleaved timing repeats; the per-path minimum is used",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the machine-readable report to this path",
    )
    parser.add_argument(
        "--artifact-store", type=str, default=None,
        help="back the blocked engines with a persistent artifact "
        "store at this path (candidate sets become store artifacts)",
    )
    parser.add_argument(
        "--store-read-tier", type=str, default=None,
        help="layer a shared read-only store under --artifact-store",
    )
    args = parser.parse_args(argv)
    quality_workload = (
        QUALITY_WORKLOAD_SMOKE if args.smoke else QUALITY_WORKLOAD
    )
    suite_workload = SUITE_WORKLOAD_SMOKE if args.smoke else SUITE_WORKLOAD

    reduction, recall, build_seconds, lines = candidate_quality(
        quality_workload
    )
    for line in lines:
        print(line)
    print(
        f"[bench_blocking] aggregate: reduction {reduction:.1f}x "
        f"(floor {MIN_REDUCTION:.0f}x), recall {recall:.4f} (floor "
        f"{MIN_RECALL}), candidate builds {build_seconds:.2f}s"
    )

    loaded = _load_workload(
        suite_workload, args.artifact_store, args.store_read_tier
    )
    warm = _load_workload((_WARMUP,), None, None)
    run_dense(warm)
    run_blocked(warm)

    # Interleave the passes and keep each path's minimum: the minimum
    # of repeated runs is the noise-robust wall-clock estimator.
    dense_seconds = blocked_seconds = float("inf")
    matrices: dict = {}
    pairs: dict = {}
    for _ in range(max(args.repeats, 1)):
        matrices, seconds = run_dense(loaded)
        dense_seconds = min(dense_seconds, seconds)
        pairs, seconds = run_blocked(loaded)
        blocked_seconds = min(blocked_seconds, seconds)

    assert_identical(matrices, pairs)
    assert_fallback_gather(loaded)
    speedup = (
        dense_seconds / blocked_seconds if blocked_seconds else float("inf")
    )
    print(
        f"[bench_blocking] {len(loaded)} corpora x "
        f"{len(SCHEMA_BASED_MEASURES)} measures | dense "
        f"{dense_seconds:.2f}s | blocked {blocked_seconds:.2f}s | "
        f"speedup {speedup:.2f}x (bit-identical on retained cells, "
        f"min of {max(args.repeats, 1)})"
    )

    if args.threads > 1:
        threaded_loaded = _load_workload(suite_workload, None, None)
        with kernel_threads(args.threads):
            threaded, threaded_seconds = run_blocked(threaded_loaded)
        assert threaded.keys() == pairs.keys()
        for key, scores in threaded.items():
            baseline = pairs[key]
            assert np.array_equal(baseline.left, scores.left) and (
                np.array_equal(baseline.right, scores.right)
            ), f"candidate set changed under threads={args.threads}: {key}"
            assert np.array_equal(baseline.values, scores.values), (
                f"scores changed under threads={args.threads}: {key}"
            )
        print(
            f"[bench_blocking] blocked x{args.threads} threads "
            f"{threaded_seconds:.2f}s (bit-identical to serial)"
        )

    print(bench_mega(MEGA_RECORDS_SMOKE if args.smoke else MEGA_RECORDS))

    floor = MIN_SPEEDUP_SMOKE if args.smoke else MIN_SPEEDUP
    quality_ok = reduction >= MIN_REDUCTION and recall >= MIN_RECALL
    passed = speedup >= floor and quality_ok
    if args.json:
        _write_report(
            args.json,
            "bench_blocking",
            smoke=args.smoke,
            legacy_seconds=dense_seconds,
            engine_seconds=blocked_seconds,
            speedup=speedup,
            floor=floor,
            asserted=not args.no_assert,
            reduction=reduction,
            reduction_floor=MIN_REDUCTION,
            recall=recall,
            recall_floor=MIN_RECALL,
            corpora=len(loaded),
        )
    if not args.no_assert and not passed:
        print(
            f"[bench_blocking] FAIL: speedup {speedup:.2f}x (floor "
            f"{floor:.1f}x), reduction {reduction:.1f}x (floor "
            f"{MIN_REDUCTION:.0f}x), recall {recall:.4f} (floor "
            f"{MIN_RECALL})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
