"""Ablation — threshold-sweep granularity (0.05 vs 0.01 steps).

The paper reports that "preliminary experiments showed that there is
no significant difference in the experimental results when using a
smaller step size like 0.01".  This ablation verifies the claim: the
best F1 found with the fine grid exceeds the coarse grid's by a
negligible margin.
"""

from __future__ import annotations

import numpy as np
from conftest import CACHE_DIR, active_config, save_report

from repro.evaluation.report import render_table
from repro.evaluation.sweep import threshold_sweep
from repro.matching import UniqueMappingClustering
from repro.pipeline.workbench import generate_corpus

COARSE = tuple(round(0.05 * k, 2) for k in range(1, 21))
FINE = tuple(round(0.01 * k, 2) for k in range(1, 101))


def _grid_comparison():
    corpus = generate_corpus(
        active_config().corpus, cache_dir=CACHE_DIR / "corpus"
    )
    matcher = UniqueMappingClustering()
    coarse_f1, fine_f1 = [], []
    # A representative sample keeps the 100-point sweeps affordable.
    for record in corpus[:: max(1, len(corpus) // 40)]:
        coarse = threshold_sweep(
            matcher, record.graph, record.ground_truth, COARSE
        )
        fine = threshold_sweep(
            matcher, record.graph, record.ground_truth, FINE
        )
        coarse_f1.append(coarse.best_scores.f_measure)
        fine_f1.append(fine.best_scores.f_measure)
    return np.array(coarse_f1), np.array(fine_f1)


def test_ablation_sweep_step(benchmark):
    coarse_f1, fine_f1 = benchmark.pedantic(
        _grid_comparison, rounds=1, iterations=1
    )
    gains = fine_f1 - coarse_f1
    table = render_table(
        ["grid", "mean best F1"],
        [
            ["0.05 step (paper)", f"{coarse_f1.mean():.4f}"],
            ["0.01 step", f"{fine_f1.mean():.4f}"],
            ["mean gain of 0.01", f"{gains.mean():.4f}"],
            ["max gain of 0.01", f"{gains.max():.4f}"],
        ],
        title=f"Ablation — sweep granularity over {len(gains)} graphs",
    )
    save_report("ablation_sweep_step", table)

    # The fine grid can only help; the paper's claim is that it helps
    # negligibly.
    assert gains.min() >= -1e-9
    assert gains.mean() < 0.02
