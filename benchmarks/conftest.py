"""Shared fixtures for the benchmark harness.

The full experimental protocol (corpus generation + sweeps) runs once
and is cached under ``.repro_cache/``; every table/figure bench
aggregates the cached results.  Set ``REPRO_SMOKE=1`` to run the whole
harness on the tiny smoke profile instead (used in CI-style checks).

Every bench writes its rendered paper table to ``reports/<name>.txt``
and prints it (visible with ``pytest -s`` or in the saved reports).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import (
    DEFAULT_BENCH_CONFIG,
    SMOKE_CONFIG,
    run_experiments,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORTS_DIR = REPO_ROOT / "reports"
CACHE_DIR = REPO_ROOT / ".repro_cache"


def active_config():
    if os.environ.get("REPRO_SMOKE") == "1":
        return SMOKE_CONFIG
    return DEFAULT_BENCH_CONFIG


@pytest.fixture(scope="session")
def experiment_results():
    """The cached full-protocol results (one run per session)."""
    return run_experiments(active_config(), cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def experiment_config():
    return active_config()


def save_report(name: str, text: str) -> Path:
    """Persist a rendered table under ``reports/`` and echo it."""
    REPORTS_DIR.mkdir(parents=True, exist_ok=True)
    path = REPORTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report saved to {path}]")
    return path
