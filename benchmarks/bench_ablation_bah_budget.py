"""Ablation — BAH's search-step budget.

The paper attributes BAH's runtime entirely to its 10,000-step budget
and 2-minute timeout.  This ablation sweeps the step budget on one
representative graph and reports the F1 / runtime curve — the
diminishing returns justify the laptop-scale default of 2,000 steps.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import save_report

from repro.evaluation.metrics import evaluate_pairs
from repro.evaluation.report import render_table
from repro.graph import SimilarityGraph
from repro.matching import BestAssignmentHeuristic

BUDGETS = (100, 500, 2_000, 10_000)


def _workload(n=120, seed=11):
    rng = np.random.default_rng(seed)
    matrix = np.clip(rng.normal(0.3, 0.1, (n, n)), 0.01, 1.0)
    matrix[np.arange(n), np.arange(n)] = np.clip(
        rng.normal(0.8, 0.06, n), 0, 1
    )
    graph = SimilarityGraph.from_matrix(matrix)
    truth = {(i, i) for i in range(n)}
    return graph, truth


@pytest.mark.parametrize("budget", BUDGETS)
def test_bah_budget_runtime(benchmark, budget):
    graph, _ = _workload()
    matcher = BestAssignmentHeuristic(
        max_moves=budget, time_limit=30.0, seed=3
    )
    result = benchmark(matcher.match, graph, 0.5)
    result.validate(graph)


def _budget_report():
    graph, truth = _workload()
    rows = []
    f1_by_budget = {}
    for budget in BUDGETS:
        matcher = BestAssignmentHeuristic(
            max_moves=budget, time_limit=30.0, seed=3
        )
        start = time.perf_counter()
        result = matcher.match(graph, 0.5)
        elapsed = time.perf_counter() - start
        scores = evaluate_pairs(result.pairs, truth)
        f1_by_budget[budget] = scores.f_measure
        rows.append(
            [budget, f"{scores.f_measure:.3f}", f"{1000 * elapsed:.1f}"]
        )
    return rows, f1_by_budget


def test_ablation_bah_budget_report(benchmark):
    rows, f1_by_budget = benchmark.pedantic(
        _budget_report, rounds=1, iterations=1
    )
    table = render_table(
        ["max moves", "F1", "ms"],
        rows,
        title="Ablation — BAH search-step budget (seed fixed)",
    )
    save_report("ablation_bah_budget", table)

    # More budget never hurts much: the best F1 is reached at or
    # before the paper's 10k budget, and 10k >= 100-step quality.
    assert f1_by_budget[10_000] >= f1_by_budget[100] - 0.02
