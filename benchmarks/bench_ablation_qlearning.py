"""Ablation — the Q-learning matcher (the paper's deferred future work).

The paper leaves the reinforcement-learning matcher of Wang et al.
outside its learning-free study.  This ablation runs our tabular
Q-learning implementation against UMC (the greedy policy it
generalizes) on a sample of the cached corpus, quantifying whether
learned skipping beats pure greed on these inputs.
"""

from __future__ import annotations

import numpy as np
from conftest import CACHE_DIR, active_config, save_report

from repro.evaluation.report import render_table
from repro.evaluation.sweep import threshold_sweep
from repro.extensions import QLearningMatcher
from repro.matching import UniqueMappingClustering
from repro.pipeline.workbench import generate_corpus


def _comparison():
    corpus = generate_corpus(
        active_config().corpus, cache_dir=CACHE_DIR / "corpus"
    )
    sample = corpus[:: max(1, len(corpus) // 25)]
    qlm_f1, umc_f1 = [], []
    for record in sample:
        qlm = threshold_sweep(
            QLearningMatcher(episodes=10, seed=7),
            record.graph,
            record.ground_truth,
        )
        umc = threshold_sweep(
            UniqueMappingClustering(), record.graph, record.ground_truth
        )
        qlm_f1.append(qlm.best_scores.f_measure)
        umc_f1.append(umc.best_scores.f_measure)
    return np.array(qlm_f1), np.array(umc_f1)


def test_ablation_qlearning_vs_umc(benchmark):
    qlm_f1, umc_f1 = benchmark.pedantic(_comparison, rounds=1, iterations=1)
    wins = int(np.sum(qlm_f1 > umc_f1 + 1e-9))
    ties = int(np.sum(np.abs(qlm_f1 - umc_f1) <= 1e-9))
    table = render_table(
        ["matcher", "mean best F1"],
        [
            ["Q-learning (10 episodes)", f"{qlm_f1.mean():.3f}"],
            ["UMC (greedy policy)", f"{umc_f1.mean():.3f}"],
        ],
        title=(
            f"Ablation — Q-learning vs greedy over {len(qlm_f1)} graphs "
            f"(QLM wins {wins}, ties {ties})"
        ),
    )
    save_report("ablation_qlearning", table)

    # The learned policy should at least be in the same league as the
    # greedy baseline it generalizes (the paper's open question).
    assert qlm_f1.mean() >= umc_f1.mean() - 0.15
