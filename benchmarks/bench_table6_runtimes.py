"""Table 6 — mean runtime per algorithm, dataset and input family.

Two parts: (i) the aggregated sweep runtimes of the cached protocol,
printed per dataset/family exactly like Table 6; (ii) pytest-benchmark
measurements of every algorithm's ``match`` call on one shared
representative graph — the paper's "time between receiving the graph
and returning the partitions".

Expected shape (paper): CNC fastest, BMC close behind, BAH orders of
magnitude slower, KRC the slowest of the effective algorithms.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import save_report

from repro.evaluation.report import render_table
from repro.experiments.efficiency import runtime_rank_order, runtime_table
from repro.graph import SimilarityGraph
from repro.matching import create_matcher
from repro.matching.registry import PAPER_ALGORITHM_CODES


def _representative_graph(n_left=300, n_right=400, seed=1):
    rng = np.random.default_rng(seed)
    matrix = np.clip(rng.normal(0.25, 0.12, (n_left, n_right)), 0.0, 1.0)
    diag = min(n_left, n_right)
    matrix[np.arange(diag), np.arange(diag)] = np.clip(
        rng.normal(0.8, 0.07, diag), 0, 1
    )
    return SimilarityGraph.from_matrix(matrix)


GRAPH = _representative_graph()


@pytest.mark.parametrize("code", PAPER_ALGORITHM_CODES)
def test_algorithm_runtime(benchmark, code):
    if code == "BAH":
        matcher = create_matcher(code, max_moves=2_000, time_limit=2.0)
    else:
        matcher = create_matcher(code)
    result = benchmark(matcher.match, GRAPH, 0.5)
    result.validate(GRAPH)


def test_table6_runtime_report(benchmark, experiment_results):
    cells = benchmark(runtime_table, experiment_results)

    keys = sorted({(c.dataset, c.family) for c in cells})
    rows = []
    for dataset, family in keys:
        row: list[object] = [dataset, family.replace("schema_", "")]
        for code in PAPER_ALGORITHM_CODES:
            cell = next(
                c for c in cells
                if c.dataset == dataset and c.family == family
                and c.algorithm == code
            )
            row.append(f"{1000 * cell.mean_seconds:.1f}")
        rows.append(row)
    table = render_table(
        ["ds", "family", *PAPER_ALGORITHM_CODES],
        rows,
        title="Table 6 — mean runtime (ms) at the optimal threshold",
    )
    order = runtime_rank_order(experiment_results)
    table += f"\noverall runtime order (fastest first): {' < '.join(order)}"
    save_report("table6_runtimes", table)

    # Shape: BAH is the slowest algorithm overall by a wide margin.
    assert order[-1] == "BAH"
    # CNC/BMC belong to the fast group.
    assert {"CNC", "BMC"} & set(order[:4])


def test_table6_corpus_build_attribution(
    experiment_results, experiment_config
):
    """Where corpus generation spends its time, per dataset and family.

    Uses the per-stage timings recorded in every ``GraphRecord``
    (artifact builds vs similarity matrices vs graph conversion); the
    artifact share is the part the shared-artifact engine amortizes
    across the functions of a group.
    """
    from collections import defaultdict

    from conftest import CACHE_DIR

    from repro.pipeline.workbench import generate_corpus

    # experiment_results has already generated + cached this corpus.
    records = generate_corpus(
        experiment_config.corpus, cache_dir=CACHE_DIR / "corpus"
    )
    assert records

    grouped = defaultdict(list)
    for record in records:
        grouped[(record.dataset, record.family)].append(record)
    rows = []
    for (dataset, family), members in sorted(
        grouped.items(), key=lambda kv: (int(kv[0][0][1:]), kv[0][1])
    ):
        artifact = sum(r.artifact_seconds for r in members)
        matrix = sum(r.matrix_seconds for r in members)
        graph = sum(r.graph_seconds for r in members)
        total = sum(r.build_seconds for r in members)
        dedup = np.mean(
            [getattr(r, "dedup_ratio", 1.0) for r in members]
        )
        reduction = np.mean(
            [getattr(r, "candidate_reduction", 1.0) for r in members]
        )
        rows.append(
            [
                dataset,
                family.replace("schema_", ""),
                len(members),
                f"{total:.2f}",
                f"{artifact:.2f}",
                f"{matrix:.2f}",
                f"{graph:.2f}",
                f"{dedup:.2f}",
                f"{reduction:.1f}x",
            ]
        )
    table = render_table(
        [
            "ds", "family", "|G|", "total s", "artifacts", "matrix",
            "graph", "dedup", "cand-red",
        ],
        rows,
        title="Corpus build cost attribution (per-stage seconds)",
    )
    save_report("table6_corpus_build_attribution", table)

    for record in records:
        assert record.build_seconds >= 0.0
        staged = (
            record.artifact_seconds
            + record.matrix_seconds
            + record.graph_seconds
        )
        # The stages partition the build (up to timer resolution).
        assert staged <= record.build_seconds + 1e-6
