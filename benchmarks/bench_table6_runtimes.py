"""Table 6 — mean runtime per algorithm, dataset and input family.

Two parts: (i) the aggregated sweep runtimes of the cached protocol,
printed per dataset/family exactly like Table 6; (ii) pytest-benchmark
measurements of every algorithm's ``match`` call on one shared
representative graph — the paper's "time between receiving the graph
and returning the partitions".

Expected shape (paper): CNC fastest, BMC close behind, BAH orders of
magnitude slower, KRC the slowest of the effective algorithms.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import save_report

from repro.evaluation.report import render_table
from repro.experiments.efficiency import runtime_rank_order, runtime_table
from repro.graph import SimilarityGraph
from repro.matching import create_matcher
from repro.matching.registry import PAPER_ALGORITHM_CODES


def _representative_graph(n_left=300, n_right=400, seed=1):
    rng = np.random.default_rng(seed)
    matrix = np.clip(rng.normal(0.25, 0.12, (n_left, n_right)), 0.0, 1.0)
    diag = min(n_left, n_right)
    matrix[np.arange(diag), np.arange(diag)] = np.clip(
        rng.normal(0.8, 0.07, diag), 0, 1
    )
    return SimilarityGraph.from_matrix(matrix)


GRAPH = _representative_graph()


@pytest.mark.parametrize("code", PAPER_ALGORITHM_CODES)
def test_algorithm_runtime(benchmark, code):
    if code == "BAH":
        matcher = create_matcher(code, max_moves=2_000, time_limit=2.0)
    else:
        matcher = create_matcher(code)
    result = benchmark(matcher.match, GRAPH, 0.5)
    result.validate(GRAPH)


def test_table6_runtime_report(benchmark, experiment_results):
    cells = benchmark(runtime_table, experiment_results)

    keys = sorted({(c.dataset, c.family) for c in cells})
    rows = []
    for dataset, family in keys:
        row: list[object] = [dataset, family.replace("schema_", "")]
        for code in PAPER_ALGORITHM_CODES:
            cell = next(
                c for c in cells
                if c.dataset == dataset and c.family == family
                and c.algorithm == code
            )
            row.append(f"{1000 * cell.mean_seconds:.1f}")
        rows.append(row)
    table = render_table(
        ["ds", "family", *PAPER_ALGORITHM_CODES],
        rows,
        title="Table 6 — mean runtime (ms) at the optimal threshold",
    )
    order = runtime_rank_order(experiment_results)
    table += f"\noverall runtime order (fastest first): {' < '.join(order)}"
    save_report("table6_runtimes", table)

    # Shape: BAH is the slowest algorithm overall by a wide margin.
    assert order[-1] == "BAH"
    # CNC/BMC belong to the fast group.
    assert {"CNC", "BMC"} & set(order[:4])
