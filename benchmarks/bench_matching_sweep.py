"""Matching-sweep benchmark: legacy per-call path vs compiled engine.

Runs the paper's core loop — every algorithm (all ten, including the
two oracles) over every graph at all 20 thresholds — twice:

* the **legacy path**: the pre-refactor implementations
  (``Matcher.match_legacy``), each call masking, copying and
  re-sorting the edge arrays for itself, scored with the scalar
  ``evaluate_pairs``;
* the **engine path**: :func:`repro.experiments.runner.run_matching_sweeps`,
  where each graph is compiled once (one edge sort + CSR adjacency)
  and every ``(algorithm, threshold)`` cell consumes cached prefix
  slices, scored through the shared
  :class:`~repro.evaluation.metrics.GroundTruthIndex`;

then

* asserts the sweeps are **bit-identical** (same thresholds, same
  precision/recall/F1/counts at every sweep point of every algorithm
  on every graph), and
* asserts the engine is at least ``MIN_SPEEDUP``x faster wall-clock.

With ``--workers N`` a third engine pass distributes the (graph x
algorithm) cells over a process pool and asserts the results are
invariant under the worker count.

Run directly (the CI smoke job does)::

    PYTHONPATH=src python benchmarks/bench_matching_sweep.py [--smoke] [-j N]

Not a pytest-benchmark harness on purpose: the comparison needs two
cold end-to-end runs of the same workload, not statistics over many
hot repetitions.
"""

from __future__ import annotations

import argparse
import copy
import sys
import time

import numpy as np

try:  # direct script execution: benchmarks/ is sys.path[0]
    from _report import write_report as _write_report
except ImportError:  # imported as benchmarks.bench_* from the repo root
    from benchmarks._report import write_report as _write_report

from repro.evaluation.metrics import evaluate_pairs
from repro.evaluation.sweep import (
    DEFAULT_THRESHOLD_GRID,
    SweepPoint,
    SweepResult,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_matching_sweeps
from repro.graph.bipartite import SimilarityGraph
from repro.matching import BestMatchClustering, create_matcher
from repro.pipeline.workbench import GraphRecord

#: Required engine-vs-legacy speedup on the benchmark profile.  The
#: redundancy the engine removes is structural (20 masks + sorts and
#: re-built adjacency per algorithm per graph), so 3x is conservative.
MIN_SPEEDUP = 3.0

#: Floor for the tiny ``--smoke`` profile, where per-run timing noise
#: on loaded CI runners is large relative to the workload.
MIN_SPEEDUP_SMOKE = 2.0

#: All ten algorithms: the paper's eight plus the two oracles.
ALL_CODES = (
    "CNC", "RSR", "RCA", "BAH", "BMC", "EXC", "KRC", "UMC", "HUN", "GSM",
)

#: (n_left, n_right, n_edges) of the synthetic benchmark graphs.
DEFAULT_SHAPES = ((150, 160, 15_000), (120, 200, 12_000), (180, 140, 14_000))
SMOKE_SHAPES = ((70, 80, 3_500),)

#: BAH budgets: small enough that the seeded swap search (identical
#: work on both paths) does not drown the per-call setup costs, large
#: enough to stay a real search; the generous time limit keeps the
#: wall-clock cutoff out of play so runs are deterministic.
BENCH_CONFIG = ExperimentConfig(
    bah_max_moves=300, bah_time_limit=600.0, bah_seed=7
)


def synthetic_records(
    shapes: tuple[tuple[int, int, int], ...], seed: int = 42
) -> list[GraphRecord]:
    """Deterministic random graphs with 2-decimal weights (heavy ties,
    so tie-breaking is exercised at every threshold)."""
    rng = np.random.default_rng(seed)
    records = []
    for index, (n_left, n_right, n_edges) in enumerate(shapes):
        cells = rng.choice(
            n_left * n_right, size=n_edges, replace=False
        )
        weight = np.maximum(np.round(rng.random(n_edges), 2), 0.01)
        graph = SimilarityGraph(
            n_left,
            n_right,
            cells // n_right,
            cells % n_right,
            weight,
            name=f"bench_{index}",
        )
        n_truth = min(n_left, n_right) // 2
        truth = {
            (int(i), int(rng.integers(n_right))) for i in range(n_truth)
        }
        records.append(
            GraphRecord(
                graph=graph,
                dataset=f"bench_{index}",
                family="synthetic",
                function=f"uniform_{index}",
                category="BLC",
                ground_truth=truth,
            )
        )
    return records


# ----------------------------------------------------------------------
# Legacy path: the pre-refactor sweep loop, verbatim semantics
# ----------------------------------------------------------------------
def legacy_threshold_sweep(matcher, graph, ground_truth, grid):
    """The pre-engine ``threshold_sweep``: per-call sort + Python-set
    scoring, dispatching to the frozen legacy implementations."""
    result = SweepResult(algorithm=matcher.code)
    sorted_weights = np.sort(graph.weight)
    previous_threshold = None
    previous_point = None
    for threshold in grid:
        if previous_point is not None and _no_weight_in_range(
            sorted_weights, previous_threshold, threshold
        ):
            point = SweepPoint(
                threshold=threshold,
                scores=previous_point.scores,
                seconds=previous_point.seconds,
            )
        else:
            start = time.perf_counter()
            matching = matcher.match_legacy(graph, threshold)
            elapsed = time.perf_counter() - start
            scores = evaluate_pairs(matching.pairs, ground_truth)
            point = SweepPoint(
                threshold=threshold, scores=scores, seconds=elapsed
            )
        result.points.append(point)
        previous_threshold = threshold
        previous_point = point
    return result


def _no_weight_in_range(sorted_weights, low, high):
    start = np.searchsorted(sorted_weights, low, side="left")
    end = np.searchsorted(sorted_weights, high, side="right")
    return start == end


def _legacy_matcher(code: str, config: ExperimentConfig):
    if code == "BAH":
        return create_matcher(
            "BAH",
            max_moves=config.bah_max_moves,
            time_limit=config.bah_time_limit,
            seed=config.bah_seed,
        )
    return create_matcher(code)


def run_legacy(
    records: list[GraphRecord],
    config: ExperimentConfig,
    codes: tuple[str, ...] = ALL_CODES,
) -> list[dict[str, SweepResult]]:
    """The pre-refactor experiment loop over all (graph, code) cells."""
    all_sweeps = []
    for record in records:
        sweeps: dict[str, SweepResult] = {}
        for code in codes:
            if code == "BMC":
                candidates = [
                    legacy_threshold_sweep(
                        BestMatchClustering(basis=basis),
                        record.graph,
                        record.ground_truth,
                        config.grid,
                    )
                    for basis in ("left", "right")
                ]
                sweeps[code] = max(
                    candidates, key=lambda s: s.best_scores.f_measure
                )
            else:
                sweeps[code] = legacy_threshold_sweep(
                    _legacy_matcher(code, config),
                    record.graph,
                    record.ground_truth,
                    config.grid,
                )
        all_sweeps.append(sweeps)
    return all_sweeps


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def assert_identical(
    legacy: list[dict[str, SweepResult]],
    engine: list[dict[str, SweepResult]],
) -> None:
    """Every sweep point of every cell must match bit for bit."""
    assert len(legacy) == len(engine)
    for graph_index, (a_sweeps, b_sweeps) in enumerate(zip(legacy, engine)):
        assert set(a_sweeps) == set(b_sweeps)
        for code, a in a_sweeps.items():
            b = b_sweeps[code]
            label = f"graph {graph_index} {code}"
            assert len(a.points) == len(b.points), label
            for pa, pb in zip(a.points, b.points):
                assert pa.threshold == pb.threshold, label
                assert pa.scores == pb.scores, (
                    f"{label} t={pa.threshold}: "
                    f"{pa.scores} != {pb.scores}"
                )


def _fresh(records: list[GraphRecord]) -> list[GraphRecord]:
    """Deep-copied records so each timed pass starts with cold caches
    (no compiled artifacts or adjacency lists left by a prior pass)."""
    return copy.deepcopy(records)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI profile instead of the full benchmark profile",
    )
    parser.add_argument(
        "--workers", "-j", type=int, default=1,
        help="extra engine pass over a process pool (asserts invariance)",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report without failing on the speedup threshold",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="interleaved timing repeats; the per-path minimum is used",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the machine-readable report to this path",
    )
    args = parser.parse_args(argv)
    shapes = SMOKE_SHAPES if args.smoke else DEFAULT_SHAPES
    records = synthetic_records(shapes)
    config = BENCH_CONFIG
    n_cells = len(records) * len(ALL_CODES)

    # Warm-up: one tiny untimed pass per path (imports, allocators).
    warm = synthetic_records(((20, 20, 150),), seed=1)
    run_legacy(_fresh(warm), config)
    run_matching_sweeps(_fresh(warm), config, codes=ALL_CODES)

    legacy_seconds = engine_seconds = float("inf")
    legacy_sweeps = engine_results = None
    for _ in range(max(args.repeats, 1)):
        fresh = _fresh(records)
        start = time.perf_counter()
        legacy_sweeps = run_legacy(fresh, config)
        legacy_seconds = min(legacy_seconds, time.perf_counter() - start)

        fresh = _fresh(records)
        start = time.perf_counter()
        engine_results = run_matching_sweeps(fresh, config, codes=ALL_CODES)
        engine_seconds = min(engine_seconds, time.perf_counter() - start)

    engine_sweeps = [result.sweeps for result in engine_results]
    assert_identical(legacy_sweeps, engine_sweeps)
    speedup = (
        legacy_seconds / engine_seconds if engine_seconds else float("inf")
    )
    print(
        f"[bench_matching_sweep] {n_cells} sweep cells "
        f"({len(records)} graphs x {len(ALL_CODES)} algorithms x "
        f"{len(DEFAULT_THRESHOLD_GRID)} thresholds) | legacy "
        f"{legacy_seconds:.2f}s | engine {engine_seconds:.2f}s | "
        f"speedup {speedup:.2f}x (bit-identical, min of "
        f"{max(args.repeats, 1)})"
    )

    if args.workers > 1:
        start = time.perf_counter()
        parallel_results = run_matching_sweeps(
            _fresh(records), config, codes=ALL_CODES, workers=args.workers
        )
        parallel_seconds = time.perf_counter() - start
        assert_identical(
            engine_sweeps, [result.sweeps for result in parallel_results]
        )
        print(
            f"[bench_matching_sweep] engine x{args.workers} workers "
            f"{parallel_seconds:.2f}s | speedup vs legacy "
            f"{legacy_seconds / parallel_seconds:.2f}x (bit-identical)"
        )

    floor = MIN_SPEEDUP_SMOKE if args.smoke else MIN_SPEEDUP
    passed = speedup >= floor
    if args.json:
        _write_report(
            args.json,
            "bench_matching_sweep",
            smoke=args.smoke,
            legacy_seconds=legacy_seconds,
            engine_seconds=engine_seconds,
            speedup=speedup,
            floor=floor,
            asserted=not args.no_assert,
            cells=n_cells,
        )
    if not args.no_assert and not passed:
        print(
            f"[bench_matching_sweep] FAIL: speedup {speedup:.2f}x below "
            f"the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
