"""Table 4 — macro-average precision/recall/F-measure per algorithm.

The paper's headline effectiveness table.  Expected shape (paper):
KRC and UMC lead on F1, CNC has the highest precision and the lowest
recall, BAH trails with the highest variance.  The benchmark measures
one full UMC threshold sweep on a representative graph.
"""

from __future__ import annotations

from conftest import save_report

from repro.evaluation.report import format_float, render_table
from repro.evaluation.sweep import threshold_sweep
from repro.experiments.effectiveness import macro_effectiveness
from repro.graph import SimilarityGraph
from repro.matching import UniqueMappingClustering
import numpy as np


def _representative_graph(n=200, seed=0):
    rng = np.random.default_rng(seed)
    matrix = np.clip(rng.normal(0.3, 0.1, (n, n)), 0.01, 1)
    matrix[np.arange(n), np.arange(n)] = np.clip(
        rng.normal(0.8, 0.05, n), 0, 1
    )
    return SimilarityGraph.from_matrix(matrix)


def test_table4_macro_effectiveness(benchmark, experiment_results):
    graph = _representative_graph()
    truth = {(i, i) for i in range(graph.n_left)}
    sweep = benchmark(
        threshold_sweep, UniqueMappingClustering(), graph, truth
    )
    assert sweep.best_scores.f_measure > 0.9

    rows = []
    for row in macro_effectiveness(experiment_results):
        rows.append(
            [
                row.algorithm,
                format_float(row.precision_mu),
                format_float(row.precision_sigma),
                format_float(row.recall_mu),
                format_float(row.recall_sigma),
                format_float(row.f1_mu),
                format_float(row.f1_sigma),
            ]
        )
    table = render_table(
        ["alg", "P mu", "P sig", "R mu", "R sig", "F1 mu", "F1 sig"],
        rows,
        title=(
            "Table 4 — macro-average performance across all "
            f"{len(experiment_results)} similarity graphs"
        ),
    )
    save_report("table4_macro_effectiveness", table)

    by_code = {r.algorithm: r for r in macro_effectiveness(experiment_results)}
    # Shape checks from the paper: CNC tops precision and sits in the
    # bottom recall group (in the paper BAH's mean recall is actually
    # the lowest, with CNC right above it); KRC/UMC lead the F1
    # ranking.
    assert by_code["CNC"].precision_mu == max(
        r.precision_mu for r in by_code.values()
    )
    recall_ranking = sorted(by_code, key=lambda c: by_code[c].recall_mu)
    assert "CNC" in recall_ranking[:4]
    f1_ranking = sorted(by_code, key=lambda c: -by_code[c].f1_mu)
    assert {"KRC", "UMC"} & set(f1_ranking[:3])
    assert by_code["BAH"].precision_sigma == max(
        r.precision_sigma for r in by_code.values()
    ), "BAH should be the least robust algorithm"
