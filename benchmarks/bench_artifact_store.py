"""Artifact-store benchmark: cold vs warm cross-run corpus generation.

Generates the same artifact-heavy corpus against a persistent
:class:`~repro.pipeline.store.ArtifactStore` twice — a **cold** run
into an empty store (every embedding, vector model and entity graph is
built and committed) and a **warm** rerun against the now-populated
store (every persisted artifact is loaded instead of rebuilt) — then

* asserts both runs are **bit-identical** to a store-less reference
  corpus (same retained graphs, same edge sets, same weights),
* asserts the warm rerun is at least ``MIN_SPEEDUP``x faster, and
* asserts a warm store shared by ``--workers N`` process workers
  produces the exact corpus of a ``workers=1`` run.

Run directly (the CI smoke job does)::

    PYTHONPATH=src python benchmarks/bench_artifact_store.py [--smoke] [-j N]

Not a pytest-benchmark harness on purpose: the comparison needs cold
and warm end-to-end runs of the same workload against one store, not
statistics over many hot repetitions.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

import numpy as np

try:  # direct script execution: benchmarks/ is sys.path[0]
    from _report import write_report as _write_report
except ImportError:  # imported as benchmarks.bench_* from the repo root
    from benchmarks._report import write_report as _write_report

from repro.pipeline.store import ArtifactStore
from repro.pipeline.workbench import (
    GraphCorpusConfig,
    GraphRecord,
    generate_corpus,
)

#: Required warm-vs-cold rerun speedup.  The warm run still generates
#: the dataset and converts matrices to graphs, but skips every
#: embedding pass, n-gram profile extraction and entity-graph build —
#: on the artifact-heavy families that is the dominant cost, so 2x is
#: conservative.
MIN_SPEEDUP = 2.0

#: The artifact-dominated slice of the taxonomy: n-gram vector + graph
#: models and both semantic families.  (The schema-based alignment DPs
#: recompute their matrices per run by design — they are measure cost,
#: not artifact cost — so they would only dilute what this benchmark
#: guards.)
_FAMILIES = (
    "schema_agnostic_syntactic",
    "schema_based_semantic",
    "schema_agnostic_semantic",
)

REDUCED_CONFIG = GraphCorpusConfig(
    datasets=("d1", "d2"),
    families=_FAMILIES,
    scale=0.06,
    max_pairs=10_000,
    ngram_models=(("char", 3), ("token", 1)),
    semantic_measures=("cosine", "euclidean"),
    max_attributes=2,
)

#: Smaller CI profile; same structure.
SMOKE_CONFIG = GraphCorpusConfig(
    datasets=("d1",),
    families=_FAMILIES,
    scale=0.05,
    max_pairs=6_000,
    ngram_models=(("char", 3), ("token", 1)),
    semantic_measures=("cosine", "euclidean"),
    max_attributes=1,
)

#: Micro workload run untimed first, so one-off process costs
#: (imports, allocator warm-up, BLAS thread spin-up) don't skew the
#: timed passes.  It uses its own store directory, so it pre-warms no
#: artifact the timed configs consume.
_WARMUP_CONFIG = GraphCorpusConfig(
    datasets=("d1",),
    families=_FAMILIES,
    scale=0.02,
    max_pairs=1_000,
    ngram_models=(("token", 1),),
    vector_measures=("cosine_tf",),
    graph_measures=("containment",),
    semantic_models=("fasttext_like",),
    semantic_measures=("cosine",),
    max_attributes=1,
)


def assert_identical(
    reference: list[GraphRecord], candidate: list[GraphRecord], label: str
) -> None:
    """Both corpora must match graph for graph, bit for bit."""
    assert len(reference) == len(candidate), (
        f"{label}: corpus size differs "
        f"({len(reference)} vs {len(candidate)})"
    )
    for a, b in zip(reference, candidate):
        assert (a.dataset, a.function) == (b.dataset, b.function), (
            f"{label}: order differs at {a.dataset}:{a.function}"
        )
        name = f"{label} {a.dataset}:{a.function}"
        assert np.array_equal(a.graph.left, b.graph.left), name
        assert np.array_equal(a.graph.right, b.graph.right), name
        assert np.array_equal(a.graph.weight, b.graph.weight), name


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller CI profile instead of the reduced benchmark config",
    )
    parser.add_argument(
        "--workers", "-j", type=int, default=4,
        help="worker count for the warm-store workers-identity pass",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report without failing on the speedup threshold",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="cold/warm timing repeats; the per-phase minimum is used",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the machine-readable report to this path",
    )
    args = parser.parse_args(argv)
    config = SMOKE_CONFIG if args.smoke else REDUCED_CONFIG

    with tempfile.TemporaryDirectory(prefix="repro-warmup-") as scratch:
        generate_corpus(_WARMUP_CONFIG, artifact_store=scratch)

    baseline = generate_corpus(config)  # store-less reference

    # Each repeat pairs one cold run (fresh store directory) with one
    # warm rerun against the store that cold run populated; the
    # minimum over repeats is the noise-robust estimator.
    cold_seconds = warm_seconds = float("inf")
    cold: list[GraphRecord] = []
    warm: list[GraphRecord] = []
    last_store: tempfile.TemporaryDirectory | None = None
    for _ in range(max(args.repeats, 1)):
        if last_store is not None:
            last_store.cleanup()
        last_store = tempfile.TemporaryDirectory(prefix="repro-store-")
        start = time.perf_counter()
        cold = generate_corpus(config, artifact_store=last_store.name)
        cold_seconds = min(cold_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        warm = generate_corpus(config, artifact_store=last_store.name)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)

    assert_identical(baseline, cold, "cold store")
    assert_identical(baseline, warm, "warm store")
    entries = ArtifactStore(last_store.name).entries()
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    print(
        f"[bench_artifact_store] {len(warm)} graphs | cold "
        f"{cold_seconds:.2f}s | warm {warm_seconds:.2f}s | warm-rerun "
        f"speedup {speedup:.2f}x (bit-identical, min of "
        f"{max(args.repeats, 1)}; store: {len(entries)} entries, "
        f"{sum(e.nbytes for e in entries) / 1024:.0f}K)"
    )

    if args.workers > 1:
        # Acceptance gate: a warm store shared by N process workers
        # must produce the exact corpus of a serial run.
        start = time.perf_counter()
        parallel = generate_corpus(
            config, artifact_store=last_store.name, workers=args.workers
        )
        parallel_seconds = time.perf_counter() - start
        assert_identical(baseline, parallel, f"warm x{args.workers} workers")
        print(
            f"[bench_artifact_store] warm x{args.workers} workers "
            f"{parallel_seconds:.2f}s (bit-identical to workers=1)"
        )
    last_store.cleanup()

    passed = speedup >= MIN_SPEEDUP
    if args.json:
        _write_report(
            args.json,
            "bench_artifact_store",
            smoke=args.smoke,
            legacy_seconds=cold_seconds,
            engine_seconds=warm_seconds,
            speedup=speedup,
            floor=MIN_SPEEDUP,
            asserted=not args.no_assert,
            graphs=len(warm),
        )
    if not args.no_assert and not passed:
        print(
            f"[bench_artifact_store] FAIL: warm-rerun speedup "
            f"{speedup:.2f}x below the {MIN_SPEEDUP:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
