"""Figure 2 — Nemenyi diagram based on F-Measure.

Friedman test over the paired per-graph F1 samples, then the post-hoc
Nemenyi critical distance and mean-rank ordering.  Expected shape:
the null hypothesis is rejected and KRC/UMC/EXC/BMC occupy the best
ranks.  The benchmark measures the statistical analysis itself.
"""

from __future__ import annotations

from conftest import save_report

from repro.evaluation.stats import (
    critical_difference,
    friedman_test,
    mean_ranks,
    nemenyi_diagram,
)
from repro.experiments.effectiveness import score_matrix
from repro.matching.registry import PAPER_ALGORITHM_CODES


def _analysis(scores):
    return (
        friedman_test(scores),
        mean_ranks(scores),
        critical_difference(scores.shape[1], scores.shape[0]),
    )


def test_fig2_nemenyi_f1(benchmark, experiment_results):
    scores = score_matrix(experiment_results, "f_measure")
    friedman, ranks, cd = benchmark(_analysis, scores)

    diagram = nemenyi_diagram(list(PAPER_ALGORITHM_CODES), scores)
    text = (
        f"Figure 2 — Nemenyi diagram on F-Measure\n"
        f"Friedman chi2 = {friedman.statistic:.1f}, "
        f"p = {friedman.p_value:.2e}, "
        f"null rejected = {friedman.rejected}\n{diagram}"
    )
    save_report("fig2_nemenyi_f1", text)

    assert friedman.rejected, "algorithms should differ significantly"
    by_code = dict(zip(PAPER_ALGORITHM_CODES, ranks))
    best_four = sorted(by_code, key=by_code.get)[:4]
    # Paper: KRC, UMC, EXC, BMC rank first (in that order).
    assert {"KRC", "UMC"} <= set(best_four)
