"""Benchmark: out-of-core sharded scoring vs the in-memory dense path.

The sharded execution tier exists to bound peak memory: a dense
similarity pass materialises the full ``n_left x n_right`` float64
matrix, while :class:`~repro.pipeline.sharding.ShardRun` streams
whole grid blocks and spills per-shard edges, so its peak residency
is one grid block plus the spilled edge arrays regardless of the
dataset size.  This benchmark proves all three contract clauses on a
workload whose dense matrix alone dwarfs the budget:

* **bounded memory** — the sharded run's peak RSS stays under a
  budget that the dense run provably exceeds.  Peak RSS is the
  process-lifetime high-water mark (``resource.getrusage``), so each
  path runs in a fresh spawned subprocess; the budget is calibrated
  as baseline RSS (interpreter + dataset + artifacts + one warm grid
  block) plus a fixed compute allowance handed to the planner.
* **no wall-time cliff** — the sharded run finishes within
  ``WALL_CEILING`` (1.15x) of the dense run.
* **bit-identity** — the merged sharded graph equals the dense graph
  bit for bit, and is invariant to the shard count.

Usage::

    python benchmarks/bench_sharding.py            # full profile
    python benchmarks/bench_sharding.py --smoke    # reduced, for CI
    python benchmarks/bench_sharding.py --json reports/bench_sharding.json
"""

from __future__ import annotations

import argparse
import hashlib
import multiprocessing
import resource
import sys
import time

import numpy as np

try:
    from _report import write_report as _write_report
except ImportError:  # pragma: no cover - invoked as a module
    from benchmarks._report import write_report as _write_report

from repro.datasets.generator import CleanCleanDataset, DatasetSpec
from repro.datasets.profile import EntityCollection, EntityProfile
from repro.pipeline.engine import SimilarityEngine
from repro.pipeline.graph_builder import matrix_to_graph
from repro.pipeline.sharding import ShardPlanner, ShardRun
from repro.pipeline.similarity_functions import SimilarityFunctionSpec

# Sharded wall time must stay within this factor of the dense run.
WALL_CEILING = 1.15

# Records per side / compute allowance handed to the planner.  The
# dense matrix is n^2 * 8 bytes (288 MB full, 128 MB smoke) — always
# a large multiple of the allowance, so the dense run cannot fit the
# budget and the sharded run (one ~8 MB grid block + spilled edges)
# comfortably can.  Below ~4000 records the dense matrix is cheap
# enough that per-shard overhead breaches the wall ceiling, so the
# smoke profile stays at the scale the tier is built for.
N_RECORDS = 6000
N_RECORDS_SMOKE = 4000
MARGIN_BYTES = 96 << 20
MARGIN_BYTES_SMOKE = 40 << 20

# Shard counts exercised by the in-process invariance check.
INVARIANCE_RECORDS = 1000
INVARIANCE_SHARDS = (1, 3, 7)

# Every record shares its group token with ~50 counterparts, so the
# score matrix is dense to compute but sparse in positive cells —
# the shape the spill format is built for.
GROUP_FANOUT = 50

SPEC = SimilarityFunctionSpec(
    family="schema_agnostic_syntactic",
    details={"model": "vector", "unit": "token", "n": 1, "measure": "cosine_tf"},
    name="cosine_tf",
)


def _workload_dataset(n_records: int) -> CleanCleanDataset:
    """Synthetic clean-clean dataset with group-structured overlap."""
    groups = max(1, n_records // GROUP_FANOUT)

    def side(tag: str) -> EntityCollection:
        return EntityCollection(
            name=tag,
            profiles=[
                EntityProfile(
                    f"{tag}{i}",
                    {"name": f"key{tag}{i:06d} grp{i % groups:04d}"},
                )
                for i in range(n_records)
            ],
        )

    spec = DatasetSpec(
        code="shardbench",
        domain="synthetic",
        n_left=n_records,
        n_right=n_records,
        n_duplicates=0,
        schema_attributes=("name",),
    )
    return CleanCleanDataset(
        spec=spec, left=side("L"), right=side("R"), ground_truth=set()
    )


def _digest(graph) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for array in (graph.left, graph.right, graph.weight):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _peak_rss_bytes() -> int:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def _subprocess_main(mode: str, n_records: int, margin: int, queue) -> None:
    """Run one measured path in a fresh process and report its peak RSS.

    ``ru_maxrss`` is a process-lifetime high-water mark, so the dense
    and sharded paths cannot share a process: whichever ran first
    would contaminate the other's reading.
    """
    dataset = _workload_dataset(n_records)
    engine = SimilarityEngine(dataset)
    result = {"mode": mode}
    if mode == "baseline":
        # Interpreter + dataset + scoring artifacts + one warm grid
        # block: everything both paths pay before the budget applies.
        engine.shard_scores_group([SPEC], 0, 1)
    elif mode == "dense":
        start = time.perf_counter()
        matrix = engine.compute(SPEC)
        graph = matrix_to_graph(matrix, name="shardbench")
        result["seconds"] = time.perf_counter() - start
        result["digest"] = _digest(graph)
        result["n_edges"] = int(graph.n_edges)
    elif mode == "sharded":
        plan = ShardPlanner.plan(n_records, n_records, memory_budget=margin)
        start = time.perf_counter()
        graph = ShardRun(engine, plan).run(SPEC, name="shardbench")
        result["seconds"] = time.perf_counter() - start
        result["digest"] = _digest(graph)
        result["n_edges"] = int(graph.n_edges)
        result["n_shards"] = plan.n_shards
    else:  # pragma: no cover - driver bug
        raise ValueError(f"unknown mode {mode!r}")
    result["rss"] = _peak_rss_bytes()
    queue.put(result)


def _measure(mode: str, n_records: int, margin: int) -> dict:
    context = multiprocessing.get_context("spawn")
    queue = context.SimpleQueue()
    process = context.Process(
        target=_subprocess_main, args=(mode, n_records, margin, queue)
    )
    process.start()
    result = queue.get()
    process.join()
    if process.exitcode != 0:  # pragma: no cover - subprocess crash
        raise RuntimeError(f"{mode} subprocess exited {process.exitcode}")
    return result


def _check_shard_count_invariance(n_records: int) -> bool:
    """Merged output must not depend on how the rows were sharded."""
    dataset = _workload_dataset(n_records)
    dense_engine = SimilarityEngine(dataset)
    reference = _digest(
        matrix_to_graph(dense_engine.compute(SPEC), name="shardbench")
    )
    identical = True
    for n_shards in INVARIANCE_SHARDS:
        plan = ShardPlanner.plan(n_records, n_records, n_shards=n_shards)
        engine = SimilarityEngine(dataset)
        digest = _digest(ShardRun(engine, plan).run(SPEC, name="shardbench"))
        matches = digest == reference
        identical = identical and matches
        print(
            f"[bench_sharding]   {n_shards} shard(s): "
            f"{'bit-identical' if matches else 'DIVERGED'}"
        )
    return identical


def _format_mb(n_bytes: int) -> str:
    return f"{n_bytes / (1 << 20):.1f}MB"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced workload for CI smoke runs",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per path (best-of wall time, max RSS)",
    )
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report results without enforcing the floors",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write a machine-readable report to PATH",
    )
    args = parser.parse_args(argv)

    n_records = N_RECORDS_SMOKE if args.smoke else N_RECORDS
    margin = MARGIN_BYTES_SMOKE if args.smoke else MARGIN_BYTES
    matrix_bytes = n_records * n_records * 8
    print(
        f"[bench_sharding] workload: {n_records}x{n_records} records, "
        f"dense matrix {_format_mb(matrix_bytes)}, "
        f"compute allowance {_format_mb(margin)}"
    )

    baseline = _measure("baseline", n_records, margin)
    budget = baseline["rss"] + margin
    print(
        f"[bench_sharding] baseline RSS {_format_mb(baseline['rss'])} "
        f"-> memory budget {_format_mb(budget)}"
    )

    dense_seconds = float("inf")
    sharded_seconds = float("inf")
    dense_rss = 0
    sharded_rss = 0
    dense_digest = sharded_digest = None
    n_edges = n_shards = 0
    for _ in range(max(args.repeats, 1)):
        dense = _measure("dense", n_records, margin)
        sharded = _measure("sharded", n_records, margin)
        dense_seconds = min(dense_seconds, dense["seconds"])
        sharded_seconds = min(sharded_seconds, sharded["seconds"])
        dense_rss = max(dense_rss, dense["rss"])
        sharded_rss = max(sharded_rss, sharded["rss"])
        dense_digest, sharded_digest = dense["digest"], sharded["digest"]
        n_edges, n_shards = sharded["n_edges"], sharded["n_shards"]

    identical = dense_digest == sharded_digest
    rss_ok = sharded_rss <= budget < dense_rss
    speedup = dense_seconds / max(sharded_seconds, 1e-9)
    floor = 1.0 / WALL_CEILING

    print(
        f"[bench_sharding] dense:   {dense_seconds:.2f}s, "
        f"peak RSS {_format_mb(dense_rss)} "
        f"({'exceeds' if dense_rss > budget else 'WITHIN'} budget)"
    )
    print(
        f"[bench_sharding] sharded: {sharded_seconds:.2f}s, "
        f"peak RSS {_format_mb(sharded_rss)} "
        f"({'under' if sharded_rss <= budget else 'OVER'} budget), "
        f"{n_shards} shards, {n_edges} edges, "
        f"{'bit-identical' if identical else 'DIVERGED'}"
    )
    print(
        f"[bench_sharding] wall ratio {sharded_seconds / max(dense_seconds, 1e-9):.2f}x "
        f"(ceiling {WALL_CEILING:.2f}x)"
    )
    print("[bench_sharding] shard-count invariance:")
    invariant = _check_shard_count_invariance(INVARIANCE_RECORDS)

    if args.json:
        _write_report(
            args.json,
            "bench_sharding",
            smoke=args.smoke,
            legacy_seconds=dense_seconds,
            engine_seconds=sharded_seconds,
            speedup=speedup,
            floor=floor,
            asserted=not args.no_assert,
            budget_bytes=budget,
            dense_rss_bytes=dense_rss,
            sharded_rss_bytes=sharded_rss,
            rss_ok=bool(rss_ok),
            identical=bool(identical and invariant),
            n_shards=n_shards,
            n_records=n_records,
            n_edges=n_edges,
        )
        print(f"[bench_sharding] report written to {args.json}")

    failures = []
    if not identical:
        failures.append("sharded graph diverged from the dense graph")
    if not invariant:
        failures.append("merged graph depends on the shard count")
    if sharded_rss > budget:
        failures.append(
            f"sharded peak RSS {_format_mb(sharded_rss)} exceeds the "
            f"budget {_format_mb(budget)}"
        )
    if dense_rss <= budget:
        failures.append(
            f"dense peak RSS {_format_mb(dense_rss)} fits the budget "
            f"{_format_mb(budget)} — workload too small to prove anything"
        )
    if speedup < floor:
        failures.append(
            f"sharded wall time {sharded_seconds:.2f}s breaches the "
            f"{WALL_CEILING:.2f}x ceiling over dense {dense_seconds:.2f}s"
        )
    if failures and not args.no_assert:
        for failure in failures:
            print(f"[bench_sharding] FAIL: {failure}", file=sys.stderr)
        return 1
    if failures:
        for failure in failures:
            print(f"[bench_sharding] tolerated: {failure}")
    else:
        print("[bench_sharding] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
