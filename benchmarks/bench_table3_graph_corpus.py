"""Table 3 — number of similarity graphs and average edges per dataset.

Aggregates the generated corpus exactly like the paper's Table 3:
per dataset and input family, the number of retained graphs |G|, the
average edge count |E| and its ratio to the Cartesian product.  The
benchmark measures building one schema-agnostic TF-IDF cosine graph
end to end (the workhorse similarity function of the corpus).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np
from conftest import save_report

from repro.datasets import dataset_spec, generate_dataset
from repro.evaluation.report import render_table
from repro.pipeline import matrix_to_graph
from repro.pipeline.similarity_functions import (
    SimilarityFunctionSpec,
    compute_similarity_matrix,
)

FAMILY_SHORT = {
    "schema_based_syntactic": "sb-syn",
    "schema_agnostic_syntactic": "sa-syn",
    "schema_based_semantic": "sb-sem",
    "schema_agnostic_semantic": "sa-sem",
}


def _build_cosine_graph():
    dataset = generate_dataset(dataset_spec("d2"), seed=42)
    spec = SimilarityFunctionSpec(
        family="schema_agnostic_syntactic",
        details={"model": "vector", "unit": "char", "n": 3,
                 "measure": "cosine_tfidf"},
        name="sa-syn:vec:char3:cosine_tfidf",
    )
    matrix = compute_similarity_matrix(dataset, spec)
    return matrix_to_graph(matrix)


def test_table3_corpus_statistics(benchmark, experiment_results):
    graph = benchmark(_build_cosine_graph)
    assert graph.n_edges > 0

    grouped: dict[tuple[str, str], list] = defaultdict(list)
    for result in experiment_results:
        grouped[(result.dataset, result.family)].append(result)

    datasets = sorted({r.dataset for r in experiment_results},
                      key=lambda c: int(c[1:]))
    families = [f for f in FAMILY_SHORT if any(
        (d, f) in grouped for d in datasets)]
    rows = []
    for dataset in datasets:
        row: list[object] = [dataset]
        for family in families:
            group = grouped.get((dataset, family))
            if not group:
                row.extend(["-", "-"])
                continue
            edges = np.array([r.n_edges for r in group])
            ratio = np.mean([r.normalized_size for r in group])
            row.append(len(group))
            row.append(f"{edges.mean():,.0f} ({100 * ratio:.1f}%)")
        rows.append(row)

    headers = ["ds"]
    for family in families:
        headers.extend([f"{FAMILY_SHORT[family]} |G|",
                        f"{FAMILY_SHORT[family]} |E| (%)"])
    table = render_table(
        headers, rows,
        title=(
            "Table 3 — retained graphs and average edges per dataset "
            f"(total |G| = {len(experiment_results)})"
        ),
    )
    save_report("table3_graph_corpus", table)
