"""Shared machine-readable report writer for the engine benchmarks.

Every self-asserting benchmark (`bench_*_engine.py`,
`bench_matching_sweep.py`, `bench_artifact_store.py`) accepts
``--json PATH`` and writes one report through :func:`write_report`;
CI uploads the files as workflow artifacts and renders one summary
line per report.

``passed`` records the speedup-floor verdict alone — a regressed run
under ``--no-assert`` still reports ``passed: false`` (with
``asserted: false``), so report consumers can never mistake a
tolerated regression for a pass.
"""

from __future__ import annotations

import json


def write_report(
    path: str,
    benchmark: str,
    smoke: bool,
    legacy_seconds: float,
    engine_seconds: float,
    speedup: float,
    floor: float,
    asserted: bool,
    **extra,
) -> None:
    """Write one benchmark report as JSON."""
    report = {
        "benchmark": benchmark,
        "profile": "smoke" if smoke else "full",
        "legacy_seconds": legacy_seconds,
        "engine_seconds": engine_seconds,
        "speedup": speedup,
        "floor": floor,
        "passed": bool(speedup >= floor),
        "asserted": bool(asserted),
        **extra,
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
