"""Dirty-ER clustering benchmark: legacy networkx path vs compiled engine.

Runs the dirty-ER workload — the four clustering algorithms (CC, MCC,
EMCC, GECG) over every graph at all 20 thresholds — twice:

* the **legacy path**: the frozen networkx reference bodies
  (``*_legacy`` in :mod:`repro.extensions.dirty_er`), each call
  re-pruning its own ``nx.Graph`` copy, scored with the scalar
  :func:`~repro.evaluation.metrics.evaluate_clusters`;
* the **engine path**:
  :func:`repro.experiments.dirty_er.run_dirty_er_sweeps`, where each
  graph is compiled once (one descending edge sort + symmetric CSR —
  :mod:`repro.graph.unipartite`) and every grid point consumes cached
  threshold selections through the bitset/csgraph/matmul kernels,
  scored through the shared ``GroundTruthIndex``;

then asserts

* **identical cluster assignments** for all four algorithms at every
  grid threshold on every graph (canonical partition comparison, in a
  dedicated untimed verification pass) and identical sweep scores, and
* an engine speedup of at least the floor (3x on both profiles — the
  redundancy removed is structural: per-call graph copies, per-call
  whole-graph clique enumeration, Python triangle loops).

With ``--workers N`` a third engine pass distributes the graphs over a
process pool and asserts the results are invariant under the worker
count.  ``--json PATH`` writes the machine-readable report CI uploads
as a workflow artifact.

Run directly (the CI smoke job does)::

    PYTHONPATH=src python benchmarks/bench_dirty_er_engine.py [--smoke] [-j N]
"""

from __future__ import annotations

import argparse
import copy
import sys
import time

import numpy as np

try:  # direct script execution: benchmarks/ is sys.path[0]
    from _report import write_report as _write_report
except ImportError:  # imported as benchmarks.bench_* from the repo root
    from benchmarks._report import write_report as _write_report

from repro.evaluation.metrics import evaluate_clusters
from repro.evaluation.sweep import (
    DEFAULT_THRESHOLD_GRID,
    SweepPoint,
    SweepResult,
)
from repro.experiments.dirty_er import run_dirty_er_sweeps
from repro.extensions.dirty_er import (
    DIRTY_ALGORITHM_CODES,
    create_clusterer,
)
from repro.graph.unipartite import UnipartiteGraph
from repro.pipeline.workbench import DirtyGraphRecord

#: Required engine-vs-legacy speedup.  The acceptance bar is 3x on the
#: CI smoke profile; the full profile holds the same floor.
MIN_SPEEDUP = 3.0
MIN_SPEEDUP_SMOKE = 3.0

#: (n_nodes, n_grouped, max_group, n_noise_edges) per synthetic graph.
#: Structure-heavy profiles (many planted groups, light noise): every
#: clique removal forces the legacy path to re-enumerate the whole
#: remaining graph while the engine re-searches one component.
DEFAULT_SHAPES = ((300, 220, 6, 360), (240, 180, 5, 300), (260, 190, 5, 320))
SMOKE_SHAPES = ((240, 180, 5, 300), (180, 130, 4, 240))


def synthetic_dirty_records(
    shapes: tuple[tuple[int, int, int, int], ...], seed: int = 42
) -> list[DirtyGraphRecord]:
    """Planted-cluster unipartite graphs with 2-decimal weights.

    A prefix of the nodes is partitioned into fully-connected duplicate
    groups carrying high weights; uniform noise edges carry low-to-mid
    weights.  Rounding to 2 decimals produces heavy weight ties, so
    the canonical tie-breaking of both paths is exercised at every
    grid point.  The planted intra-group pairs are the ground truth.
    """
    rng = np.random.default_rng(seed)
    records = []
    for index, (n_nodes, n_grouped, max_group, n_noise) in enumerate(shapes):
        edges: dict[tuple[int, int], float] = {}
        truth: set[tuple[int, int]] = set()
        node = 0
        while node < n_grouped:
            size = int(rng.integers(2, max_group + 1))
            group = list(range(node, min(node + size, n_grouped)))
            node += size
            if len(group) < 2:
                break
            for a_pos, a in enumerate(group):
                for b in group[a_pos + 1 :]:
                    edges[(a, b)] = max(
                        round(float(rng.uniform(0.55, 1.0)), 2), 0.01
                    )
                    truth.add((a, b))
        for _ in range(n_noise):
            a = int(rng.integers(n_nodes))
            b = int(rng.integers(n_nodes))
            if a == b:
                continue
            key = (min(a, b), max(a, b))
            if key in edges:
                continue
            edges[key] = max(round(float(rng.uniform(0.05, 0.6)), 2), 0.01)
        u, v = zip(*edges) if edges else ((), ())
        graph = UnipartiteGraph(
            n_nodes,
            u,
            v,
            tuple(edges.values()),
            name=f"dirty_bench_{index}",
        )
        records.append(
            DirtyGraphRecord(
                graph=graph,
                dataset=f"dirty_bench_{index}",
                family="synthetic",
                function=f"planted_{index}",
                category="BLC",
                ground_truth=truth,
            )
        )
    return records


# ----------------------------------------------------------------------
# Legacy path: per-call networkx clustering, verbatim semantics
# ----------------------------------------------------------------------
def legacy_dirty_sweep(clusterer, nx_graph, ground_truth, grid):
    """The pre-engine sweep loop: per-call pruning + scalar scoring,
    dispatching to the frozen ``*_legacy`` bodies."""
    weights = sorted(
        data.get("weight", 0.0) for _, _, data in nx_graph.edges(data=True)
    )
    sorted_weights = np.asarray(weights)
    result = SweepResult(algorithm=clusterer.code)
    previous_threshold = None
    previous_point = None
    for threshold in grid:
        if previous_point is not None and _no_weight_in_range(
            sorted_weights, previous_threshold, threshold
        ):
            point = SweepPoint(
                threshold=threshold,
                scores=previous_point.scores,
                seconds=previous_point.seconds,
            )
        else:
            start = time.perf_counter()
            clusters = clusterer.cluster_legacy(nx_graph, threshold)
            elapsed = time.perf_counter() - start
            scores = evaluate_clusters(clusters, ground_truth)
            point = SweepPoint(
                threshold=threshold, scores=scores, seconds=elapsed
            )
        result.points.append(point)
        previous_threshold = threshold
        previous_point = point
    return result


def _no_weight_in_range(sorted_weights, low, high):
    start = np.searchsorted(sorted_weights, low, side="left")
    end = np.searchsorted(sorted_weights, high, side="right")
    return start == end


def run_legacy(
    records: list[DirtyGraphRecord],
    grid=DEFAULT_THRESHOLD_GRID,
    codes=DIRTY_ALGORITHM_CODES,
) -> list[dict[str, SweepResult]]:
    all_sweeps = []
    for record in records:
        nx_graph = record.graph.to_networkx()
        all_sweeps.append(
            {
                code: legacy_dirty_sweep(
                    create_clusterer(code),
                    nx_graph,
                    record.ground_truth,
                    grid,
                )
                for code in codes
            }
        )
    return all_sweeps


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def assert_identical_sweeps(legacy, engine) -> None:
    """Every sweep point of every cell must match bit for bit."""
    assert len(legacy) == len(engine)
    for graph_index, (a_sweeps, b_sweeps) in enumerate(zip(legacy, engine)):
        assert set(a_sweeps) == set(b_sweeps)
        for code, a in a_sweeps.items():
            b = b_sweeps[code]
            label = f"graph {graph_index} {code}"
            assert len(a.points) == len(b.points), label
            for pa, pb in zip(a.points, b.points):
                assert pa.threshold == pb.threshold, label
                assert pa.scores == pb.scores, (
                    f"{label} t={pa.threshold}: "
                    f"{pa.scores} != {pb.scores}"
                )


def _canonical(clusters) -> list[tuple[int, ...]]:
    return sorted(tuple(sorted(cluster)) for cluster in clusters)


def assert_identical_clusterings(
    records: list[DirtyGraphRecord], grid=DEFAULT_THRESHOLD_GRID
) -> int:
    """Untimed verification: legacy and compiled partitions are equal,
    cluster for cluster, at every grid threshold."""
    checked = 0
    for record in records:
        nx_graph = record.graph.to_networkx()
        compiled = record.graph.compiled()
        for code in DIRTY_ALGORITHM_CODES:
            clusterer = create_clusterer(code)
            for threshold in grid:
                legacy = _canonical(
                    clusterer.cluster_legacy(nx_graph, threshold)
                )
                engine = _canonical(
                    clusterer.cluster_compiled(compiled, threshold)
                )
                assert legacy == engine, (
                    f"{record.function} {code} t={threshold}: "
                    f"clusterings diverge"
                )
                checked += 1
    return checked


def _fresh(records):
    """Deep-copied records so each timed pass starts with cold caches."""
    return copy.deepcopy(records)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI profile instead of the full benchmark profile",
    )
    parser.add_argument(
        "--workers", "-j", type=int, default=1,
        help="extra engine pass over a process pool (asserts invariance)",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report without failing on the speedup threshold",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="interleaved timing repeats; the per-path minimum is used",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the machine-readable report to this path",
    )
    args = parser.parse_args(argv)
    shapes = SMOKE_SHAPES if args.smoke else DEFAULT_SHAPES
    records = synthetic_dirty_records(shapes)
    grid = DEFAULT_THRESHOLD_GRID
    n_cells = len(records) * len(DIRTY_ALGORITHM_CODES)

    # Warm-up: one tiny untimed pass per path (imports, allocators).
    warm = synthetic_dirty_records(((24, 16, 3, 30),), seed=1)
    run_legacy(_fresh(warm), grid)
    run_dirty_er_sweeps(_fresh(warm), grid=grid)

    legacy_seconds = engine_seconds = float("inf")
    legacy_sweeps = engine_results = None
    for _ in range(max(args.repeats, 1)):
        fresh = _fresh(records)
        start = time.perf_counter()
        legacy_sweeps = run_legacy(fresh, grid)
        legacy_seconds = min(legacy_seconds, time.perf_counter() - start)

        fresh = _fresh(records)
        start = time.perf_counter()
        engine_results = run_dirty_er_sweeps(fresh, grid=grid)
        engine_seconds = min(engine_seconds, time.perf_counter() - start)

    engine_sweeps = [result.sweeps for result in engine_results]
    assert_identical_sweeps(legacy_sweeps, engine_sweeps)
    checked = assert_identical_clusterings(_fresh(records), grid)
    speedup = (
        legacy_seconds / engine_seconds if engine_seconds else float("inf")
    )
    print(
        f"[bench_dirty_er_engine] {n_cells} sweep cells "
        f"({len(records)} graphs x {len(DIRTY_ALGORITHM_CODES)} "
        f"algorithms x {len(grid)} thresholds) | legacy "
        f"{legacy_seconds:.2f}s | engine {engine_seconds:.2f}s | "
        f"speedup {speedup:.2f}x | {checked} clusterings identical "
        f"(min of {max(args.repeats, 1)})"
    )

    if args.workers > 1:
        start = time.perf_counter()
        parallel_results = run_dirty_er_sweeps(
            _fresh(records), grid=grid, workers=args.workers
        )
        parallel_seconds = time.perf_counter() - start
        assert_identical_sweeps(
            engine_sweeps, [result.sweeps for result in parallel_results]
        )
        print(
            f"[bench_dirty_er_engine] engine x{args.workers} workers "
            f"{parallel_seconds:.2f}s | speedup vs legacy "
            f"{legacy_seconds / parallel_seconds:.2f}x (identical)"
        )

    floor = MIN_SPEEDUP_SMOKE if args.smoke else MIN_SPEEDUP
    passed = speedup >= floor
    if args.json:
        _write_report(
            args.json,
            "bench_dirty_er_engine",
            smoke=args.smoke,
            legacy_seconds=legacy_seconds,
            engine_seconds=engine_seconds,
            speedup=speedup,
            floor=floor,
            asserted=not args.no_assert,
            cells=n_cells,
            clusterings_checked=checked,
        )
    if not args.no_assert and not passed:
        print(
            f"[bench_dirty_er_engine] FAIL: speedup {speedup:.2f}x below "
            f"the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
