"""Ablation — BMC's basis-collection parameter.

The paper notes that "in the vast majority of cases, BMC works best
when choosing the smallest entity collection as the basis".  This
ablation compares basis=left / right / smaller across the cached
corpus and checks that claim on our data.
"""

from __future__ import annotations

import numpy as np
from conftest import CACHE_DIR, active_config, save_report

from repro.evaluation.report import render_table
from repro.evaluation.sweep import threshold_sweep
from repro.matching import BestMatchClustering
from repro.pipeline.workbench import generate_corpus


def _basis_comparison():
    corpus = generate_corpus(
        active_config().corpus, cache_dir=CACHE_DIR / "corpus"
    )
    f1 = {"left": [], "right": [], "smaller": []}
    for record in corpus:
        for basis in f1:
            sweep = threshold_sweep(
                BestMatchClustering(basis=basis),
                record.graph,
                record.ground_truth,
            )
            f1[basis].append(sweep.best_scores.f_measure)
    return {basis: np.array(values) for basis, values in f1.items()}


def test_ablation_bmc_basis(benchmark):
    f1 = benchmark.pedantic(_basis_comparison, rounds=1, iterations=1)

    rows = [
        [basis, f"{values.mean():.3f}", f"{values.std():.3f}"]
        for basis, values in f1.items()
    ]
    smaller_wins = int(
        np.sum(
            (f1["smaller"] >= f1["left"]) & (f1["smaller"] >= f1["right"])
        )
    )
    table = render_table(
        ["basis", "mean F1", "std"],
        rows,
        title="Ablation — BMC basis collection",
    )
    table += (
        f"\nsmaller-basis at least ties the best fixed basis on "
        f"{smaller_wins}/{len(f1['smaller'])} graphs"
    )
    save_report("ablation_bmc_basis", table)

    # Paper's observation: the smaller collection is the right default.
    assert f1["smaller"].mean() >= min(
        f1["left"].mean(), f1["right"].mean()
    )
