"""Figures 7 and 8 — Nemenyi diagrams on precision and recall.

Expected shape (paper): CNC ranks first on precision; UMC first and
KRC second on recall.  The benchmark measures the rank computation on
both metrics.
"""

from __future__ import annotations

from conftest import save_report

from repro.evaluation.stats import mean_ranks, nemenyi_diagram
from repro.experiments.effectiveness import score_matrix
from repro.matching.registry import PAPER_ALGORITHM_CODES


def _both_rankings(precision_scores, recall_scores):
    return mean_ranks(precision_scores), mean_ranks(recall_scores)


def test_fig7_8_nemenyi_precision_recall(benchmark, experiment_results):
    precision_scores = score_matrix(experiment_results, "precision")
    recall_scores = score_matrix(experiment_results, "recall")
    precision_ranks, recall_ranks = benchmark(
        _both_rankings, precision_scores, recall_scores
    )

    text = (
        "Figure 7 — Nemenyi diagram on Precision\n"
        + nemenyi_diagram(list(PAPER_ALGORITHM_CODES), precision_scores)
        + "\n\nFigure 8 — Nemenyi diagram on Recall\n"
        + nemenyi_diagram(list(PAPER_ALGORITHM_CODES), recall_scores)
    )
    save_report("fig7_8_nemenyi_pr", text)

    precision_by_code = dict(zip(PAPER_ALGORITHM_CODES, precision_ranks))
    recall_by_code = dict(zip(PAPER_ALGORITHM_CODES, recall_ranks))
    # Paper: best precision rank is CNC's; best recall rank is UMC's,
    # with KRC in second place.
    assert min(precision_by_code, key=precision_by_code.get) == "CNC"
    recall_order = sorted(recall_by_code, key=recall_by_code.get)
    assert {"UMC", "KRC"} <= set(recall_order[:3])
