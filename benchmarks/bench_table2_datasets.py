"""Table 2 — technical characteristics of the ten datasets.

Prints the synthetic datasets' characteristics side by side with the
paper's numbers (the shape — size ratios, duplicate categories — is
what the substitution preserves).  The benchmark measures dataset
generation itself.
"""

from __future__ import annotations

from conftest import save_report

from repro.datasets import (
    CATEGORY_BY_DATASET,
    DATASET_CODES,
    PAPER_STATS,
    dataset_spec,
    generate_dataset,
)
from repro.evaluation.report import render_table


def _table_rows():
    rows = []
    for code in DATASET_CODES:
        paper = PAPER_STATS[code]
        dataset = generate_dataset(dataset_spec(code), seed=42)
        rows.append(
            [
                code,
                f"{paper.source_left}/{paper.source_right}",
                CATEGORY_BY_DATASET[code],
                f"{paper.n_left}x{paper.n_right}",
                paper.n_duplicates,
                f"{len(dataset.left)}x{len(dataset.right)}",
                dataset.n_duplicates,
                f"{dataset.left.mean_pairs_per_profile:.2f}",
                f"{dataset.right.mean_pairs_per_profile:.2f}",
                dataset.cartesian_size,
            ]
        )
    return rows


def test_table2_dataset_characteristics(benchmark):
    rows = benchmark(_table_rows)
    table = render_table(
        [
            "ds", "sources", "cat", "paper |V1|x|V2|", "paper |D|",
            "ours |V1|x|V2|", "ours |D|", "|p1|", "|p2|", "||V1xV2||",
        ],
        rows,
        title="Table 2 — dataset characteristics (paper vs synthetic)",
    )
    save_report("table2_datasets", table)
    assert len(rows) == 10
