"""Pairwise-kernel engine benchmark: legacy scalar path vs kernels.

Computes the schema-based kernel suite — all 16 string measures over
every schema attribute of a slice of the dataset catalog — twice:
once through the frozen pre-kernel-engine path
(:func:`~repro.pipeline.batched_strings.schema_based_matrix_legacy`:
per-pair Jaro and Monge-Elkan loops, one-left-at-a-time DPs, no value
deduplication) and once through the deduplicated, blocked kernel
engine (:func:`~repro.pipeline.batched_strings.schema_based_matrix`),
then

* asserts every similarity matrix is **bit-identical** across the two
  paths,
* asserts the kernel path is at least ``MIN_SPEEDUP``x faster
  wall-clock on the suite,
* re-runs the kernel path under ``--threads N`` and asserts the block
  scheduler's output is invariant under the thread count, and
* reports (and differentially checks) the batched RWMD kernel against
  its frozen pair loop.

Run directly (the CI smoke job does)::

    PYTHONPATH=src python benchmarks/bench_kernel_engine.py [--smoke] [-j N]

Not a pytest-benchmark harness on purpose: the comparison needs two
cold end-to-end runs of the same workload, not statistics over many
hot repetitions.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

try:  # direct script execution: benchmarks/ is sys.path[0]
    from _report import write_report as _write_report
except ImportError:  # imported as benchmarks.bench_* from the repo root
    from benchmarks._report import write_report as _write_report

from repro.datasets.catalog import dataset_spec
from repro.datasets.generator import generate_dataset
from repro.embeddings import FastTextLikeModel
from repro.embeddings.measures import (
    word_mover_similarity_matrix,
    word_mover_similarity_matrix_legacy,
)
from repro.pipeline.batched_strings import (
    StringBatch,
    schema_based_matrix,
    schema_based_matrix_legacy,
)
from repro.pipeline.kernels import UniquePlan, kernel_threads
from repro.textsim.registry import SCHEMA_BASED_MEASURES

#: Required kernel-vs-legacy speedup on the schema-based suite.  The
#: kernel engine removes structural redundancy (duplicated values,
#: per-pair Python loops), so 3x is attainable on one core.
MIN_SPEEDUP = 3.0

#: Floor for the tiny ``--smoke`` profile, where per-run timing noise
#: on loaded CI runners is large relative to the workload.
MIN_SPEEDUP_SMOKE = 2.0

#: Attribute workloads with the duplication profile of real clean-clean
#: data: (dataset code, scale, max_pairs).  All schema attributes and
#: all 16 measures of each dataset participate.
FULL_WORKLOAD = (
    ("d1", 0.1, 10_000),
    ("d6", 0.2, 10_000),
    ("d7", 0.2, 10_000),
    ("d8", 0.15, 10_000),
)

SMOKE_WORKLOAD = (("d7", 0.2, 10_000),)

_WARMUP = ("d1", 0.03, 1_000)


def _attribute_values(workload):
    """``(label, lefts, rights)`` for every schema attribute."""
    columns = []
    for code, scale, max_pairs in workload:
        dataset = generate_dataset(
            dataset_spec(code, scale=scale, max_pairs=max_pairs), seed=42
        )
        for attribute in dataset.spec.schema_attributes:
            columns.append(
                (
                    f"{code}:{attribute}",
                    dataset.left.attribute_values(attribute),
                    dataset.right.attribute_values(attribute),
                )
            )
    return columns


def run_suite(columns, compute) -> tuple[dict, float]:
    """All 16 measures on every column; returns matrices + seconds."""
    matrices = {}
    start = time.perf_counter()
    for label, lefts, rights in columns:
        batch = StringBatch(lefts, rights)
        for measure in SCHEMA_BASED_MEASURES:
            matrices[(label, measure)] = compute(
                lefts, rights, measure, batch
            )
    return matrices, time.perf_counter() - start


def assert_identical(legacy: dict, kernel: dict, context: str) -> None:
    assert legacy.keys() == kernel.keys(), context
    for key in legacy:
        assert np.array_equal(legacy[key], kernel[key]), (
            f"{context}: matrix differs for {key}"
        )


def bench_rwmd(columns) -> str:
    """Differential + timing report of the batched RWMD kernel."""
    label, lefts, rights = max(
        columns, key=lambda column: len(column[1]) * len(column[2])
    )
    model = FastTextLikeModel(dim=32)
    plan = UniquePlan.build(lefts, rights)
    left = [model.embed_tokens(text) for text in plan.lefts]
    right = [model.embed_tokens(text) for text in plan.rights]
    start = time.perf_counter()
    legacy = word_mover_similarity_matrix_legacy(left, right)
    legacy_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batched = word_mover_similarity_matrix(left, right)
    batched_seconds = time.perf_counter() - start
    assert np.array_equal(legacy, batched), f"RWMD differs on {label}"
    speedup = (
        legacy_seconds / batched_seconds if batched_seconds else float("inf")
    )
    return (
        f"[bench_kernel_engine] rwmd {label} "
        f"{len(plan.lefts)}x{len(plan.rights)} unique | legacy "
        f"{legacy_seconds:.2f}s | batched {batched_seconds:.2f}s | "
        f"speedup {speedup:.2f}x (bit-identical)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI profile instead of the full benchmark workload",
    )
    parser.add_argument(
        "--threads", "-j", type=int, default=1,
        help="also run the kernel path with N block-scheduler threads "
        "and assert thread-count invariance",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report without failing on the speedup threshold",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="interleaved timing repeats; the per-path minimum is used",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the machine-readable report to this path",
    )
    args = parser.parse_args(argv)
    workload = SMOKE_WORKLOAD if args.smoke else FULL_WORKLOAD
    columns = _attribute_values(workload)

    warm = _attribute_values((_WARMUP,))
    run_suite(warm, schema_based_matrix_legacy)
    run_suite(warm, schema_based_matrix)

    # Interleave the passes and keep each path's minimum: the minimum
    # of repeated runs is the noise-robust wall-clock estimator.
    legacy_seconds = kernel_seconds = float("inf")
    legacy: dict = {}
    kernel: dict = {}
    for _ in range(max(args.repeats, 1)):
        legacy, seconds = run_suite(columns, schema_based_matrix_legacy)
        legacy_seconds = min(legacy_seconds, seconds)
        kernel, seconds = run_suite(columns, schema_based_matrix)
        kernel_seconds = min(kernel_seconds, seconds)

    assert_identical(legacy, kernel, "legacy vs kernels")
    speedup = (
        legacy_seconds / kernel_seconds if kernel_seconds else float("inf")
    )
    cells = sum(len(l) * len(r) for _, l, r in columns)
    print(
        f"[bench_kernel_engine] {len(columns)} attributes x "
        f"{len(SCHEMA_BASED_MEASURES)} measures ({cells} pairs/measure) | "
        f"legacy {legacy_seconds:.2f}s | kernels {kernel_seconds:.2f}s | "
        f"speedup {speedup:.2f}x (bit-identical, min of "
        f"{max(args.repeats, 1)})"
    )

    if args.threads > 1:
        with kernel_threads(args.threads):
            threaded, threaded_seconds = run_suite(
                columns, schema_based_matrix
            )
        assert_identical(kernel, threaded, f"threads=1 vs {args.threads}")
        print(
            f"[bench_kernel_engine] kernels x{args.threads} threads "
            f"{threaded_seconds:.2f}s (bit-identical to serial)"
        )

    print(bench_rwmd(columns))

    floor = MIN_SPEEDUP_SMOKE if args.smoke else MIN_SPEEDUP
    passed = speedup >= floor
    if args.json:
        _write_report(
            args.json,
            "bench_kernel_engine",
            smoke=args.smoke,
            legacy_seconds=legacy_seconds,
            engine_seconds=kernel_seconds,
            speedup=speedup,
            floor=floor,
            asserted=not args.no_assert,
            attributes=len(columns),
        )
    if not args.no_assert and not passed:
        print(
            f"[bench_kernel_engine] FAIL: speedup {speedup:.2f}x below "
            f"the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
