"""Figure 4 — scalability: runtime vs number of edges.

Part (i) prints the cached protocol's (edges, runtime) series binned
per decade, per family — the paper's scatter.  Part (ii) benchmarks
UMC on synthetic graphs of growing size to expose the near-linear
scaling directly.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import save_report

from repro.evaluation.report import render_table
from repro.experiments.efficiency import scalability_points
from repro.graph import SimilarityGraph
from repro.matching import UniqueMappingClustering
from repro.matching.registry import PAPER_ALGORITHM_CODES


def _random_graph(n_edges: int, seed: int = 0) -> SimilarityGraph:
    rng = np.random.default_rng(seed)
    side = max(int(np.sqrt(n_edges)), 2)
    left = rng.integers(0, side, n_edges)
    right = rng.integers(0, side, n_edges)
    weight = rng.uniform(0.01, 1.0, n_edges)
    return SimilarityGraph(side, side, left, right, weight, validate=False)


@pytest.mark.parametrize("n_edges", [1_000, 10_000, 100_000])
def test_umc_scaling(benchmark, n_edges):
    graph = _random_graph(n_edges)
    matcher = UniqueMappingClustering()
    result = benchmark(matcher.match, graph, 0.3)
    result.validate(graph)


def test_fig4_scalability_report(benchmark, experiment_results):
    figure = benchmark(scalability_points, experiment_results)

    sections = []
    for family, by_algorithm in figure.items():
        rows = []
        for code in PAPER_ALGORITHM_CODES:
            points = by_algorithm[code]
            if not points:
                continue
            edges = np.array([e for e, _ in points])
            seconds = np.array([s for _, s in points])
            # Bin per decade of edge count.
            cells = []
            for low, high in [(0, 1e3), (1e3, 1e4), (1e4, 1e5)]:
                mask = (edges >= low) & (edges < high)
                cells.append(
                    f"{1000 * seconds[mask].mean():.1f}" if mask.any() else "-"
                )
            rows.append([code, *cells])
        sections.append(
            render_table(
                ["alg", "<1K edges (ms)", "1-10K (ms)", "10-100K (ms)"],
                rows,
                title=f"Figure 4 — runtime vs edges ({family})",
            )
        )
    save_report("fig4_scalability", "\n\n".join(sections))
    assert sections
