"""Figure 4 — scalability: runtime vs number of edges.

Part (i) prints the cached protocol's (edges, runtime) series binned
per decade, per family — the paper's scatter.  Part (ii) benchmarks
UMC on synthetic graphs of growing size to expose the near-linear
scaling directly.  Part (iii) traces the blocking layer's
recall-vs-reduction trade-off curve per scheme — the knob that
decides how much of the scatter's x-axis survives candidate
generation.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import save_report

from repro.datasets import dataset_spec, generate_dataset
from repro.evaluation.report import render_table
from repro.experiments.efficiency import scalability_points
from repro.graph import SimilarityGraph
from repro.matching import UniqueMappingClustering
from repro.matching.registry import PAPER_ALGORITHM_CODES
from repro.pipeline.blocking import build_candidate_set

# One curve per scheme family: each point dials the scheme's
# aggressiveness knob from permissive to aggressive.
BLOCKING_CURVES = {
    "tokens": tuple(
        f"tokens:max_df={max_df}" for max_df in (0.75, 0.5, 0.25, 0.1)
    ),
    "prefix": tuple(
        f"prefix:threshold={t}" for t in (0.2, 0.4, 0.6, 0.8)
    ),
    "minhash": tuple(
        f"minhash:bands={bands},perms=16" for bands in (16, 8, 4)
    ),
}


def _random_graph(n_edges: int, seed: int = 0) -> SimilarityGraph:
    rng = np.random.default_rng(seed)
    side = max(int(np.sqrt(n_edges)), 2)
    left = rng.integers(0, side, n_edges)
    right = rng.integers(0, side, n_edges)
    weight = rng.uniform(0.01, 1.0, n_edges)
    return SimilarityGraph(side, side, left, right, weight, validate=False)


@pytest.mark.parametrize("n_edges", [1_000, 10_000, 100_000])
def test_umc_scaling(benchmark, n_edges):
    graph = _random_graph(n_edges)
    matcher = UniqueMappingClustering()
    result = benchmark(matcher.match, graph, 0.3)
    result.validate(graph)


def test_fig4_scalability_report(benchmark, experiment_results):
    figure = benchmark(scalability_points, experiment_results)

    sections = []
    for family, by_algorithm in figure.items():
        rows = []
        for code in PAPER_ALGORITHM_CODES:
            points = by_algorithm[code]
            if not points:
                continue
            edges = np.array([e for e, _ in points])
            seconds = np.array([s for _, s in points])
            # Bin per decade of edge count.
            cells = []
            for low, high in [(0, 1e3), (1e3, 1e4), (1e4, 1e5)]:
                mask = (edges >= low) & (edges < high)
                cells.append(
                    f"{1000 * seconds[mask].mean():.1f}" if mask.any() else "-"
                )
            rows.append([code, *cells])
        sections.append(
            render_table(
                ["alg", "<1K edges (ms)", "1-10K (ms)", "10-100K (ms)"],
                rows,
                title=f"Figure 4 — runtime vs edges ({family})",
            )
        )
    save_report("fig4_scalability", "\n\n".join(sections))
    assert sections


def test_blocking_recall_reduction_curves(experiment_config):
    """Recall-vs-reduction curve per blocking spec.

    Aggregated over the active profile's datasets: reduction is
    total dense pairs over total candidates, recall the fraction of
    ground-truth pairs that survive.  Each curve must be coherent —
    tightening a scheme's knob never lowers its reduction — and the
    permissive end of every curve must keep recall above 0.9.
    """
    corpus = experiment_config.corpus
    datasets = [
        generate_dataset(
            dataset_spec(
                code, scale=corpus.scale, max_pairs=corpus.max_pairs
            ),
            seed=corpus.seed,
        )
        for code in corpus.datasets[:3]
    ]

    sections = []
    for scheme, curve in BLOCKING_CURVES.items():
        rows = []
        reductions = []
        for spec in curve:
            dense = 0
            pairs = 0
            truth_total = 0
            truth_hit = 0
            for dataset in datasets:
                candidates = build_candidate_set(
                    dataset.left.texts(), dataset.right.texts(), spec
                )
                dense += candidates.n_left * candidates.n_right
                pairs += candidates.n_pairs
                truth_total += len(dataset.ground_truth)
                truth_hit += round(
                    candidates.recall(dataset.ground_truth)
                    * len(dataset.ground_truth)
                )
            reduction = dense / max(pairs, 1)
            recall = truth_hit / max(truth_total, 1)
            reductions.append(reduction)
            rows.append([spec, f"{reduction:.1f}", f"{recall:.4f}"])
        assert reductions == sorted(reductions), scheme
        assert float(rows[0][2]) >= 0.9, scheme
        sections.append(
            render_table(
                ["blocking spec", "reduction (x)", "recall"],
                rows,
                title=(
                    f"Figure 4 — blocking recall vs reduction ({scheme})"
                ),
            )
        )
    save_report("fig4_blocking_tradeoff", "\n\n".join(sections))
    assert sections
