"""Corpus-engine benchmark: direct path vs shared-artifact engine.

Generates the same reduced graph corpus twice — once through the
pre-refactor *direct* path (every function rebuilds every model,
embedding and encoding from scratch via
:func:`~repro.pipeline.similarity_functions.compute_similarity_matrix`)
and once through the shared-artifact engine path used by
:func:`~repro.pipeline.workbench.generate_corpus` — then

* asserts the two corpora are **bit-identical** (same retained graphs,
  same edge sets, same weights), and
* asserts the engine is at least ``MIN_SPEEDUP``x faster wall-clock.

Run directly (the CI smoke job does)::

    PYTHONPATH=src python benchmarks/bench_corpus_engine.py [--smoke] [-j N]

Not a pytest-benchmark harness on purpose: the comparison needs two
cold end-to-end runs of the same workload, not statistics over many
hot repetitions.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

try:  # direct script execution: benchmarks/ is sys.path[0]
    from _report import write_report as _write_report
except ImportError:  # imported as benchmarks.bench_* from the repo root
    from benchmarks._report import write_report as _write_report

from repro.datasets.catalog import dataset_spec
from repro.datasets.generator import generate_dataset
from repro.pipeline.graph_builder import matrix_to_graph
from repro.pipeline.similarity_functions import (
    compute_similarity_matrix,
    enumerate_functions,
)
from repro.pipeline.workbench import (
    GraphCorpusConfig,
    GraphRecord,
    _all_matches_zero,
    _enumerate_kwargs,
    generate_corpus,
)

#: Required engine-vs-direct speedup (the redundancy the engine removes
#: is structural — models rebuilt 4-6x per group — so 2x is conservative).
MIN_SPEEDUP = 2.0

#: Floor for the tiny ``--smoke`` profile, where per-run timing noise
#: on loaded CI runners is large relative to the ~0.2s workload.
MIN_SPEEDUP_SMOKE = 1.5

#: Reduced but representative config: all four families, both n-gram
#: units, every vector/graph/semantic measure, token-sharing string
#: measures — the full redundancy profile of the paper's taxonomy at a
#: fraction of the size.
REDUCED_CONFIG = GraphCorpusConfig(
    datasets=("d1", "d2"),
    scale=0.06,
    max_pairs=10_000,
    schema_based_measures=(
        "levenshtein",
        "qgrams",
        "cosine_tokens",
        "dice",
        "jaccard",
        "generalized_jaccard",
    ),
    ngram_models=(("char", 3), ("token", 1)),
    max_attributes=2,
)

#: Tiny CI profile; same structure, smaller datasets.
SMOKE_CONFIG = GraphCorpusConfig(
    datasets=("d1",),
    scale=0.04,
    max_pairs=4_000,
    schema_based_measures=("cosine_tokens", "dice", "jaccard"),
    ngram_models=(("token", 1),),
    max_attributes=1,
)

#: Micro workload run untimed before measuring, so one-off process
#: costs (imports, allocator warm-up, BLAS thread spin-up) don't skew
#: the timed passes.  Artifact caches are per-run instances, so the
#: warm-up does not pre-warm the engine's caches.
_WARMUP_CONFIG = GraphCorpusConfig(
    datasets=("d1",),
    scale=0.02,
    max_pairs=1_000,
    schema_based_measures=("jaccard",),
    ngram_models=(("token", 1),),
    vector_measures=("cosine_tf",),
    graph_measures=("containment",),
    semantic_models=("fasttext_like",),
    max_attributes=1,
)


def run_direct(config: GraphCorpusConfig) -> list[GraphRecord]:
    """The pre-refactor corpus loop: one flat pass, no shared artifacts."""
    from repro.datasets.catalog import CATEGORY_BY_DATASET

    records: list[GraphRecord] = []
    for code in config.datasets:
        dataset = generate_dataset(
            dataset_spec(code, scale=config.scale, max_pairs=config.max_pairs),
            seed=config.seed,
        )
        specs = enumerate_functions(dataset, **_enumerate_kwargs(config))
        for spec in specs:
            start = time.perf_counter()
            matrix = compute_similarity_matrix(dataset, spec)
            graph = matrix_to_graph(
                matrix,
                name=f"{dataset.code}:{spec.name}",
                metadata={
                    "dataset": dataset.code,
                    "family": spec.family,
                    "function": spec.name,
                },
            )
            elapsed = time.perf_counter() - start
            if _all_matches_zero(graph, dataset.ground_truth):
                continue
            records.append(
                GraphRecord(
                    graph=graph,
                    dataset=dataset.code,
                    family=spec.family,
                    function=spec.name,
                    category=CATEGORY_BY_DATASET[dataset.code],
                    ground_truth=dataset.ground_truth,
                    build_seconds=elapsed,
                )
            )
    return records


def assert_identical(
    direct: list[GraphRecord], engine: list[GraphRecord]
) -> None:
    """Both corpora must match graph for graph, bit for bit."""
    assert len(direct) == len(engine), (
        f"corpus size differs: direct {len(direct)} vs engine {len(engine)}"
    )
    for a, b in zip(direct, engine):
        assert (a.dataset, a.function) == (b.dataset, b.function), (
            f"order differs: {a.dataset}:{a.function} vs "
            f"{b.dataset}:{b.function}"
        )
        label = f"{a.dataset}:{a.function}"
        assert np.array_equal(a.graph.left, b.graph.left), label
        assert np.array_equal(a.graph.right, b.graph.right), label
        assert np.array_equal(a.graph.weight, b.graph.weight), label


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI profile instead of the reduced benchmark config",
    )
    parser.add_argument(
        "--workers", "-j", type=int, default=1,
        help="engine worker processes (timed as a separate pass)",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report without failing on the speedup threshold",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="interleaved timing repeats; the per-path minimum is used",
    )
    parser.add_argument(
        "--json", type=str, default=None,
        help="write the machine-readable report to this path",
    )
    args = parser.parse_args(argv)
    config = SMOKE_CONFIG if args.smoke else REDUCED_CONFIG

    run_direct(_WARMUP_CONFIG)
    generate_corpus(_WARMUP_CONFIG)

    # Interleave the passes and keep each path's minimum: the minimum
    # of repeated runs is the noise-robust wall-clock estimator.
    direct_seconds = engine_seconds = float("inf")
    direct: list[GraphRecord] = []
    engine: list[GraphRecord] = []
    for _ in range(max(args.repeats, 1)):
        start = time.perf_counter()
        direct = run_direct(config)
        direct_seconds = min(direct_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        engine = generate_corpus(config)
        engine_seconds = min(engine_seconds, time.perf_counter() - start)

    assert_identical(direct, engine)
    speedup = direct_seconds / engine_seconds if engine_seconds else float("inf")
    print(
        f"[bench_corpus_engine] {len(engine)} graphs | direct "
        f"{direct_seconds:.2f}s | engine {engine_seconds:.2f}s | "
        f"speedup {speedup:.2f}x (bit-identical, min of "
        f"{max(args.repeats, 1)})"
    )

    if args.workers > 1:
        start = time.perf_counter()
        parallel = generate_corpus(config, workers=args.workers)
        parallel_seconds = time.perf_counter() - start
        assert_identical(engine, parallel)
        print(
            f"[bench_corpus_engine] engine x{args.workers} workers "
            f"{parallel_seconds:.2f}s | speedup vs direct "
            f"{direct_seconds / parallel_seconds:.2f}x (bit-identical)"
        )

    floor = MIN_SPEEDUP_SMOKE if args.smoke else MIN_SPEEDUP
    passed = speedup >= floor
    if args.json:
        _write_report(
            args.json,
            "bench_corpus_engine",
            smoke=args.smoke,
            legacy_seconds=direct_seconds,
            engine_seconds=engine_seconds,
            speedup=speedup,
            floor=floor,
            asserted=not args.no_assert,
            graphs=len(engine),
        )
    if not args.no_assert and not passed:
        print(
            f"[bench_corpus_engine] FAIL: speedup {speedup:.2f}x below "
            f"the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
