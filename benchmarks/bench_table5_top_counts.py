"""Table 5 — #Top1 / Delta(%) / #Top2 per family and dataset category.

Which algorithm wins how often on balanced (BLC), one-sided (OSD) and
scarce (SCR) collections, per input family.  Expected shape (paper):
KRC and UMC collect most wins, with UMC strongest on balanced
collections and KRC/EXC on scarce ones.  The benchmark measures the
ranking aggregation.
"""

from __future__ import annotations

from conftest import save_report

from repro.evaluation.report import render_table
from repro.experiments.effectiveness import top_counts
from repro.matching.registry import PAPER_ALGORITHM_CODES


def test_table5_top_counts(benchmark, experiment_results):
    table = benchmark(top_counts, experiment_results)

    sections = []
    for (family, category), counters in sorted(table.items()):
        body = [
            [
                code,
                counters[code].top1,
                f"{counters[code].delta_percent:.2f}",
                counters[code].top2,
            ]
            for code in PAPER_ALGORITHM_CODES
        ]
        sections.append(
            render_table(
                ["alg", "#Top1", "Delta(%)", "#Top2"],
                body,
                title=f"Table 5 — {family} / {category}",
            )
        )
    save_report("table5_top_counts", "\n\n".join(sections))

    # Aggregate shape: KRC + UMC collect a plurality of Top1 wins.
    total_wins = {code: 0 for code in PAPER_ALGORITHM_CODES}
    for counters in table.values():
        for code, cell in counters.items():
            total_wins[code] += cell.top1
    leaders = sorted(total_wins, key=total_wins.get, reverse=True)[:4]
    assert {"KRC", "UMC"} & set(leaders)
