"""ZeroER-like unsupervised matcher.

ZeroER (Wu et al., SIGMOD 2020) matches entities with *zero* labelled
examples by fitting a two-component generative mixture over pairwise
similarity features and classifying by posterior odds.  This stand-in
keeps that core recipe on the bipartite similarity graph:

1. fit :class:`~repro.baselines.gmm.GaussianMixture1D` to the edge
   weights (matches concentrate high, non-matches low);
2. score every edge with the posterior of the match component;
3. enforce the CCER 1-1 constraint by greedy unique mapping on the
   posterior (ZeroER itself adds a transitivity/uniqueness layer on
   top of its probabilities).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.gmm import GaussianMixture1D
from repro.graph.bipartite import SimilarityGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["ZeroERLikeMatcher"]


class ZeroERLikeMatcher(Matcher):
    """Unsupervised generative matcher (ZeroER stand-in).

    Parameters
    ----------
    posterior_threshold:
        Minimum posterior probability of the match component for an
        edge to be considered (ZeroER uses 0.5).
    """

    code = "ZER"
    full_name = "ZeroER-like (GMM-EM posterior matching)"

    def __init__(self, posterior_threshold: float = 0.5, seed: int = 42) -> None:
        if not 0.0 <= posterior_threshold <= 1.0:
            raise ValueError("posterior_threshold must be in [0, 1]")
        self.posterior_threshold = posterior_threshold
        self.seed = seed

    def match(
        self, graph: SimilarityGraph, threshold: float = 0.0
    ) -> MatchingResult:
        """Match by posterior odds; ``threshold`` additionally prunes
        edges by raw weight first (0 disables, making the matcher fully
        unsupervised end-to-end)."""
        mask = graph.weight > threshold
        left = graph.left[mask]
        right = graph.right[mask]
        weight = graph.weight[mask]
        if weight.size < 2:
            return self._result([], threshold)

        mixture = GaussianMixture1D(seed=self.seed).fit(weight)
        posterior = mixture.predict_proba(weight)
        candidates = posterior >= self.posterior_threshold

        order = np.argsort(-posterior[candidates], kind="stable")
        cand_left = left[candidates][order]
        cand_right = right[candidates][order]

        matched_left: set[int] = set()
        matched_right: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for i, j in zip(cand_left, cand_right):
            i, j = int(i), int(j)
            if i in matched_left or j in matched_right:
                continue
            matched_left.add(i)
            matched_right.add(j)
            pairs.append((i, j))
        pairs.sort()
        return self._result(pairs, threshold)
