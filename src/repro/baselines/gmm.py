"""Two-component 1-D Gaussian mixture fitted with EM.

The generative backbone of the ZeroER-like matcher: similarity scores
of matching pairs concentrate high, non-matching ones low; EM recovers
the two components without labels.  Implemented from scratch (no
sklearn offline) with standard numerical guards: responsibilities in
log-space are unnecessary in 1-D, but variances are floored to avoid
the classic collapsing-component singularity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianMixture1D"]

_VARIANCE_FLOOR = 1e-6


class GaussianMixture1D:
    """EM-fitted mixture of two univariate Gaussians.

    Parameters
    ----------
    max_iterations:
        EM iteration budget.
    tolerance:
        Convergence threshold on the log-likelihood improvement.
    seed:
        Seed for the quantile-based initialisation jitter.
    """

    def __init__(
        self,
        max_iterations: int = 200,
        tolerance: float = 1e-8,
        seed: int = 42,
    ) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed
        self.means_ = np.zeros(2)
        self.variances_ = np.ones(2)
        self.weights_ = np.full(2, 0.5)
        self.converged_ = False
        self.log_likelihood_ = -np.inf

    def fit(self, values: np.ndarray) -> "GaussianMixture1D":
        """Fit the mixture to 1-D ``values``."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size < 2:
            raise ValueError("need at least two observations")
        # Initialise components at the lower/upper quartiles.
        low, high = np.quantile(values, [0.25, 0.75])
        if low == high:
            jitter = np.random.default_rng(self.seed).normal(0, 1e-3, 2)
            low, high = low + jitter[0], high + abs(jitter[1]) + 1e-3
        self.means_ = np.array([low, high])
        spread = max(values.std() ** 2, _VARIANCE_FLOOR)
        self.variances_ = np.array([spread, spread])
        self.weights_ = np.full(2, 0.5)

        previous = -np.inf
        for _ in range(self.max_iterations):
            responsibilities, log_likelihood = self._e_step(values)
            self._m_step(values, responsibilities)
            if abs(log_likelihood - previous) < self.tolerance:
                self.converged_ = True
                break
            previous = log_likelihood
        self.log_likelihood_ = previous
        return self

    def _densities(self, values: np.ndarray) -> np.ndarray:
        """Per-component scaled densities, shape ``(n, 2)``."""
        diff = values[:, None] - self.means_[None, :]
        variance = self.variances_[None, :]
        return (
            self.weights_[None, :]
            / np.sqrt(2 * np.pi * variance)
            * np.exp(-0.5 * diff * diff / variance)
        )

    def _e_step(self, values: np.ndarray) -> tuple[np.ndarray, float]:
        densities = self._densities(values)
        totals = densities.sum(axis=1)
        totals = np.maximum(totals, 1e-300)
        responsibilities = densities / totals[:, None]
        return responsibilities, float(np.log(totals).sum())

    def _m_step(
        self, values: np.ndarray, responsibilities: np.ndarray
    ) -> None:
        mass = responsibilities.sum(axis=0)
        mass = np.maximum(mass, 1e-12)
        self.weights_ = mass / values.size
        self.means_ = (responsibilities * values[:, None]).sum(axis=0) / mass
        diff = values[:, None] - self.means_[None, :]
        self.variances_ = np.maximum(
            (responsibilities * diff * diff).sum(axis=0) / mass,
            _VARIANCE_FLOOR,
        )

    def predict_proba(self, values: np.ndarray) -> np.ndarray:
        """Posterior probability of the *high-mean* component."""
        values = np.asarray(values, dtype=np.float64).ravel()
        densities = self._densities(values)
        totals = np.maximum(densities.sum(axis=1), 1e-300)
        high = int(np.argmax(self.means_))
        return densities[:, high] / totals
