"""Supervised learned matcher (DITTO stand-in).

DITTO fine-tunes a pre-trained language model on labelled pairs.  The
offline stand-in keeps the *role* — a discriminative model trained on
labelled data, giving it the training-set advantage the paper
discusses — with a from-scratch logistic regression over multiple
similarity features of each pair.

Training pairs: all ground-truth matches present in the feature
graphs plus a sampled set of non-matching pairs.  Prediction applies
the 1-1 constraint greedily by descending match probability.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import SimilarityGraph
from repro.matching.base import MatchingResult

__all__ = ["LearnedMatcher", "stack_feature_matrices"]


def stack_feature_matrices(graphs: list[SimilarityGraph]) -> np.ndarray:
    """Dense ``n_left x n_right x k`` feature tensor from k graphs.

    All graphs must share the same node sets; each contributes one
    similarity feature per pair (missing edges contribute 0).
    """
    if not graphs:
        raise ValueError("need at least one feature graph")
    n_left, n_right = graphs[0].n_left, graphs[0].n_right
    for graph in graphs:
        if graph.n_left != n_left or graph.n_right != n_right:
            raise ValueError("feature graphs must share node sets")
    tensor = np.zeros((n_left, n_right, len(graphs)))
    for k, graph in enumerate(graphs):
        tensor[graph.left, graph.right, k] = graph.weight
    return tensor


class LearnedMatcher:
    """Logistic regression over pair features with a 1-1 constraint.

    Parameters
    ----------
    learning_rate, epochs, l2:
        Gradient-descent hyperparameters of the from-scratch logistic
        regression.
    negative_ratio:
        Sampled negatives per positive training pair.
    """

    code = "LRN"
    full_name = "Learned matcher (logistic regression over features)"

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-4,
        negative_ratio: int = 3,
        seed: int = 42,
    ) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.negative_ratio = negative_ratio
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        training_matches: set[tuple[int, int]],
    ) -> "LearnedMatcher":
        """Train on labelled matches plus sampled non-matches.

        ``features`` is the ``n_left x n_right x k`` tensor from
        :func:`stack_feature_matrices`; ``training_matches`` are the
        labelled positive pairs.
        """
        n_left, n_right, k = features.shape
        rng = np.random.default_rng(self.seed)
        positives = sorted(training_matches)
        if not positives:
            raise ValueError("need at least one positive training pair")
        n_negatives = len(positives) * self.negative_ratio
        negatives: list[tuple[int, int]] = []
        guard = 0
        while len(negatives) < n_negatives and guard < 50 * n_negatives:
            guard += 1
            pair = (
                int(rng.integers(n_left)),
                int(rng.integers(n_right)),
            )
            if pair not in training_matches:
                negatives.append(pair)

        pairs = positives + negatives
        labels = np.concatenate(
            [np.ones(len(positives)), np.zeros(len(negatives))]
        )
        rows = np.array([p[0] for p in pairs])
        cols = np.array([p[1] for p in pairs])
        x = features[rows, cols, :]

        weights = np.zeros(k)
        bias = 0.0
        for _ in range(self.epochs):
            logits = x @ weights + bias
            probabilities = _sigmoid(logits)
            gradient = probabilities - labels
            weights -= self.learning_rate * (
                x.T @ gradient / len(pairs) + self.l2 * weights
            )
            bias -= self.learning_rate * float(gradient.mean())
        self.weights_ = weights
        self.bias_ = bias
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        features: np.ndarray,
        probability_threshold: float = 0.5,
    ) -> MatchingResult:
        """Greedy 1-1 matching by descending predicted probability."""
        if self.weights_ is None:
            raise RuntimeError("fit() must be called before predict()")
        n_left, n_right, _ = features.shape
        scores = _sigmoid(features @ self.weights_ + self.bias_)
        candidates = np.argwhere(scores >= probability_threshold)
        order = np.argsort(
            -scores[candidates[:, 0], candidates[:, 1]], kind="stable"
        )
        matched_left: set[int] = set()
        matched_right: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for idx in order:
            i, j = int(candidates[idx, 0]), int(candidates[idx, 1])
            if i in matched_left or j in matched_right:
                continue
            matched_left.add(i)
            matched_right.add(j)
            pairs.append((i, j))
        pairs.sort()
        return MatchingResult(
            pairs=pairs, algorithm=self.code, threshold=probability_threshold
        )


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))
