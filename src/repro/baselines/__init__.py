"""State-of-the-art matcher stand-ins for the Table 7 comparison.

The paper compares tuned bipartite matching (UMC over schema-agnostic
TF-IDF cosine graphs) against two recent matchers: ZeroER
(unsupervised, generative) and DITTO (supervised, deep).  Neither is
runnable offline, so this package provides stand-ins occupying the
same two roles (see DESIGN.md substitutions):

* :class:`ZeroERLikeMatcher` — ZeroER's core idea: model the pairwise
  similarity distribution as a two-component generative mixture
  (match / non-match), fit with EM, match pairs by posterior odds
  under a 1-1 constraint.  Implemented from scratch on numpy.
* :class:`LearnedMatcher` — the supervised discriminative role:
  logistic regression over a vector of similarity features, trained
  on a labelled subset of pairs (DITTO's training-data advantage),
  implemented from scratch on numpy.
"""

from repro.baselines.gmm import GaussianMixture1D
from repro.baselines.learned import LearnedMatcher
from repro.baselines.zeroer_like import ZeroERLikeMatcher

__all__ = ["GaussianMixture1D", "ZeroERLikeMatcher", "LearnedMatcher"]
