"""Construction of n-gram vector models.

The paper's bag models (Appendix B.2.1):

* ``TF(t, e) = f_t / N_e`` — occurrence frequency normalized by the
  number of grams in the entity;
* ``TF-IDF(t, e) = TF(t, e) * IDF(t)`` with
  ``IDF(t) = log(|E| / (DF(t) + 1))`` where ``E`` is the full entity
  collection (here: the union of both input collections, since IDF
  must be comparable across the bipartition).

IDF is clamped at zero: a gram occurring in (almost) every entity
would otherwise receive a negative weight, which breaks the ``[0, 1]``
range of the downstream similarity measures — the clamp treats such
grams as stop words, matching their intent.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.textsim.tokenize import character_ngrams, token_ngrams

__all__ = [
    "VectorModel",
    "ProfileSpace",
    "build_profile_space",
    "build_vector_models",
    "ngram_profiles",
]


def ngram_profiles(texts: list[str], n: int, unit: str) -> list[Counter]:
    """Per-entity n-gram frequency profiles.

    ``unit`` selects ``"char"`` or ``"token"`` n-grams.
    """
    if unit == "char":
        return [Counter(character_ngrams(text, n)) for text in texts]
    if unit == "token":
        return [Counter(token_ngrams(text, n)) for text in texts]
    raise ValueError("unit must be 'char' or 'token'")


@dataclass
class VectorModel:
    """A collection of entities as a sparse TF or TF-IDF matrix.

    Attributes
    ----------
    matrix:
        ``n_entities x vocabulary`` CSR matrix of gram weights.
    binary:
        Same shape, 1 where a gram is present (used by the set-based
        measures).
    document_frequency:
        Per-gram document frequency *within this collection* (used by
        ARCS, which weights grams by ``DF1 * DF2``).
    vocabulary:
        Gram string -> column index (shared by both collections).
    """

    matrix: sparse.csr_matrix
    binary: sparse.csr_matrix
    document_frequency: np.ndarray
    vocabulary: dict[str, int]

    @property
    def n_entities(self) -> int:
        return self.matrix.shape[0]


@dataclass
class ProfileSpace:
    """Weighting-independent artifacts of one ``(unit, n)`` model pair.

    Extracting n-gram profiles and the shared vocabulary/DF statistics
    is the expensive part of :func:`build_vector_models`, and it is
    identical for the TF and TF-IDF weightings.  A ``ProfileSpace``
    computes it once so both weightings (and repeated builds) reuse it.
    """

    profiles_left: list[Counter]
    profiles_right: list[Counter]
    vocabulary: dict[str, int]
    df_left: np.ndarray
    df_right: np.ndarray


def build_profile_space(
    texts_left: list[str],
    texts_right: list[str],
    n: int,
    unit: str,
) -> ProfileSpace:
    """Profiles plus shared vocabulary/DF for two entity collections."""
    profiles_left = ngram_profiles(texts_left, n, unit)
    profiles_right = ngram_profiles(texts_right, n, unit)

    vocabulary: dict[str, int] = {}
    for profile in profiles_left:
        for gram in profile:
            vocabulary.setdefault(gram, len(vocabulary))
    for profile in profiles_right:
        for gram in profile:
            vocabulary.setdefault(gram, len(vocabulary))

    n_terms = len(vocabulary)
    df_left = np.zeros(n_terms)
    df_right = np.zeros(n_terms)
    for profile in profiles_left:
        for gram in profile:
            df_left[vocabulary[gram]] += 1
    for profile in profiles_right:
        for gram in profile:
            df_right[vocabulary[gram]] += 1

    return ProfileSpace(
        profiles_left=profiles_left,
        profiles_right=profiles_right,
        vocabulary=vocabulary,
        df_left=df_left,
        df_right=df_right,
    )


def build_vector_models(
    texts_left: list[str],
    texts_right: list[str],
    n: int,
    unit: str,
    weighting: str = "tf",
    space: ProfileSpace | None = None,
) -> tuple[VectorModel, VectorModel]:
    """Build aligned vector models for two entity collections.

    The vocabulary and IDF statistics are shared so that the two
    matrices live in the same space.  ``weighting`` is ``"tf"`` or
    ``"tfidf"``.  ``space`` optionally reuses a precomputed
    :class:`ProfileSpace` (it must stem from the same texts/n/unit).
    """
    if weighting not in ("tf", "tfidf"):
        raise ValueError("weighting must be 'tf' or 'tfidf'")
    if space is None:
        space = build_profile_space(texts_left, texts_right, n, unit)

    if weighting == "tfidf":
        n_docs = len(space.profiles_left) + len(space.profiles_right)
        with np.errstate(divide="ignore"):
            idf = np.log(n_docs / (space.df_left + space.df_right + 1.0))
        idf = np.maximum(idf, 0.0)
    else:
        idf = None

    left = _assemble(
        space.profiles_left, space.vocabulary, space.df_left, idf
    )
    right = _assemble(
        space.profiles_right, space.vocabulary, space.df_right, idf
    )
    return left, right


def _assemble(
    profiles: list[Counter],
    vocabulary: dict[str, int],
    document_frequency: np.ndarray,
    idf: np.ndarray | None,
) -> VectorModel:
    rows: list[int] = []
    cols: list[int] = []
    tf_values: list[float] = []
    for row, profile in enumerate(profiles):
        total = sum(profile.values())
        if total == 0:
            continue
        for gram, count in profile.items():
            rows.append(row)
            cols.append(vocabulary[gram])
            tf_values.append(count / total)
    shape = (len(profiles), len(vocabulary))
    weights = np.asarray(tf_values)
    if idf is not None and len(cols) > 0:
        weights = weights * idf[np.asarray(cols)]
    matrix = sparse.csr_matrix(
        (weights, (rows, cols)), shape=shape, dtype=np.float64
    )
    binary = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=shape, dtype=np.float64
    )
    return VectorModel(
        matrix=matrix,
        binary=binary,
        document_frequency=document_frequency,
        vocabulary=vocabulary,
    )
