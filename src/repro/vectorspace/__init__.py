"""Schema-agnostic n-gram vector ("bag") models — Appendix B.2.1.

An entity is represented as a sparse vector over the distinct character
or token n-grams of the collection pair, weighted by TF or TF-IDF.  Six
similarity measures are defined on these models (ARCS, Jaccard, Cosine
and Generalized Jaccard with TF or TF-IDF weights); combined with the
six representation models (character n in {2,3,4}, token n in {1,2,3})
they yield the paper's 36 vector-based similarity functions.

All measures are computed *all-pairs* as dense ``n1 x n2`` matrices via
sparse linear algebra, which is what makes the no-blocking experimental
protocol feasible.
"""

from repro.vectorspace.measures import (
    arcs_matrix,
    cosine_matrix,
    generalized_jaccard_matrix,
    jaccard_matrix,
)
from repro.vectorspace.ngram_vector import (
    ProfileSpace,
    VectorModel,
    build_profile_space,
    build_vector_models,
    ngram_profiles,
)

__all__ = [
    "VectorModel",
    "ProfileSpace",
    "build_profile_space",
    "build_vector_models",
    "ngram_profiles",
    "cosine_matrix",
    "jaccard_matrix",
    "generalized_jaccard_matrix",
    "arcs_matrix",
]
