"""All-pairs similarity measures on n-gram vector models.

Every function returns a dense ``n1 x n2`` numpy array.  The measures
follow Appendix B.2.1:

* Cosine (CS) on TF or TF-IDF weights;
* Jaccard (JS) on the binary gram sets;
* Generalized Jaccard (GJS) on TF or TF-IDF weights;
* ARCS, which scores common grams by the inverse log of the product of
  their per-collection document frequencies.

ARCS is unbounded above; the graph builder min-max normalizes all
weights afterwards, as the paper does for every similarity graph.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.vectorspace.ngram_vector import VectorModel

__all__ = [
    "cosine_matrix",
    "jaccard_matrix",
    "generalized_jaccard_matrix",
    "arcs_matrix",
    "pairwise_min_sum",
]


def cosine_matrix(left: VectorModel, right: VectorModel) -> np.ndarray:
    """Cosine similarity of the weighted vectors, all pairs."""
    a = _row_normalized(left.matrix)
    b = _row_normalized(right.matrix)
    return np.asarray((a @ b.T).todense())


def _row_normalized(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A1
    scale = np.divide(
        1.0, norms, out=np.zeros_like(norms), where=norms > 0
    )
    return sparse.diags(scale) @ matrix


def jaccard_matrix(left: VectorModel, right: VectorModel) -> np.ndarray:
    """Set Jaccard over present grams: ``|A∩B| / |A∪B|``."""
    intersection = np.asarray((left.binary @ right.binary.T).todense())
    size_left = left.binary.sum(axis=1).A1
    size_right = right.binary.sum(axis=1).A1
    union = size_left[:, None] + size_right[None, :] - intersection
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(union > 0, intersection / union, 0.0)
    return result


def pairwise_min_sum(
    left: sparse.csr_matrix,
    right: sparse.csr_matrix,
    threads: int | None = None,
) -> np.ndarray:
    """``sum_k min(a_k, b_k)`` for every row pair of two sparse matrices.

    Iterates the shared vocabulary in CSC order; each term contributes
    the outer minimum of its posting lists, so the cost is
    ``sum_k |A_k| * |B_k|`` — proportional to a sparse matrix product.

    The column sweep runs through the block scheduler of
    :mod:`repro.pipeline.kernels` when the kernel thread pool is
    active: each block owns a contiguous *left-row* range, restricting
    every column's posting list to its rows with one binary search per
    column (CSC row indices are sorted), so blocks write disjoint
    output rows.  Per output cell the additions still arrive in CSC
    column order — exactly the serial order — so the result is
    bit-identical and **invariant under the thread count**.
    """
    # Imported lazily: repro.pipeline modules import this module at
    # load time, so a top-level import would be circular.
    from repro.pipeline.kernels import get_kernel_threads, row_blocks, run_blocks

    n_left = left.shape[0]
    n_right = right.shape[0]
    result = np.zeros((n_left, n_right))
    left_csc = left.tocsc()
    right_csc = right.tocsc()
    left_csc.sort_indices()
    right_csc.sort_indices()
    n_cols = left.shape[1]
    threads = get_kernel_threads() if threads is None else max(threads, 1)
    blocks = (
        row_blocks(n_left, max(n_right, 1), threads)
        if threads > 1
        else [(0, n_left)]
    )

    def block(start: int, stop: int) -> None:
        view = result[start:stop]
        whole = start == 0 and stop == n_left
        for col in range(n_cols):
            a_start, a_end = left_csc.indptr[col], left_csc.indptr[col + 1]
            if a_start == a_end:
                continue
            b_start, b_end = right_csc.indptr[col], right_csc.indptr[col + 1]
            if b_start == b_end:
                continue
            rows_a = left_csc.indices[a_start:a_end]
            vals_a = left_csc.data[a_start:a_end]
            if not whole:
                low = np.searchsorted(rows_a, start)
                high = np.searchsorted(rows_a, stop)
                if low == high:
                    continue
                rows_a = rows_a[low:high] - start
                vals_a = vals_a[low:high]
            rows_b = right_csc.indices[b_start:b_end]
            vals_b = right_csc.data[b_start:b_end]
            view[np.ix_(rows_a, rows_b)] += np.minimum.outer(vals_a, vals_b)

    run_blocks(blocks, block, threads)
    return result


def generalized_jaccard_matrix(
    left: VectorModel, right: VectorModel
) -> np.ndarray:
    """``Σ min(a_k, b_k) / Σ max(a_k, b_k)`` for every pair.

    Uses the identity ``Σ max = Σ a + Σ b - Σ min`` to avoid a second
    pass.
    """
    min_sum = pairwise_min_sum(left.matrix, right.matrix)
    sums_left = left.matrix.sum(axis=1).A1
    sums_right = right.matrix.sum(axis=1).A1
    max_sum = sums_left[:, None] + sums_right[None, :] - min_sum
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(max_sum > 0, min_sum / max_sum, 0.0)
    return result


def arcs_matrix(left: VectorModel, right: VectorModel) -> np.ndarray:
    """ARCS: rare common grams contribute more.

    ``ARCS(e_i, e_j) = Σ_{k common} log 2 / log(DF1(k) * DF2(k))``.
    A gram unique to one entity in each collection would make the
    denominator ``log 1 = 0``; the product is clamped at 2 so the
    rarest grams contribute exactly 1, preserving the measure's
    ordering while keeping it finite.
    """
    df_product = np.maximum(
        left.document_frequency * right.document_frequency, 2.0
    )
    gram_weight = np.log(2.0) / np.log(df_product)
    weighted = left.binary @ sparse.diags(gram_weight)
    return np.asarray((weighted @ right.binary.T).todense())
