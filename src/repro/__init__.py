"""repro — Bipartite graph matching algorithms for Clean-Clean Entity Resolution.

A full reproduction of the EDBT 2022 empirical evaluation by Papadakis,
Efthymiou, Thanos and Hassanzadeh: the eight bipartite matching
algorithms, the similarity-function taxonomy that builds their input
graphs, the synthetic counterparts of the ten benchmark datasets, and
the evaluation/statistics framework that regenerates every table and
figure of the paper.

Quickstart
----------
>>> from repro import SimilarityGraph, create_matcher
>>> graph = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.9), (1, 1, 0.8),
...                                           (0, 1, 0.3)])
>>> result = create_matcher("UMC").match(graph, threshold=0.5)
>>> sorted(result.pairs)
[(0, 0), (1, 1)]
"""

from repro.graph import SimilarityGraph, figure1_graph, min_max_normalize
from repro.matching import (
    ALGORITHM_CODES,
    PAPER_ALGORITHM_CODES,
    Matcher,
    MatchingResult,
    create_matcher,
    paper_matchers,
)

__version__ = "1.0.0"

__all__ = [
    "SimilarityGraph",
    "figure1_graph",
    "min_max_normalize",
    "Matcher",
    "MatchingResult",
    "create_matcher",
    "paper_matchers",
    "ALGORITHM_CODES",
    "PAPER_ALGORITHM_CODES",
    "__version__",
]
