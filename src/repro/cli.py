"""Command-line interface.

Eleven subcommands cover the library's main entry points:

``repro match``
    Run one algorithm on an edge-list CSV (``left,right,weight``) and
    print the matched pairs.
``repro generate``
    Generate a synthetic dataset profile and write its two collections
    plus the ground truth as CSV files.
``repro sweep``
    Threshold-sweep one or all algorithms on an edge-list CSV with a
    ground-truth CSV and print the effectiveness table; ``--workers``
    distributes the per-algorithm sweeps over a process pool (the
    table is invariant under the worker count).
``repro experiments``
    Run the cached full protocol and print the headline tables
    (Table 4 and the Figure 2 Nemenyi diagram); ``--workers`` covers
    both corpus generation and the (graph x algorithm) sweep cells.
``repro corpus``
    Generate (or warm the cache of) the similarity-graph corpus via
    the shared-artifact engine, optionally over several worker
    processes, and print the per-stage cost breakdown.
``repro dirty-er``
    Generate the dirty-ER self-join corpus (the union collection
    joined with itself, through the same engine/store stack) and
    threshold-sweep the four clustering algorithms (CC, MCC, EMCC,
    GECG) on the compiled unipartite engine, printing the macro
    cluster-level effectiveness table.
``repro store``
    Inspect (``ls``), shrink (``gc``) or empty (``purge``) the
    persistent cross-run artifact store that ``--artifact-store``
    points corpus generation at (:mod:`repro.pipeline.store`).
``repro block``
    Build and inspect a blocking candidate set for one dataset
    profile: pair counts, reduction factor, ground-truth pair recall
    and per-scheme statistics (:mod:`repro.pipeline.blocking`).
``repro shard``
    Inspect the sharded execution tier: ``repro shard plan`` prints
    the deterministic shard plan (row ranges, estimated spill sizes,
    chunk grid) a given memory budget produces for one dataset
    profile (:mod:`repro.pipeline.sharding`).
``repro serve``
    Run the ER-as-a-service HTTP API (:mod:`repro.service`): warm the
    frozen per-dataset resolver indexes once at startup, then serve
    ``POST /resolve`` (micro-batched single-record resolution),
    ``POST /match``, ``GET /healthz`` and ``GET /datasets``.  Startup
    failures (unknown dataset, bad port, broken store) exit 1 with a
    clear message.
``repro stream``
    Replay a dataset's self-join union collection as a deterministic
    insertion stream (seeded arrival order, configurable batch size)
    through the incremental tier — frozen blocking-index probes,
    per-batch sparse kernel passes, in-place compiled-graph delta
    merges and incremental clustering — and verify the final graph
    and partitions are bit-identical to the batch path
    (:mod:`repro.pipeline.streaming`); exits 1 on any divergence.

``--workers`` and ``--artifact-store`` only change wall-clock, never
results; ``--max-memory`` (on ``corpus``/``experiments``) likewise
only bounds peak memory — generation runs through the sharded
execution tier and the corpus stays bit-identical.  ``--blocking``
(on ``corpus``/``experiments``/``dirty-er``) is
different: it routes generation through the sparse candidate-pair
path and *changes the corpus* — edges outside the candidate set
disappear — so it is part of the corpus cache key.  The long-running subcommands (``sweep``, ``experiments``,
``corpus``, ``dirty-er``) execute on the fault-tolerant runner of
:mod:`repro.pipeline.resilience` and journal completed work as it
lands; after a Ctrl-C or crash, ``--resume`` skips everything already
journaled and the final output is bit-identical to an uninterrupted
run.  A KeyboardInterrupt exits with code 130 (journal already on
disk); a permanent task failure prints the failed task keys and exits
with code 1.  Install exposes the ``repro`` console script; the
module also runs as ``python -m repro.cli``.

The reference documentation in ``docs/CLI.md`` is drift-checked
against :func:`build_parser` by ``tests/test_docs.py`` — keep the two
in sync.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.evaluation.report import render_table
from repro.graph.bipartite import SimilarityGraph
from repro.matching.registry import (
    ALGORITHM_CODES,
    PAPER_ALGORITHM_CODES,
    create_matcher,
)

__all__ = ["main", "build_parser"]


def _size_budget(text: str) -> int:
    """Argparse type for ``--budget``: validate at parse time."""
    from repro.pipeline.store import parse_size_budget

    try:
        return parse_size_budget(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_resume_flag(parser) -> None:
    """The ``--resume`` flag shared by the journaled subcommands."""
    parser.add_argument(
        "--resume", action="store_true",
        help=(
            "skip work already journaled by an interrupted run "
            "(results are bit-identical to an uninterrupted run)"
        ),
    )


def _add_store_flags(parser, store_help: str) -> None:
    """The persistent-store flag pair shared by the corpus-generating
    subcommands (``experiments``, ``corpus``, ``dirty-er``)."""
    parser.add_argument(
        "--artifact-store", type=Path, default=None, help=store_help
    )
    parser.add_argument(
        "--store-read-tier", type=Path, default=None,
        help=(
            "shared read-only store directory layered under "
            "--artifact-store; tier hits never write anywhere"
        ),
    )


def _blocking_spec(text: str) -> str:
    """Argparse type for ``--blocking``: canonicalize at parse time."""
    from repro.pipeline.blocking import canonical_blocking

    try:
        return canonical_blocking(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


_BLOCKING_HELP = (
    "blocking scheme SCHEME[:PARAMS][+SCHEME...] — tokens, prefix, "
    "minhash (e.g. tokens:max_df=0.2+minhash:bands=8); similarity is "
    "computed only on candidate pairs"
)

_MAX_MEMORY_HELP = (
    "peak-memory budget for corpus generation, e.g. 64M / 2G: "
    "datasets run shard-by-shard through the sharded execution tier "
    "(repro.pipeline.sharding) and the corpus stays bit-identical"
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Bipartite graph matching algorithms for Clean-Clean "
            "Entity Resolution (EDBT 2022 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    match = commands.add_parser(
        "match", help="run one algorithm on an edge-list CSV"
    )
    match.add_argument("graph", type=Path, help="CSV: left,right,weight")
    match.add_argument(
        "--algorithm", "-a", default="UMC",
        choices=sorted(ALGORITHM_CODES),
    )
    match.add_argument("--threshold", "-t", type=float, default=0.5)

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset profile"
    )
    generate.add_argument("dataset", help="profile code (d1 .. d10)")
    generate.add_argument("--scale", type=float, default=None)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--out", type=Path, default=Path("."))

    sweep = commands.add_parser(
        "sweep", help="threshold-sweep algorithms on a graph + truth"
    )
    sweep.add_argument("graph", type=Path, help="CSV: left,right,weight")
    sweep.add_argument("truth", type=Path, help="CSV: left,right")
    sweep.add_argument(
        "--algorithm", "-a", default="all",
        help="algorithm code or 'all' (paper's eight)",
    )
    sweep.add_argument(
        "--workers", "-j", type=int, default=None,
        help="worker processes for per-algorithm sweeps (default: serial)",
    )
    sweep.add_argument(
        "--artifact-store", type=Path, default=None,
        help=(
            "accepted for flag parity with corpus/experiments; sweep "
            "reads a prebuilt graph, so no artifacts are stored"
        ),
    )
    sweep.add_argument(
        "--blocking", type=_blocking_spec, default=None,
        help=(
            "accepted for flag parity with corpus/experiments; sweep "
            "reads a prebuilt graph, so no candidates are generated"
        ),
    )
    sweep.add_argument(
        "--max-memory", type=_size_budget, default=None,
        help=(
            "accepted for flag parity with corpus/experiments; sweep "
            "reads a prebuilt graph, so nothing is sharded"
        ),
    )
    _add_resume_flag(sweep)

    experiments = commands.add_parser(
        "experiments", help="run the cached full protocol"
    )
    experiments.add_argument(
        "--profile", choices=("default", "smoke"), default="smoke"
    )
    experiments.add_argument("--cache", type=Path, default=None)
    experiments.add_argument(
        "--workers", "-j", type=int, default=None,
        help=(
            "worker processes for corpus generation and the matching "
            "sweep cells (default: serial)"
        ),
    )
    experiments.add_argument(
        "--blocking", type=_blocking_spec, default=None,
        help=_BLOCKING_HELP,
    )
    experiments.add_argument(
        "--max-memory", type=_size_budget, default=None,
        help=_MAX_MEMORY_HELP,
    )
    _add_store_flags(
        experiments,
        "persistent cross-run artifact store for corpus generation "
        "(default: disabled)",
    )
    _add_resume_flag(experiments)

    corpus = commands.add_parser(
        "corpus", help="generate the similarity-graph corpus"
    )
    corpus.add_argument(
        "--profile", choices=("default", "smoke"), default="smoke"
    )
    corpus.add_argument("--cache", type=Path, default=None)
    corpus.add_argument(
        "--workers", "-j", type=int, default=None,
        help="worker processes for corpus generation (default: serial)",
    )
    corpus.add_argument(
        "--progress", action="store_true",
        help="print every generated graph with its stage timings",
    )
    corpus.add_argument(
        "--blocking", type=_blocking_spec, default=None,
        help=_BLOCKING_HELP,
    )
    corpus.add_argument(
        "--max-memory", type=_size_budget, default=None,
        help=_MAX_MEMORY_HELP,
    )
    _add_store_flags(
        corpus,
        "persistent cross-run artifact store: embeddings, token "
        "matrices and entity graphs are reused by every config "
        "sharing a dataset (default: disabled)",
    )
    _add_resume_flag(corpus)

    dirty = commands.add_parser(
        "dirty-er",
        help="cluster the dirty-ER self-join corpus and print the table",
    )
    dirty.add_argument(
        "--profile", choices=("default", "smoke"), default="smoke"
    )
    dirty.add_argument("--cache", type=Path, default=None)
    dirty.add_argument(
        "--algorithm", "-a", default="all",
        help="clustering code (CC, MCC, EMCC, GECG) or 'all'",
    )
    dirty.add_argument(
        "--workers", "-j", type=int, default=None,
        help=(
            "worker processes for corpus generation and the per-graph "
            "clustering sweeps (default: serial)"
        ),
    )
    dirty.add_argument(
        "--progress", action="store_true",
        help="print every generated graph and swept graph as it lands",
    )
    dirty.add_argument(
        "--blocking", type=_blocking_spec, default=None,
        help=(
            _BLOCKING_HELP
            + " (self-join: candidates over the union collection)"
        ),
    )
    _add_store_flags(
        dirty,
        "persistent cross-run artifact store for self-join corpus "
        "generation (default: disabled)",
    )
    _add_resume_flag(dirty)

    store = commands.add_parser(
        "store", help="inspect or clean the persistent artifact store"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_commands.add_parser(
        "ls", help="list store entries, most recently used first"
    )
    store_ls.add_argument(
        "--json", action="store_true",
        help=(
            "machine-readable listing: entries, totals and quarantine "
            "counts as one JSON object"
        ),
    )
    store_gc = store_commands.add_parser(
        "gc", help="evict stale entries, then LRU entries over the budget"
    )
    store_gc.add_argument(
        "--budget", type=_size_budget, default=None,
        help="size budget, e.g. 500K / 64M / 2G (default: stale-only gc)",
    )
    store_purge = store_commands.add_parser(
        "purge", help="delete every store entry"
    )
    for sub in (store_ls, store_gc, store_purge):
        sub.add_argument(
            "--artifact-store", type=Path, default=None,
            help=(
                "store directory (default: <cache>/artifacts under "
                "REPRO_CACHE or .repro_cache)"
            ),
        )

    block = commands.add_parser(
        "block", help="build and inspect a blocking candidate set"
    )
    block.add_argument("dataset", help="profile code (d1 .. d10)")
    block.add_argument(
        "--blocking", type=_blocking_spec, default="tokens",
        help=_BLOCKING_HELP + " (default: tokens)",
    )
    block.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale factor (default: catalog default)",
    )
    block.add_argument(
        "--max-pairs", type=int, default=None,
        help="cap on generated duplicate pairs (default: catalog default)",
    )
    block.add_argument("--seed", type=int, default=42)

    shard = commands.add_parser(
        "shard", help="inspect the sharded execution tier"
    )
    shard_commands = shard.add_subparsers(dest="shard_command", required=True)
    shard_plan = shard_commands.add_parser(
        "plan",
        help="print the deterministic shard plan for one dataset profile",
    )
    shard_plan.add_argument("dataset", help="profile code (d1 .. d10)")
    shard_plan.add_argument(
        "--max-memory", type=_size_budget, default=None,
        help="memory budget, e.g. 64M / 2G (default: a single shard)",
    )
    shard_plan.add_argument(
        "--blocking", type=_blocking_spec, default=None,
        help=_BLOCKING_HELP + " (shapes the candidate-density estimate)",
    )
    shard_plan.add_argument(
        "--shards", type=int, default=None,
        help="force an explicit shard count instead of deriving it "
             "from the budget",
    )
    shard_plan.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale factor (default: catalog default)",
    )
    shard_plan.add_argument(
        "--max-pairs", type=int, default=None,
        help="cap on generated duplicate pairs (default: catalog default)",
    )
    shard_plan.add_argument("--seed", type=int, default=42)

    serve = commands.add_parser(
        "serve", help="run the ER-as-a-service resolution HTTP API"
    )
    serve.add_argument(
        "datasets", nargs="+",
        help="dataset profile codes to index and serve (d1 .. d10)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="interface to bind"
    )
    serve.add_argument(
        "--port", type=int, default=8000, help="TCP port to bind"
    )
    serve.add_argument(
        "--blocking", type=_blocking_spec, default="tokens",
        help="blocking spec for the query-time candidate index",
    )
    serve.add_argument(
        "--measure", default="jaccard",
        help="default similarity measure for /resolve and /match",
    )
    serve.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale factor (default: catalog default)",
    )
    serve.add_argument(
        "--max-pairs", type=int, default=None,
        help="cap on generated duplicate pairs (default: catalog default)",
    )
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument(
        "--tick", type=float, default=0.002,
        help="micro-batch coalescing window in seconds",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="max /resolve requests coalesced into one kernel pass",
    )
    serve.add_argument(
        "--no-coalesce", action="store_true",
        help="serial per-request execution (disables micro-batching)",
    )
    _add_store_flags(
        serve,
        "persistent artifact store the warmup loads dataset "
        "artifacts from (and commits fresh builds to)",
    )

    stream = commands.add_parser(
        "stream",
        help="replay a dataset as an insertion stream and verify "
             "batch equivalence",
    )
    stream.add_argument("dataset", help="profile code (d1 .. d10)")
    stream.add_argument(
        "--blocking", type=_blocking_spec, default="tokens",
        help=_BLOCKING_HELP + " (default: tokens)",
    )
    stream.add_argument(
        "--measure", default="jaccard",
        help="schema-based similarity measure scoring candidate pairs",
    )
    stream.add_argument(
        "--threshold", type=float, default=0.5,
        help="clustering threshold (inclusive, the dirty-ER convention)",
    )
    stream.add_argument(
        "--algorithm", "-a", default="all",
        help="clustering code (CC, MCC, EMCC, GECG) or 'all'",
    )
    stream.add_argument(
        "--batch-size", type=int, default=32,
        help="records ingested per stream batch (the final state is "
             "invariant to this)",
    )
    stream.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale factor (default: catalog default)",
    )
    stream.add_argument(
        "--max-pairs", type=int, default=None,
        help="cap on generated duplicate pairs (default: catalog default)",
    )
    stream.add_argument(
        "--seed", type=int, default=42,
        help="seeds both the dataset and the arrival permutation",
    )
    stream.add_argument(
        "--json", action="store_true",
        help="machine-readable report: equivalence verdicts and the "
             "cost breakdown as one JSON object",
    )
    return parser


def _store_read_tier(args: argparse.Namespace) -> Path | None:
    """Validated ``--store-read-tier``: only meaningful with a
    writable ``--artifact-store`` above it."""
    if args.store_read_tier is not None and args.artifact_store is None:
        raise SystemExit(
            "error: --store-read-tier requires --artifact-store (the "
            "tier is read-only; a writable store must sit above it)"
        )
    return args.store_read_tier


def _read_graph(path: Path) -> SimilarityGraph:
    edges = []
    n_left = 0
    n_right = 0
    with path.open() as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#") or row[0] == "left":
                continue
            left, right, weight = int(row[0]), int(row[1]), float(row[2])
            edges.append((left, right, weight))
            n_left = max(n_left, left + 1)
            n_right = max(n_right, right + 1)
    return SimilarityGraph.from_edges(n_left, n_right, edges, name=str(path))


def _read_truth(path: Path) -> set[tuple[int, int]]:
    truth = set()
    with path.open() as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#") or row[0] == "left":
                continue
            truth.add((int(row[0]), int(row[1])))
    return truth


def _command_match(args: argparse.Namespace) -> int:
    graph = _read_graph(args.graph)
    matcher = create_matcher(args.algorithm)
    result = matcher.match(graph, args.threshold)
    print(f"# {args.algorithm} t={args.threshold} pairs={len(result)}")
    for i, j in result.pairs:
        print(f"{i},{j}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    from repro.datasets import dataset_spec, generate_dataset

    dataset = generate_dataset(
        dataset_spec(args.dataset, scale=args.scale), seed=args.seed
    )
    args.out.mkdir(parents=True, exist_ok=True)
    for side, collection in (("left", dataset.left), ("right", dataset.right)):
        attributes = collection.attribute_names()
        path = args.out / f"{args.dataset}_{side}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["id", *attributes])
            for profile in collection:
                writer.writerow(
                    [profile.identifier]
                    + [profile.value(a) for a in attributes]
                )
    truth_path = args.out / f"{args.dataset}_truth.csv"
    with truth_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["left", "right"])
        for i, j in sorted(dataset.ground_truth):
            writer.writerow([i, j])
    print(
        f"wrote {args.dataset}: {len(dataset.left)} x "
        f"{len(dataset.right)} profiles, {dataset.n_duplicates} matches "
        f"-> {args.out}"
    )
    return 0


def _sweep_one_cell(
    payload: tuple[SimilarityGraph, set[tuple[int, int]], str],
) -> dict:
    """One ``repro sweep`` cell (module-level so process pools can
    pickle it); returns ``{code: sweep}`` so the result shares the
    sweep journal codec of the experiment runner."""
    from repro.evaluation.sweep import threshold_sweep

    graph, truth, code = payload
    matcher = (
        create_matcher(code, max_moves=2_000, time_limit=2.0)
        if code == "BAH"
        else create_matcher(code)
    )
    return {code: threshold_sweep(matcher, graph, truth)}


def _default_journal_dir():
    from repro.experiments.config import default_cache_dir

    return default_cache_dir() / "journal"


def _sweep_run_key(args: argparse.Namespace) -> str:
    """Run identity of one ``repro sweep``: inputs by content, plus
    the algorithm selection."""
    import hashlib

    digest = hashlib.blake2b(digest_size=8)
    digest.update(args.graph.read_bytes())
    digest.update(b"\x00")
    digest.update(args.truth.read_bytes())
    return f"cli-sweep-{args.algorithm}-{digest.hexdigest()}"


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.runner import SWEEP_JOURNAL_CODEC
    from repro.pipeline.resilience import ResilientPool, RunJournal, Task

    if args.artifact_store is not None:
        # Accepted for flag parity with corpus/experiments; say so
        # instead of silently ignoring it.
        print(
            "note: --artifact-store has no effect on sweep (the input "
            "graph is prebuilt; no artifacts are computed)"
        )
    if args.blocking is not None:
        print(
            "note: --blocking has no effect on sweep (the input graph "
            "is prebuilt; no candidates are generated)"
        )
    if args.max_memory is not None:
        print(
            "note: --max-memory has no effect on sweep (the input "
            "graph is prebuilt; nothing is sharded)"
        )
    graph = _read_graph(args.graph)
    truth = _read_truth(args.truth)
    if args.algorithm == "all":
        codes = PAPER_ALGORITHM_CODES
    else:
        codes = (args.algorithm.upper(),)
    journal = None
    if args.resume:
        # Content-keyed run identity: the same inputs resume, changed
        # inputs never reuse a stale journal entry.
        journal = RunJournal(
            _default_journal_dir(), _sweep_run_key(args)
        )
    # One cell per algorithm; assembling on the code order keeps the
    # table identical to a serial run for any worker count.
    runner = ResilientPool(
        args.workers if args.workers is not None else 0,
        kind="process",
        journal=journal,
        codec=SWEEP_JOURNAL_CODEC,
        label="sweep",
    )
    tasks = [
        Task(key=code, fn=_sweep_one_cell, args=((graph, truth, code),))
        for code in codes
    ]
    results = runner.run(tasks)
    sweeps = [next(iter(results[code].values())) for code in codes]
    if journal is not None:
        journal.clear()
    rows = []
    for code, sweep in zip(codes, sweeps):
        best = sweep.best_scores
        rows.append(
            [
                code,
                f"{sweep.best_threshold:.2f}",
                f"{best.precision:.3f}",
                f"{best.recall:.3f}",
                f"{best.f_measure:.3f}",
                f"{1000 * sweep.best_seconds:.1f}",
            ]
        )
    print(
        render_table(
            ["alg", "t*", "P", "R", "F1", "ms"],
            rows,
            title=f"Threshold sweep on {args.graph} (|truth|={len(truth)})",
        )
    )
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    from repro.evaluation.report import format_float
    from repro.evaluation.stats import nemenyi_diagram
    from repro.experiments import (
        DEFAULT_BENCH_CONFIG,
        SMOKE_CONFIG,
        run_experiments,
    )
    from repro.experiments.effectiveness import (
        macro_effectiveness,
        score_matrix,
    )

    config = (
        DEFAULT_BENCH_CONFIG if args.profile == "default" else SMOKE_CONFIG
    )
    if args.blocking is not None:
        import dataclasses

        config = dataclasses.replace(
            config,
            corpus=dataclasses.replace(
                config.corpus, blocking=args.blocking
            ),
        )
    results = run_experiments(
        config,
        cache_dir=args.cache,
        workers=args.workers,
        artifact_store=args.artifact_store,
        store_read_tier=_store_read_tier(args),
        resume=args.resume,
        max_memory=args.max_memory,
    )
    rows = [
        [
            row.algorithm,
            format_float(row.precision_mu),
            format_float(row.recall_mu),
            format_float(row.f1_mu),
            format_float(row.f1_sigma),
        ]
        for row in macro_effectiveness(results)
    ]
    print(
        render_table(
            ["alg", "P", "R", "F1", "F1 sigma"],
            rows,
            title=(
                f"Table 4 over {len(results)} graphs "
                f"({args.profile} profile)"
            ),
        )
    )
    print()
    print(
        nemenyi_diagram(
            list(PAPER_ALGORITHM_CODES),
            score_matrix(results, "f_measure"),
        )
    )
    return 0


def _command_corpus(args: argparse.Namespace) -> int:
    from repro.experiments import DEFAULT_BENCH_CONFIG, SMOKE_CONFIG
    from repro.experiments.config import default_cache_dir
    from repro.pipeline.workbench import generate_corpus

    config = (
        DEFAULT_BENCH_CONFIG if args.profile == "default" else SMOKE_CONFIG
    ).corpus
    if args.blocking is not None:
        import dataclasses

        config = dataclasses.replace(config, blocking=args.blocking)
    cache = args.cache if args.cache is not None else default_cache_dir()
    records = generate_corpus(
        config,
        cache_dir=cache / "corpus",
        progress=args.progress,
        workers=args.workers,
        artifact_store=args.artifact_store,
        store_read_tier=_store_read_tier(args),
        resume=args.resume,
        journal_dir=cache / "journal",
        max_memory=args.max_memory,
    )
    artifact = sum(r.artifact_seconds for r in records)
    matrix = sum(r.matrix_seconds for r in records)
    graph = sum(r.graph_seconds for r in records)
    total = sum(r.build_seconds for r in records)
    print(
        f"corpus ready: {len(records)} graphs "
        f"(key {config.cache_key()}) -> {cache / 'corpus'}"
    )
    print(
        f"build cost {total:.1f}s = {artifact:.1f}s artifacts + "
        f"{matrix:.1f}s matrices + {graph:.1f}s graphs"
    )
    if config.blocking is not None and records:
        mean_reduction = sum(
            r.candidate_reduction for r in records
        ) / len(records)
        print(
            f"blocking {config.blocking}: mean candidate reduction "
            f"{mean_reduction:.1f}x"
        )
    if args.artifact_store is not None:
        from repro.pipeline.store import ArtifactStore

        store = ArtifactStore(args.artifact_store)
        entries = store.entries()
        print(
            f"artifact store: {len(entries)} entries, "
            f"{_format_bytes(sum(e.nbytes for e in entries))} "
            f"-> {store.root}"
        )
    return 0


def _command_dirty_er(args: argparse.Namespace) -> int:
    from repro.evaluation.report import format_float
    from repro.experiments import DEFAULT_BENCH_CONFIG, SMOKE_CONFIG
    from repro.experiments.config import default_cache_dir
    from repro.experiments.dirty_er import run_dirty_er_sweeps
    from repro.extensions.dirty_er import DIRTY_ALGORITHM_CODES
    from repro.pipeline.workbench import generate_dirty_corpus

    config = (
        DEFAULT_BENCH_CONFIG if args.profile == "default" else SMOKE_CONFIG
    )
    if args.algorithm == "all":
        codes = DIRTY_ALGORITHM_CODES
    else:
        code = args.algorithm.upper()
        if code not in DIRTY_ALGORITHM_CODES:
            print(
                f"unknown dirty-ER algorithm {args.algorithm!r}; expected "
                f"one of {' '.join(DIRTY_ALGORITHM_CODES)} or 'all'",
                file=sys.stderr,
            )
            return 2
        codes = (code,)
    cache = args.cache if args.cache is not None else default_cache_dir()
    records = generate_dirty_corpus(
        config.corpus,
        cache_dir=cache / "corpus",
        progress=args.progress,
        workers=args.workers,
        artifact_store=args.artifact_store,
        store_read_tier=_store_read_tier(args),
        resume=args.resume,
        journal_dir=cache / "journal",
        blocking=args.blocking,
    )
    workers = args.workers if args.workers is not None else 1
    from repro.pipeline.resilience import RunJournal

    journal = RunJournal(
        cache / "journal", f"dirty-sweeps-{config.cache_key()}"
    )
    if not args.resume:
        journal.clear()
    results = run_dirty_er_sweeps(
        records,
        codes=codes,
        grid=config.grid,
        progress=args.progress,
        workers=workers,
        journal=journal,
    )
    journal.clear()
    rows = []
    for code in codes:
        sweeps = [result.sweeps[code] for result in results]
        n = max(len(sweeps), 1)
        rows.append(
            [
                code,
                format_float(
                    sum(s.best_threshold for s in sweeps) / n
                ),
                format_float(
                    sum(s.best_scores.precision for s in sweeps) / n
                ),
                format_float(
                    sum(s.best_scores.recall for s in sweeps) / n
                ),
                format_float(
                    sum(s.best_scores.f_measure for s in sweeps) / n
                ),
                f"{1000 * sum(s.best_seconds for s in sweeps) / n:.1f}",
            ]
        )
    print(
        render_table(
            ["alg", "t*", "P", "R", "F1", "ms"],
            rows,
            title=(
                f"Dirty-ER clustering over {len(results)} self-join "
                f"graphs ({args.profile} profile, macro averages)"
            ),
        )
    )
    return 0


def _format_bytes(nbytes: int) -> str:
    for unit in ("B", "K", "M", "G"):
        if nbytes < 1024 or unit == "G":
            return (
                f"{nbytes}{unit}" if unit == "B"
                else f"{nbytes:.1f}{unit}"
            )
        nbytes /= 1024
    return f"{nbytes}B"  # pragma: no cover


def _command_store(args: argparse.Namespace) -> int:
    from repro.experiments.config import default_cache_dir
    from repro.pipeline.store import ArtifactStore

    root = (
        args.artifact_store
        if args.artifact_store is not None
        else default_cache_dir() / "artifacts"
    )
    store = ArtifactStore(root)
    json_mode = args.store_command == "ls" and getattr(args, "json", False)
    if not store.root.is_dir() and not json_mode:
        # Most often a default-path mismatch (generation ran with an
        # explicit --artifact-store elsewhere); say so instead of
        # silently reporting an empty store.  JSON mode keeps stdout
        # machine-parseable and reports the root in the payload.
        print(
            f"note: {store.root} does not exist — no store there yet "
            "(pass --artifact-store to select another directory)"
        )
    if json_mode:
        import json as json_module

        entries = store.entries()
        n_quarantined, quarantine_bytes = store.quarantine_counts()
        payload = {
            "root": str(store.root),
            "n_entries": len(entries),
            "total_bytes": int(sum(e.nbytes for e in entries)),
            "quarantine": {
                "n_entries": n_quarantined,
                "total_bytes": int(quarantine_bytes),
            },
            "entries": [
                {
                    "key": entry.key,
                    "dataset": entry.dataset,
                    "kind": entry.kind,
                    "params": list(entry.params),
                    "nbytes": int(entry.nbytes),
                    "stale": entry.stale,
                    "last_used": entry.last_used,
                    "created": entry.created,
                }
                for entry in entries
            ],
        }
        print(json_module.dumps(payload, indent=2, default=list))
        return 0
    if args.store_command == "ls":
        entries = store.entries()
        rows = [
            [
                entry.key[:12],
                entry.dataset,
                entry.kind,
                ",".join(str(p) for p in entry.params),
                _format_bytes(entry.nbytes),
                "stale" if entry.stale else "ok",
            ]
            for entry in entries
        ]
        print(
            render_table(
                ["key", "dataset", "kind", "params", "size", "state"],
                rows,
                title=(
                    f"Artifact store {store.root} — {len(entries)} "
                    f"entries, "
                    f"{_format_bytes(sum(e.nbytes for e in entries))}"
                ),
            )
        )
        n_quarantined, quarantine_bytes = store.quarantine_counts()
        if n_quarantined:
            noun = "entry" if n_quarantined == 1 else "entries"
            print(
                f"quarantine: {n_quarantined} corrupt {noun} "
                f"({_format_bytes(quarantine_bytes)}) moved aside in "
                f"{store.quarantine_root} — purge clears them"
            )
    elif args.store_command == "gc":
        evicted = store.gc(args.budget)
        print(
            f"evicted {len(evicted)} entries "
            f"({_format_bytes(sum(e.nbytes for e in evicted))}); "
            f"{_format_bytes(store.total_bytes())} kept in {store.root}"
        )
    else:  # purge
        n_quarantined, _ = store.quarantine_counts()
        count = store.purge()
        message = f"purged {count} entries from {store.root}"
        if n_quarantined:
            message += f" (+ {n_quarantined} quarantined)"
        print(message)
    return 0


def _command_block(args: argparse.Namespace) -> int:
    from repro.datasets import dataset_spec, generate_dataset
    from repro.pipeline.blocking import build_candidate_set

    dataset = generate_dataset(
        dataset_spec(
            args.dataset, scale=args.scale, max_pairs=args.max_pairs
        ),
        seed=args.seed,
    )
    candidates = build_candidate_set(
        dataset.left.texts(), dataset.right.texts(), args.blocking
    )
    total = candidates.n_left * candidates.n_right
    print(
        f"{args.dataset}: {candidates.n_left} x {candidates.n_right} "
        f"records, blocking {candidates.scheme}"
    )
    print(
        f"candidates {candidates.n_pairs} / {total} dense pairs "
        f"(reduction {candidates.reduction:.1f}x)"
    )
    print(
        f"ground-truth pair recall "
        f"{candidates.recall(dataset.ground_truth):.4f} "
        f"({len(dataset.ground_truth)} truth pairs)"
    )
    for key, count in candidates.stats:
        print(f"  {key}={count}")
    return 0


def _command_shard(args: argparse.Namespace) -> int:
    from repro.datasets import dataset_spec, generate_dataset
    from repro.pipeline.sharding import plan_for_dataset

    dataset = generate_dataset(
        dataset_spec(
            args.dataset, scale=args.scale, max_pairs=args.max_pairs
        ),
        seed=args.seed,
    )
    plan = plan_for_dataset(
        dataset,
        memory_budget=args.max_memory,
        blocking=args.blocking,
        n_shards=args.shards,
    )
    scheme = args.blocking if args.blocking is not None else "none"
    print(f"{args.dataset}: shard plan (blocking {scheme})")
    print(plan.describe())
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, create_app
    from repro.service.server import ServiceStartupError, serve

    if args.measure is not None:
        from repro.service.resolver import RESOLVE_MEASURES

        if args.measure not in RESOLVE_MEASURES:
            known = ", ".join(RESOLVE_MEASURES)
            raise ServiceStartupError(
                f"unknown measure {args.measure!r}; known: {known}"
            )
    config = ServiceConfig(
        datasets=tuple(args.datasets),
        blocking=args.blocking,
        measure=args.measure,
        scale=args.scale,
        max_pairs=args.max_pairs,
        seed=args.seed,
        artifact_store=args.artifact_store,
        store_read_tier=_store_read_tier(args),
        tick=args.tick,
        max_batch=args.max_batch,
        coalesce=not args.no_coalesce,
    )
    serve(create_app(config), host=args.host, port=args.port)
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    import json

    from repro.datasets import dataset_spec, generate_dataset
    from repro.extensions.dirty_er import DIRTY_ALGORITHM_CODES
    from repro.pipeline.streaming import replay_stream, stream_report

    if args.algorithm.lower() == "all":
        algorithms = DIRTY_ALGORITHM_CODES
    else:
        algorithms = (args.algorithm.upper(),)
        if algorithms[0] not in DIRTY_ALGORITHM_CODES:
            known = " ".join(DIRTY_ALGORITHM_CODES)
            raise SystemExit(
                f"unknown algorithm {args.algorithm!r}; known: {known}"
            )
    dataset = generate_dataset(
        dataset_spec(
            args.dataset, scale=args.scale, max_pairs=args.max_pairs
        ),
        seed=args.seed,
    )
    # The dirty-ER view: the union collection streamed against itself.
    texts = dataset.left.texts() + dataset.right.texts()
    result = replay_stream(
        texts,
        measure=args.measure,
        blocking=args.blocking,
        threshold=args.threshold,
        algorithms=algorithms,
        seed=args.seed,
        batch_size=args.batch_size,
        rebuild_probe=True,
    )
    report = stream_report(result, texts)
    identical = report["graph_identical"] and all(
        report["partitions_identical"].values()
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if identical else 1
    print(
        f"{args.dataset}: streamed {report['n_records']} records in "
        f"{report['n_batches']} batches of {report['batch_size']} "
        f"(seed {report['seed']}, blocking {report['blocking']})"
    )
    print(
        f"scored {report['n_pairs_scored']} candidate pairs -> "
        f"{report['n_edges']} edges "
        f"(batch path: {report['n_edges_batch']})"
    )
    print(
        f"graph bit-identical to batch: "
        f"{'yes' if report['graph_identical'] else 'NO'}"
    )
    for code, same in report["partitions_identical"].items():
        print(f"  {code} partition identical: {'yes' if same else 'NO'}")
    print(
        f"probe {report['probe_seconds']:.3f}s  "
        f"score {report['score_seconds']:.3f}s  "
        f"update {report['update_seconds']:.3f}s  "
        f"partition {report['partition_seconds']:.3f}s"
    )
    if report["rebuild_seconds"] is not None:
        amortized = report["probe_update_seconds"] / max(
            report["probe_records"], 1
        )
        print(
            f"half-way probe ({report['probe_records']} records): "
            f"amortized update {amortized * 1e6:.1f}us/record vs full "
            f"rebuild {report['rebuild_seconds']:.3f}s"
        )
    return 0 if identical else 1


_COMMANDS = {
    "match": _command_match,
    "generate": _command_generate,
    "sweep": _command_sweep,
    "experiments": _command_experiments,
    "corpus": _command_corpus,
    "dirty-er": _command_dirty_er,
    "store": _command_store,
    "block": _command_block,
    "shard": _command_shard,
    "serve": _command_serve,
    "stream": _command_stream,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    A ``KeyboardInterrupt`` exits cleanly with the conventional code
    130: every finished task already journaled as it landed (commits
    are atomic) and the pools shut down on unwind, so ``--resume``
    picks up exactly where the run stopped.  A permanent task failure
    (:class:`~repro.pipeline.resilience.ResilienceError`) and a
    service startup failure
    (:class:`~repro.service.server.ServiceStartupError`: unknown
    dataset, bad port, broken store) both print a clear one-line error
    to stderr and exit 1 — never a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print(
            "\ninterrupted — completed work is journaled; rerun with "
            "--resume to continue where this run stopped",
            file=sys.stderr,
        )
        return 130
    except RuntimeError as error:
        from repro.pipeline.resilience import ResilienceError
        from repro.service.server import ServiceStartupError

        if isinstance(error, (ResilienceError, ServiceStartupError)):
            print(f"error: {error}", file=sys.stderr)
            return 1
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
