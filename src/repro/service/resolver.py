"""The service's resolution core: frozen indexes + query execution.

This module is the **index/query split** the serving layer forces on
the engine.  The batch pipeline treats a dataset as one throwaway
computation; a service instead pays the expensive parts once —
generate the dataset, load or build its artifacts through the
:class:`~repro.pipeline.engine.ArtifactCache` (hitting the persistent
:class:`~repro.pipeline.store.ArtifactStore` when one is configured),
and freeze the query-time :class:`~repro.pipeline.blocking.BlockingIndex`
— and then answers an unbounded stream of queries against the frozen
state.

* :class:`ResolverIndex` — the per-dataset frozen half: immutable
  after :meth:`ResolverIndex.build`, safe to probe from any number of
  concurrent requests.
* :class:`ResolverService` — the query half: stateless functions over
  the indexes.  :meth:`ResolverService.resolve_batch` scores *any*
  number of queries against a dataset in **one** kernel-engine pass
  (one :class:`~repro.pipeline.batched_strings.StringBatch`, one
  :class:`~repro.pipeline.kernels.SparsePlan`), which is what the
  micro-batch scheduler exploits to coalesce concurrent requests.

Per-pair scores are independent of which other queries share a pass
(every schema-based measure is computed per unique pair from exact
integer-valued statistics), so a coalesced batch returns bit-identical
scores to one-query-at-a-time execution — the property
``tests/service/test_coalescing.py`` and ``benchmarks/bench_service.py``
assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.catalog import dataset_spec
from repro.datasets.generator import CleanCleanDataset, generate_dataset
from repro.graph.bipartite import SimilarityGraph
from repro.matching.registry import ALGORITHM_CODES, create_matcher
from repro.pipeline.batched_strings import (
    ALIGNMENT_MEASURES,
    TOKEN_MATRIX_MEASURES,
    StringBatch,
    schema_based_matrix,
    schema_based_pairs,
)
from repro.pipeline.blocking import BlockingIndex, canonical_blocking
from repro.pipeline.engine import ArtifactCache
from repro.pipeline.kernels import SparsePlan
from repro.pipeline.store import ArtifactStore, dataset_store_key

__all__ = [
    "RESOLVE_MEASURES",
    "Match",
    "ResolverIndex",
    "ResolverService",
]

#: Every measure the service can score a pair with: the full
#: schema-based kernel family (token-matrix, alignment-DP, Jaro,
#: q-grams and Monge-Elkan).
RESOLVE_MEASURES: tuple[str, ...] = tuple(
    sorted(
        TOKEN_MATRIX_MEASURES
        + ALIGNMENT_MEASURES
        + ("jaro", "qgrams", "monge_elkan")
    )
)


@dataclass(frozen=True)
class Match:
    """One resolved candidate: indexed record id, text and score."""

    record_id: str
    text: str
    score: float

    def payload(self) -> dict:
        return {
            "id": self.record_id,
            "text": self.text,
            "score": self.score,
        }


@dataclass(frozen=True)
class ResolverIndex:
    """Frozen per-dataset serving state, built once at warmup.

    Queries resolve against the dataset's *right* collection (the
    indexed side); the blocking index freezes corpus statistics over
    both collections exactly as the batch build computes them, so
    probes match batch candidate rows bit-for-bit.
    """

    code: str
    blocking: str
    dataset: CleanCleanDataset = field(repr=False)
    cache: ArtifactCache = field(repr=False)
    probe: BlockingIndex = field(repr=False)
    rights: list[str] = field(repr=False)
    right_ids: list[str] = field(repr=False)

    @classmethod
    def build(
        cls,
        code: str,
        blocking: str,
        scale: float | None = None,
        max_pairs: int | None = None,
        seed: int = 42,
        store: ArtifactStore | None = None,
    ) -> "ResolverIndex":
        spec = dataset_spec(code, scale, max_pairs)
        dataset = generate_dataset(spec, seed)
        cache = ArtifactCache(
            dataset,
            store=store,
            dataset_key=dataset_store_key(code, scale, max_pairs, seed),
        )
        blocking = canonical_blocking(blocking)
        probe = cache.probe_index(blocking)
        _, rights = cache.texts()
        right_ids = [
            profile.identifier for profile in dataset.right.profiles
        ]
        return cls(
            code=spec.code,
            blocking=blocking,
            dataset=dataset,
            cache=cache,
            probe=probe,
            rights=rights,
            right_ids=right_ids,
        )

    @property
    def n_indexed(self) -> int:
        return len(self.rights)

    def ingest(self, records: list[tuple[str, str]]) -> int:
        """Ingest ``(record_id, text)`` pairs into the warm index.

        The incremental counterpart of a cold rebuild: the blocking
        index grows its posting lists in place under its frozen
        build-time statistics (:meth:`BlockingIndex.ingest`) and the
        indexed collection extends, so the very next probe can surface
        the new records.  Scoring needs no update at all — every
        resolve pass builds its :class:`StringBatch` from the current
        ``rights``.  Returns the new indexed-collection size.
        """
        texts = [text for _, text in records]
        self.probe.ingest(texts)
        self.right_ids.extend(record_id for record_id, _ in records)
        self.rights.extend(texts)
        return self.n_indexed

    def describe(self) -> dict:
        return {
            "code": self.code,
            "blocking": self.blocking,
            "n_indexed": self.n_indexed,
            "n_left": len(self.dataset.left.profiles),
        }


class ResolverService:
    """Query execution over a set of warm :class:`ResolverIndex`es."""

    def __init__(self, indexes: dict[str, ResolverIndex]) -> None:
        self._indexes = dict(indexes)

    # ------------------------------------------------------- inventory
    @property
    def datasets(self) -> tuple[str, ...]:
        return tuple(sorted(self._indexes))

    def describe(self) -> list[dict]:
        return [
            self._indexes[code].describe() for code in self.datasets
        ]

    def index(self, code: str) -> ResolverIndex:
        try:
            return self._indexes[code.lower()]
        except KeyError:
            known = ", ".join(self.datasets)
            raise KeyError(
                f"dataset {code!r} is not served; serving: {known}"
            ) from None

    # ---------------------------------------------------------- ingest
    def ingest(self, code: str, records: list[tuple[str, str]]) -> dict:
        """Ingest records into the warm index of dataset ``code``.

        Records are ``(record_id, text)`` pairs appended to the
        indexed (right) collection; ids need not be unique but empty
        texts or ids are rejected.  Subsequent :meth:`resolve_batch`
        calls see the new records immediately — no rebuild, no
        service restart.
        """
        index = self.index(code)
        for record_id, text in records:
            if not record_id or not text:
                raise ValueError(
                    "every record needs a non-empty id and text"
                )
        n_indexed = index.ingest(records)
        return {
            "dataset": index.code,
            "added": len(records),
            "n_indexed": n_indexed,
        }

    # --------------------------------------------------------- resolve
    def resolve_batch(
        self,
        code: str,
        measure: str,
        queries: list[str],
        top_k: int = 10,
    ) -> list[list[Match]]:
        """Resolve ``queries`` against dataset ``code`` in one pass.

        Each query is probed through the frozen blocking index; all
        surviving (query, candidate) cells are scored by a single
        sparse kernel pass.  Returns per-query matches sorted by
        descending score (ties by record id), truncated to ``top_k``.
        """
        if measure not in RESOLVE_MEASURES:
            known = ", ".join(RESOLVE_MEASURES)
            raise KeyError(f"unknown measure {measure!r}; known: {known}")
        index = self.index(code)
        candidates = [index.probe.probe(query) for query in queries]
        counts = [ids.shape[0] for ids in candidates]
        total = sum(counts)
        if total == 0:
            return [[] for _ in queries]
        pair_left = np.repeat(
            np.arange(len(queries), dtype=np.intp),
            np.asarray(counts, dtype=np.intp),
        )
        pair_right = np.concatenate(
            [ids for ids in candidates if ids.shape[0]]
        ).astype(np.intp)
        batch = StringBatch(list(queries), index.rights)
        sparse_plan = SparsePlan.build(batch.plan, pair_left, pair_right)
        values = schema_based_pairs(
            list(queries), index.rights, measure, sparse_plan, batch
        )
        results: list[list[Match]] = []
        offset = 0
        for ids, count in zip(candidates, counts):
            scores = values[offset:offset + count]
            offset += count
            order = np.argsort(-scores, kind="stable")[:top_k]
            results.append(
                [
                    Match(
                        record_id=index.right_ids[int(ids[k])],
                        text=index.rights[int(ids[k])],
                        score=float(scores[k]),
                    )
                    for k in order
                ]
            )
        return results

    # ----------------------------------------------------------- match
    def match(
        self,
        lefts: list[str],
        rights: list[str],
        algorithm: str,
        threshold: float,
        measure: str,
    ) -> list[tuple[int, int, float]]:
        """Match two ad-hoc collections with one of the 10 algorithms.

        Scores the dense ``len(lefts) x len(rights)`` grid with
        ``measure``, builds a similarity graph and runs the requested
        bipartite matcher at ``threshold``.  Returns matched
        ``(left, right, score)`` triples sorted by left index.
        """
        algorithm = algorithm.upper()
        if algorithm not in ALGORITHM_CODES:
            known = " ".join(sorted(ALGORITHM_CODES))
            raise KeyError(
                f"unknown algorithm {algorithm!r}; known: {known}"
            )
        if measure not in RESOLVE_MEASURES:
            known = ", ".join(RESOLVE_MEASURES)
            raise KeyError(f"unknown measure {measure!r}; known: {known}")
        if not (0.0 <= threshold <= 1.0):
            raise ValueError(
                f"threshold must be in [0, 1], got {threshold}"
            )
        matrix = schema_based_matrix(list(lefts), list(rights), measure)
        graph = SimilarityGraph.from_matrix(matrix, name="service-match")
        result = create_matcher(algorithm).match(graph, threshold)
        return sorted(
            (i, j, float(matrix[i, j])) for i, j in result.pairs
        )
