"""Stdlib asyncio HTTP/1.1 server for the ASGI app.

The target container has no ASGI server installed, so ``repro serve``
runs the app on a small asyncio-streams bridge: parse one HTTP/1.1
request, translate it to an ``http`` ASGI scope, relay the response,
honor keep-alive.  The implementation covers what a JSON API needs —
``Content-Length`` bodies, no chunked uploads, no TLS — and any real
ASGI server can replace it without touching the app.

Startup is fail-fast: the lifespan warmup (dataset generation, index
builds) runs **before** the socket starts accepting, and both warmup
failures and bind failures raise :class:`ServiceStartupError` — a
``RuntimeError`` the CLI turns into a clean non-zero exit instead of a
traceback.
"""

from __future__ import annotations

import asyncio

__all__ = ["ServiceStartupError", "serve"]

_MAX_HEADER_BYTES = 65536
_MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceStartupError(RuntimeError):
    """The service could not start (bad config, bind failure, cold
    warmup error); the CLI reports it and exits 1."""


class _Lifespan:
    """Drive an app's ASGI lifespan cycle around the serving loop."""

    def __init__(self, app) -> None:
        self.app = app
        self._to_app: asyncio.Queue = asyncio.Queue()
        self._started: asyncio.Event = asyncio.Event()
        self._stopped: asyncio.Event = asyncio.Event()
        self._failure: str | None = None
        self._task: asyncio.Task | None = None

    async def __aenter__(self) -> "_Lifespan":
        async def receive():
            return await self._to_app.get()

        async def send(message):
            kind = message["type"]
            if kind == "lifespan.startup.failed":
                self._failure = message.get("message", "startup failed")
                self._started.set()
            elif kind == "lifespan.startup.complete":
                self._started.set()
            else:
                self._stopped.set()

        self._task = asyncio.ensure_future(
            self.app({"type": "lifespan"}, receive, send)
        )
        await self._to_app.put({"type": "lifespan.startup"})
        await self._started.wait()
        if self._failure is not None:
            await self._task
            raise ServiceStartupError(
                f"service warmup failed: {self._failure}"
            )
        return self

    async def __aexit__(self, *exc_info) -> None:
        if self._task is None or self._task.done():
            return
        await self._to_app.put({"type": "lifespan.shutdown"})
        await self._stopped.wait()
        await self._task


async def _handle_connection(app, reader, writer) -> None:
    try:
        while True:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                ConnectionError,
            ):
                return
            if len(head) > _MAX_HEADER_BYTES:
                return
            lines = head.decode("latin-1").split("\r\n")
            try:
                method, target, version = lines[0].split(" ")
            except ValueError:
                return
            if not version.startswith("HTTP/"):
                return
            headers: list[tuple[bytes, bytes]] = []
            for line in lines[1:]:
                if not line:
                    continue
                name, _, value = line.partition(":")
                headers.append(
                    (
                        name.strip().lower().encode("latin-1"),
                        value.strip().encode("latin-1"),
                    )
                )
            header_map = dict(headers)
            length = int(header_map.get(b"content-length", b"0") or 0)
            if length > _MAX_BODY_BYTES:
                return
            body = await reader.readexactly(length) if length else b""
            path, _, query = target.partition("?")
            scope = {
                "type": "http",
                "asgi": {"version": "3.0"},
                "http_version": "1.1",
                "method": method.upper(),
                "path": path,
                "query_string": query.encode("latin-1"),
                "headers": headers,
            }
            delivered = False
            response: dict = {"status": 500, "headers": [], "body": b""}

            async def receive():
                nonlocal delivered
                if delivered:
                    return {"type": "http.disconnect"}
                delivered = True
                return {
                    "type": "http.request",
                    "body": body,
                    "more_body": False,
                }

            async def send(message):
                if message["type"] == "http.response.start":
                    response["status"] = message["status"]
                    response["headers"] = message.get("headers", [])
                elif message["type"] == "http.response.body":
                    response["body"] += message.get("body", b"")

            await app(scope, receive, send)
            keep_alive = (
                header_map.get(b"connection", b"keep-alive").lower()
                != b"close"
            )
            connection = b"keep-alive" if keep_alive else b"close"
            header_lines = b"".join(
                name + b": " + value + b"\r\n"
                for name, value in response["headers"]
            )
            writer.write(
                b"HTTP/1.1 "
                + str(response["status"]).encode("latin-1")
                + b" \r\n"
                + header_lines
                + b"connection: "
                + connection
                + b"\r\n\r\n"
                + response["body"]
            )
            await writer.drain()
            if not keep_alive:
                return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - client went away
            pass


async def serve_async(
    app, host: str, port: int, ready: asyncio.Event | None = None
) -> None:
    """Warm the app, bind, and serve until cancelled."""
    async with _Lifespan(app):
        try:
            server = await asyncio.start_server(
                lambda r, w: _handle_connection(app, r, w),
                host,
                port,
            )
        except OSError as error:
            raise ServiceStartupError(
                f"cannot bind {host}:{port}: {error}"
            ) from None
        async with server:
            bound = ", ".join(
                f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
                for sock in server.sockets
            )
            # Expose the resolved port (meaningful with port=0) so
            # tests and embedders can find the listener.
            app.state["server_port"] = server.sockets[0].getsockname()[1]
            print(f"serving on {bound}")
            if ready is not None:
                ready.set()
            await server.serve_forever()


def serve(app, host: str = "127.0.0.1", port: int = 8000) -> None:
    """Blocking entry point used by ``repro serve``."""
    if not (0 <= port <= 65535):
        raise ServiceStartupError(f"invalid port {port}")
    asyncio.run(serve_async(app, host, port))
