"""Application factory for the ER-as-a-service API.

Layering follows the routes → handlers → services convention: the
route table lives here and stays thin (parse + validate + translate
errors), all resolution logic lives in
:class:`~repro.service.resolver.ResolverService`, and concurrency
policy lives in :class:`~repro.service.scheduler.MicroBatchScheduler`.

Endpoints
---------
``GET /healthz``
    Liveness + warmup state + scheduler statistics.  503 until the
    lifespan startup has built every configured index.
``GET /datasets``
    The served datasets and their frozen-index shapes.
``POST /resolve``
    ``{"dataset", "record", "measure"?, "top_k"?, "tag"?}`` — resolve
    one record against an indexed collection through the micro-batch
    scheduler.  The ``X-Batch-Size`` response header reports how many
    concurrent requests shared the kernel pass.
``POST /match``
    ``{"left": [...], "right": [...], "algorithm", "threshold"?,
    "measure"?}`` — match two small ad-hoc collections with any of
    the 10 bipartite algorithms.
``POST /ingest``
    ``{"dataset", "records": [{"id", "text"}, ...]}`` — append
    records to a warm index without a cold rebuild: the blocking
    index grows its posting lists in place under its frozen
    build-time statistics and the next ``/resolve`` can return the
    new records.

Warmup runs under the ASGI *lifespan* protocol: index builds happen
exactly once, before the first request is accepted; a failed build
(unknown dataset, broken store) surfaces as ``lifespan.startup.failed``
and the server refuses to start.
"""

from __future__ import annotations

from contextlib import asynccontextmanager
from dataclasses import dataclass

from repro.service.asgi import App, HTTPError, JSONResponse, Request
from repro.service.resolver import ResolverIndex, ResolverService
from repro.service.scheduler import MicroBatchScheduler

__all__ = ["ServiceConfig", "create_app"]

#: Hard cap on ad-hoc /match collection sizes: the dense grid is
#: quadratic, and big jobs belong in the batch pipeline.
MAX_MATCH_RECORDS = 512


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the app factory needs to stand up the service."""

    datasets: tuple[str, ...]
    blocking: str = "tokens"
    measure: str = "jaccard"
    scale: float | None = None
    max_pairs: int | None = None
    seed: int = 42
    artifact_store: str | None = None
    store_read_tier: str | None = None
    tick: float = 0.002
    max_batch: int = 64
    coalesce: bool = True


def _warm_service(config: ServiceConfig) -> ResolverService:
    """Build every configured index (the expensive, once-only part)."""
    store = None
    if config.artifact_store is not None:
        from repro.pipeline.store import ArtifactStore

        store = ArtifactStore(
            config.artifact_store, read_tier=config.store_read_tier
        )
    indexes = {}
    for code in config.datasets:
        index = ResolverIndex.build(
            code,
            blocking=config.blocking,
            scale=config.scale,
            max_pairs=config.max_pairs,
            seed=config.seed,
            store=store,
        )
        indexes[index.code] = index
    return ResolverService(indexes)


def create_app(config: ServiceConfig) -> App:
    """The ASGI app for ``config``; warmup deferred to lifespan."""

    @asynccontextmanager
    async def lifespan(app: App):
        import asyncio

        loop = asyncio.get_running_loop()
        service = await loop.run_in_executor(None, _warm_service, config)
        scheduler = MicroBatchScheduler(
            service,
            tick=config.tick,
            max_batch=config.max_batch,
            coalesce=config.coalesce,
        )
        scheduler.start()
        app.state["service"] = service
        app.state["scheduler"] = scheduler
        try:
            yield
        finally:
            await scheduler.aclose()
            app.state.pop("service", None)
            app.state.pop("scheduler", None)

    app = App(lifespan=lifespan)
    app.state["config"] = config

    def _service() -> ResolverService:
        service = app.state.get("service")
        if service is None:
            raise HTTPError(503, "service is warming up")
        return service

    def _scheduler() -> MicroBatchScheduler:
        scheduler = app.state.get("scheduler")
        if scheduler is None or not scheduler.running:
            raise HTTPError(503, "service is warming up")
        return scheduler

    def _body_object(request: Request) -> dict:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return payload

    def _string_field(payload: dict, name: str) -> str:
        value = payload.get(name)
        if not isinstance(value, str) or not value.strip():
            raise HTTPError(422, f"{name!r} must be a non-empty string")
        return value

    def _string_list(payload: dict, name: str) -> list[str]:
        value = payload.get(name)
        if (
            not isinstance(value, list)
            or not value
            or not all(isinstance(item, str) for item in value)
        ):
            raise HTTPError(
                422, f"{name!r} must be a non-empty list of strings"
            )
        if len(value) > MAX_MATCH_RECORDS:
            raise HTTPError(
                422,
                f"{name!r} exceeds {MAX_MATCH_RECORDS} records; use the "
                "batch pipeline for large collections",
            )
        return value

    @app.route("GET", "/healthz")
    async def healthz(request: Request) -> JSONResponse:
        service = app.state.get("service")
        scheduler = app.state.get("scheduler")
        if service is None or scheduler is None:
            return JSONResponse(
                {"status": "warming", "datasets": []}, status=503
            )
        return JSONResponse(
            {
                "status": "ok",
                "datasets": list(service.datasets),
                "scheduler": scheduler.stats(),
            }
        )

    @app.route("GET", "/datasets")
    async def datasets(request: Request) -> JSONResponse:
        service = _service()
        return JSONResponse(
            {
                "datasets": service.describe(),
                "default_measure": config.measure,
            }
        )

    @app.route("POST", "/resolve")
    async def resolve(request: Request) -> JSONResponse:
        payload = _body_object(request)
        scheduler = _scheduler()
        dataset = _string_field(payload, "dataset")
        record = _string_field(payload, "record")
        measure = payload.get("measure", config.measure)
        top_k = payload.get("top_k", 10)
        if not isinstance(top_k, int) or top_k < 1:
            raise HTTPError(422, "'top_k' must be a positive integer")
        tag = payload.get("tag", "")
        if not isinstance(tag, str):
            raise HTTPError(422, "'tag' must be a string")
        try:
            matches, batch_size = await scheduler.submit(
                dataset, measure, record, top_k=top_k, tag=tag
            )
        except KeyError as error:
            status = 404 if "dataset" in str(error) else 422
            raise HTTPError(status, str(error).strip('"')) from None
        return JSONResponse(
            {
                "dataset": dataset.lower(),
                "measure": measure,
                "matches": [match.payload() for match in matches],
            },
            headers={"X-Batch-Size": str(batch_size)},
        )

    @app.route("POST", "/ingest")
    async def ingest(request: Request) -> JSONResponse:
        payload = _body_object(request)
        service = _service()
        dataset = _string_field(payload, "dataset")
        raw = payload.get("records")
        if not isinstance(raw, list) or not raw:
            raise HTTPError(
                422, "'records' must be a non-empty list of objects"
            )
        if len(raw) > MAX_MATCH_RECORDS:
            raise HTTPError(
                422,
                f"'records' exceeds {MAX_MATCH_RECORDS} per request; "
                "ingest in smaller batches",
            )
        records = []
        for entry in raw:
            if not isinstance(entry, dict):
                raise HTTPError(
                    422, "every record must be an object with id and text"
                )
            records.append(
                (
                    _string_field(entry, "id"),
                    _string_field(entry, "text"),
                )
            )
        import asyncio

        loop = asyncio.get_running_loop()
        try:
            report = await loop.run_in_executor(
                None, service.ingest, dataset, records
            )
        except KeyError as error:
            raise HTTPError(404, str(error).strip('"')) from None
        except ValueError as error:
            raise HTTPError(422, str(error)) from None
        return JSONResponse(report)

    @app.route("POST", "/match")
    async def match(request: Request) -> JSONResponse:
        payload = _body_object(request)
        service = _service()
        lefts = _string_list(payload, "left")
        rights = _string_list(payload, "right")
        algorithm = _string_field(payload, "algorithm")
        measure = payload.get("measure", config.measure)
        threshold = payload.get("threshold", 0.5)
        if not isinstance(threshold, (int, float)) or isinstance(
            threshold, bool
        ):
            raise HTTPError(422, "'threshold' must be a number")
        import asyncio

        loop = asyncio.get_running_loop()
        try:
            pairs = await loop.run_in_executor(
                None,
                service.match,
                lefts,
                rights,
                algorithm,
                float(threshold),
                measure,
            )
        except (KeyError, ValueError) as error:
            raise HTTPError(422, str(error).strip('"')) from None
        return JSONResponse(
            {
                "algorithm": algorithm.upper(),
                "measure": measure,
                "threshold": threshold,
                "pairs": [
                    {"left": i, "right": j, "score": score}
                    for i, j, score in pairs
                ],
            }
        )

    return app
