"""ER-as-a-service: the async resolution API over the warm engine.

The package splits the engine into an index phase and a query phase
(:mod:`repro.service.resolver`), coalesces concurrent queries into
shared kernel passes (:mod:`repro.service.scheduler`), and exposes
both over a dependency-free ASGI application (:mod:`repro.service.app`
on :mod:`repro.service.asgi`) servable in-process for tests
(:mod:`repro.service.testclient`) or over HTTP via ``repro serve``
(:mod:`repro.service.server`).
"""

from repro.service.app import ServiceConfig, create_app
from repro.service.resolver import (
    RESOLVE_MEASURES,
    Match,
    ResolverIndex,
    ResolverService,
)
from repro.service.scheduler import MicroBatchScheduler
from repro.service.server import ServiceStartupError, serve

__all__ = [
    "RESOLVE_MEASURES",
    "Match",
    "MicroBatchScheduler",
    "ResolverIndex",
    "ResolverService",
    "ServiceConfig",
    "ServiceStartupError",
    "create_app",
    "serve",
]
