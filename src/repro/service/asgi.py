"""A minimal ASGI application framework for the resolution service.

The container this project targets ships no web framework, so the
service layer runs on a small, dependency-free ASGI core implementing
exactly what the resolution API needs: exact-path routing, JSON
request/response bodies, typed HTTP errors and the ASGI *lifespan*
protocol (startup builds the warm :class:`ResolverService`; shutdown
drains the scheduler).  The interface is standard ASGI 3.0 — the app
is equally servable by the bundled :mod:`repro.service.server`, the
in-process :class:`~repro.service.testclient.AsgiClient`, or any
external ASGI server (uvicorn/hypercorn) when one is available.

Deliberately not implemented: path parameters, middleware stacks,
content negotiation, streaming bodies.  Handlers are ``async def
handler(request) -> JSONResponse`` and the route table is a flat
``(method, path)`` dict.
"""

from __future__ import annotations

import json
import traceback
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qs

__all__ = ["App", "HTTPError", "JSONResponse", "Request"]


class HTTPError(Exception):
    """An error with a designated HTTP status, rendered as JSON."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class Request:
    """One parsed HTTP request."""

    def __init__(
        self,
        method: str,
        path: str,
        query_string: bytes = b"",
        headers: dict[str, str] | None = None,
        body: bytes = b"",
    ) -> None:
        self.method = method
        self.path = path
        self.query = {
            key: values[-1]
            for key, values in parse_qs(query_string.decode("latin-1")).items()
        }
        self.headers = headers or {}
        self.body = body

    def json(self) -> Any:
        """The request body parsed as JSON; 400 on malformed input."""
        if not self.body:
            raise HTTPError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as error:
            raise HTTPError(400, f"malformed JSON body: {error}") from None


class JSONResponse:
    """A JSON response with status and optional extra headers.

    The payload is serialized with ``sort_keys=True`` and compact
    separators so that equal payloads produce byte-identical bodies —
    the property the coalescing-equivalence tests and benchmark
    compare on.  Diagnostic metadata that may legitimately differ
    between equivalent responses (e.g. the micro-batch size a request
    rode in) belongs in ``headers``, never in the payload.
    """

    def __init__(
        self,
        payload: Any,
        status: int = 200,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.status = status
        self.payload = payload
        self.headers = headers or {}

    def encode(self) -> bytes:
        return json.dumps(
            self.payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")


Handler = Callable[[Request], Awaitable[JSONResponse]]


class App:
    """An ASGI 3.0 application: flat route table + lifespan hooks.

    ``lifespan`` is an async context manager *factory* taking the app;
    its ``__aenter__`` runs under ``lifespan.startup`` (exceptions are
    reported as ``lifespan.startup.failed``), its ``__aexit__`` under
    ``lifespan.shutdown``.  Handlers share state through ``app.state``.
    """

    def __init__(self, lifespan=None) -> None:
        self._routes: dict[tuple[str, str], Handler] = {}
        self._lifespan = lifespan
        self.state: dict[str, Any] = {}

    def route(self, method: str, path: str):
        """Register ``handler`` for exact-path ``(method, path)``."""

        def decorator(handler: Handler) -> Handler:
            self._routes[(method.upper(), path)] = handler
            return handler

        return decorator

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._handle_lifespan(receive, send)
        elif scope["type"] == "http":
            await self._handle_http(scope, receive, send)
        else:  # pragma: no cover - websockets etc. are out of scope
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")

    # -------------------------------------------------------- lifespan
    async def _handle_lifespan(self, receive, send) -> None:
        message = await receive()
        assert message["type"] == "lifespan.startup"
        context = self._lifespan(self) if self._lifespan else None
        try:
            if context is not None:
                await context.__aenter__()
        except Exception as error:
            await send(
                {"type": "lifespan.startup.failed", "message": str(error)}
            )
            return
        await send({"type": "lifespan.startup.complete"})
        message = await receive()
        assert message["type"] == "lifespan.shutdown"
        try:
            if context is not None:
                await context.__aexit__(None, None, None)
        except Exception as error:
            await send(
                {"type": "lifespan.shutdown.failed", "message": str(error)}
            )
            return
        await send({"type": "lifespan.shutdown.complete"})

    # ------------------------------------------------------------ http
    async def _handle_http(self, scope, receive, send) -> None:
        body = b""
        while True:
            message = await receive()
            body += message.get("body", b"")
            if not message.get("more_body"):
                break
        request = Request(
            method=scope["method"].upper(),
            path=scope["path"],
            query_string=scope.get("query_string", b""),
            headers={
                name.decode("latin-1").lower(): value.decode("latin-1")
                for name, value in scope.get("headers", [])
            },
            body=body,
        )
        response = await self._dispatch(request)
        payload = response.encode()
        headers = [
            (b"content-type", b"application/json"),
            (b"content-length", str(len(payload)).encode("latin-1")),
        ]
        for name, value in response.headers.items():
            headers.append(
                (name.lower().encode("latin-1"), value.encode("latin-1"))
            )
        await send(
            {
                "type": "http.response.start",
                "status": response.status,
                "headers": headers,
            }
        )
        await send({"type": "http.response.body", "body": payload})

    async def _dispatch(self, request: Request) -> JSONResponse:
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            if any(path == request.path for _, path in self._routes):
                return JSONResponse({"detail": "method not allowed"}, 405)
            return JSONResponse({"detail": "not found"}, 404)
        try:
            return await handler(request)
        except HTTPError as error:
            return JSONResponse({"detail": error.detail}, error.status)
        except Exception:
            # A failing request must degrade that request only: report
            # 500 and keep serving.  The traceback goes to the server
            # log (stderr), not the client.
            traceback.print_exc()
            return JSONResponse({"detail": "internal server error"}, 500)
