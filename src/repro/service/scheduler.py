"""Micro-batch scheduler: coalesce concurrent resolves into one pass.

Every ``POST /resolve`` becomes a :class:`_Pending` item on an asyncio
queue.  A single drain task picks up the first waiting item, sleeps
one *tick* (the coalescing window), then collects everything else that
arrived — up to ``max_batch`` — and executes each ``(dataset,
measure, top_k)`` group as **one**
:meth:`~repro.service.resolver.ResolverService.resolve_batch` call: one
``StringBatch``, one ``SparsePlan``, one kernel pass, regardless of
how many requests rode along.  Per-pair scores don't depend on batch
composition (see :mod:`repro.service.resolver`), so the responses are
bit-identical to serial execution — the batch only changes *when* the
work runs, never *what* it computes.

With ``coalesce=False`` the scheduler degrades to strict serial
per-request execution — the baseline ``benchmarks/bench_service.py``
measures the coalescing gain against.

Fault isolation: before a request joins a batch the scheduler calls
:func:`repro.testing.faults.maybe_inject` with the request's task key
(``service/resolve/<dataset>/<tag>``), the same seam the resilient
pool exposes.  An injected fault fails **that request's future only**;
the remaining batch members still share their pass, and the frozen
indexes are untouched.  Kernel passes run on a single worker thread
(``run_in_executor``) so the event loop keeps accepting requests
mid-pass.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.service.resolver import Match, ResolverService
from repro.testing.faults import maybe_inject

__all__ = ["MicroBatchScheduler"]


@dataclass
class _Pending:
    """One queued resolve request awaiting its batch."""

    dataset: str
    measure: str
    query: str
    top_k: int
    tag: str
    future: asyncio.Future = field(repr=False)
    batch_size: int = 0


class MicroBatchScheduler:
    """Coalesce concurrent resolve requests into shared kernel passes.

    Parameters
    ----------
    service:
        The warm :class:`~repro.service.resolver.ResolverService`.
    tick:
        Coalescing window in seconds: how long the drain task waits
        after the first request of a batch for companions to arrive.
    max_batch:
        Upper bound on requests per drain cycle.
    coalesce:
        ``False`` forces one-request-at-a-time execution (the serial
        baseline); the public API is unchanged.
    """

    def __init__(
        self,
        service: ResolverService,
        tick: float = 0.002,
        max_batch: int = 64,
        coalesce: bool = True,
    ) -> None:
        self.service = service
        self.tick = tick
        self.max_batch = max(int(max_batch), 1)
        self.coalesce = coalesce
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self.batches_executed = 0
        self.requests_served = 0

    # --------------------------------------------------------- control
    def start(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.ensure_future(self._drain())

    async def aclose(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        # Fail anything still queued rather than leaving it hanging.
        while not self._queue.empty():
            pending = self._queue.get_nowait()
            if not pending.future.done():
                pending.future.set_exception(
                    RuntimeError("scheduler stopped")
                )

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    # ---------------------------------------------------------- submit
    async def submit(
        self,
        dataset: str,
        measure: str,
        query: str,
        top_k: int = 10,
        tag: str = "",
    ) -> tuple[list[Match], int]:
        """Resolve one query; returns ``(matches, batch_size)``.

        ``batch_size`` is how many requests shared the kernel pass —
        diagnostic only (it depends on arrival timing, not on the
        query), so handlers report it in a header, not the body.
        """
        if not self.running:
            raise RuntimeError("scheduler is not running")
        loop = asyncio.get_running_loop()
        pending = _Pending(
            dataset=dataset,
            measure=measure,
            query=query,
            top_k=top_k,
            tag=tag,
            future=loop.create_future(),
        )
        await self._queue.put(pending)
        matches = await pending.future
        return matches, pending.batch_size

    # ----------------------------------------------------------- drain
    async def _drain(self) -> None:
        while True:
            batch = [await self._queue.get()]
            if self.coalesce:
                if self.tick > 0:
                    await asyncio.sleep(self.tick)
                while (
                    not self._queue.empty()
                    and len(batch) < self.max_batch
                ):
                    batch.append(self._queue.get_nowait())
            await self._execute(batch)

    async def _execute(self, batch: list[_Pending]) -> None:
        # Fault seam: a poisoned request fails here, alone, before its
        # group runs; everyone else proceeds.
        healthy: list[_Pending] = []
        for pending in batch:
            try:
                maybe_inject(
                    f"service/resolve/{pending.dataset}/{pending.tag}",
                    attempt=0,
                )
            except Exception as error:
                if not pending.future.done():
                    pending.future.set_exception(error)
                continue
            healthy.append(pending)
        groups: dict[tuple[str, str, int], list[_Pending]] = {}
        for pending in healthy:
            key = (pending.dataset, pending.measure, pending.top_k)
            groups.setdefault(key, []).append(pending)
        loop = asyncio.get_running_loop()
        for (dataset, measure, top_k), members in groups.items():
            queries = [pending.query for pending in members]
            try:
                results = await loop.run_in_executor(
                    None,
                    self.service.resolve_batch,
                    dataset,
                    measure,
                    queries,
                    top_k,
                )
            except Exception as error:
                for pending in members:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            self.batches_executed += 1
            self.requests_served += len(members)
            for pending, matches in zip(members, results):
                pending.batch_size = len(members)
                if not pending.future.done():
                    pending.future.set_result(matches)

    # ------------------------------------------------------ statistics
    def stats(self) -> dict[str, Any]:
        return {
            "batches_executed": self.batches_executed,
            "requests_served": self.requests_served,
            "coalesce": self.coalesce,
            "tick": self.tick,
            "max_batch": self.max_batch,
        }
