"""In-process ASGI test client (the role httpx's ``ASGITransport``
plays in environments that have httpx).

:class:`AsgiClient` speaks raw ASGI to an :class:`~repro.service.asgi.App`
without sockets: requests become ``http`` scopes, and entering the
client as an async context manager drives the full *lifespan* cycle —
startup on ``__aenter__`` (raising :class:`LifespanFailed` if the app
refuses to start), shutdown on ``__aexit__``.  Constructing the client
with ``lifespan=False`` skips the cycle, which is how the tests reach
the app in its cold, pre-warmup state.

Tests are plain synchronous pytest functions (no asyncio plugin in
the container), so the module also ships :func:`run_app`: run an async
scenario against an app under a fresh event loop and a managed
lifespan.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable

__all__ = ["AsgiClient", "ClientResponse", "LifespanFailed", "run_app"]


class LifespanFailed(RuntimeError):
    """The app reported ``lifespan.startup.failed``."""


class ClientResponse:
    """One captured HTTP response."""

    def __init__(
        self, status: int, headers: dict[str, str], body: bytes
    ) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        return json.loads(self.body)


class AsgiClient:
    """Drive an ASGI app in-process, one request per call."""

    def __init__(self, app, lifespan: bool = True) -> None:
        self.app = app
        self._lifespan = lifespan
        self._startup_done: asyncio.Event | None = None
        self._shutdown_done: asyncio.Event | None = None
        self._to_app: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._failure: str | None = None

    # ------------------------------------------------ lifespan driving
    async def __aenter__(self) -> "AsgiClient":
        if self._lifespan:
            await self.startup()
        return self

    async def __aexit__(self, *exc_info) -> None:
        if self._lifespan:
            await self.shutdown()

    async def startup(self) -> None:
        """Run the app's lifespan startup; raise if it fails."""
        self._to_app = asyncio.Queue()
        self._startup_done = asyncio.Event()
        self._shutdown_done = asyncio.Event()

        async def receive():
            return await self._to_app.get()

        async def send(message):
            kind = message["type"]
            if kind == "lifespan.startup.failed":
                self._failure = message.get("message", "")
                self._startup_done.set()
            elif kind == "lifespan.startup.complete":
                self._startup_done.set()
            elif kind in (
                "lifespan.shutdown.complete",
                "lifespan.shutdown.failed",
            ):
                self._shutdown_done.set()

        self._task = asyncio.ensure_future(
            self.app({"type": "lifespan"}, receive, send)
        )
        await self._to_app.put({"type": "lifespan.startup"})
        await self._startup_done.wait()
        if self._failure is not None:
            await self._task
            raise LifespanFailed(self._failure)

    async def shutdown(self) -> None:
        """Run the app's lifespan shutdown and join the lifespan task."""
        if self._task is None or self._task.done():
            return
        await self._to_app.put({"type": "lifespan.shutdown"})
        await self._shutdown_done.wait()
        await self._task

    # --------------------------------------------------------- requests
    async def request(
        self,
        method: str,
        path: str,
        json_body: Any = None,
        body: bytes | None = None,
    ) -> ClientResponse:
        if json_body is not None:
            body = json.dumps(json_body).encode("utf-8")
        body = body or b""
        path, _, query = path.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "query_string": query.encode("latin-1"),
            "headers": [(b"content-type", b"application/json")],
        }
        sent = False
        received: list[dict] = []

        async def receive():
            nonlocal sent
            if sent:
                return {"type": "http.disconnect"}
            sent = True
            return {"type": "http.request", "body": body, "more_body": False}

        async def send(message):
            received.append(message)

        await self.app(scope, receive, send)
        start = next(m for m in received if m["type"] == "http.response.start")
        chunks = [
            m.get("body", b"")
            for m in received
            if m["type"] == "http.response.body"
        ]
        headers = {
            name.decode("latin-1"): value.decode("latin-1")
            for name, value in start.get("headers", [])
        }
        return ClientResponse(start["status"], headers, b"".join(chunks))

    async def get(self, path: str) -> ClientResponse:
        return await self.request("GET", path)

    async def post(self, path: str, json_body: Any = None) -> ClientResponse:
        return await self.request("POST", path, json_body=json_body)


def run_app(app, scenario: Callable[[AsgiClient], Awaitable[Any]]) -> Any:
    """Run ``scenario(client)`` against ``app`` under a managed lifespan."""

    async def main():
        async with AsgiClient(app) as client:
            return await scenario(client)

    return asyncio.run(main())
