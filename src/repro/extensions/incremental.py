"""Incremental Dirty-ER clustering over an updatable compiled graph.

The batch clusterers of :mod:`repro.extensions.dirty_er` recompute a
whole partition per call.  Streaming ingestion arrives one small delta
at a time, and a delta can only change the clusters of the connected
components it touches — so :class:`IncrementalClusterer` maintains

* **connected components** under a union-find (insert = union of the
  delta's passing edges; delete = one bounded reconnectivity sweep
  over the affected component's members), and
* a **per-component cluster cache** for the clique algorithms
  (MCC/EMCC): components untouched by the delta keep their cached
  clusters, touched ones re-run
  :func:`repro.extensions.dirty_er._cluster_component` — the *same*
  body the batch driver runs per component, so the maintained
  partition is identical cluster-for-cluster to a batch call.

GECG is a global objective (one flip can cascade across components),
so its maintainer delegates to the compiled kernel whose
incrementality lives one layer down: the triangle base patched in
place by :mod:`repro.graph.incremental` and the per-iteration gain
update restricted to the edges the last flip touched.

The clusterer observes the *graph mutators*, it does not call them:
feed every ``insert_uni_edges`` / ``delete_uni_edges`` /
``add_uni_nodes`` delta to the matching method here after mutating
the compiled graph.
"""

from __future__ import annotations

import numpy as np

from repro.extensions.dirty_er import (
    DIRTY_ALGORITHM_CODES,
    DirtyClusterer,
    _cluster_component,
)
from repro.graph.selection import selection_mask
from repro.graph.unipartite import CompiledUnipartiteGraph

__all__ = ["IncrementalClusterer"]


class IncrementalClusterer:
    """Maintains one algorithm's partition across graph deltas.

    Parameters
    ----------
    clusterer:
        A :class:`~repro.extensions.dirty_er.DirtyClusterer` or an
        algorithm code (``CC`` / ``MCC`` / ``EMCC`` / ``GECG``).
    compiled:
        The updatable compiled unipartite graph.  Its *current* edges
        seed the maintained connectivity.
    threshold:
        The clustering threshold; selections use the Dirty-ER
        inclusive (``>=``) convention.
    """

    def __init__(
        self,
        clusterer: DirtyClusterer | str,
        compiled: CompiledUnipartiteGraph,
        threshold: float,
    ) -> None:
        if isinstance(clusterer, str):
            clusterer = DirtyClusterer(clusterer.upper())
        if clusterer.code not in DIRTY_ALGORITHM_CODES:  # pragma: no cover
            raise ValueError(f"unknown algorithm {clusterer.code!r}")
        self.clusterer = clusterer
        self.compiled = compiled
        self.threshold = float(threshold)
        self._parent: dict[int, int] = {}
        self._members: dict[int, set[int]] = {
            node: {node} for node in range(compiled.n_nodes)
        }
        self._cache: dict[int, list[set[int]]] = {}
        selection = compiled.select(self.threshold, inclusive=True)
        self._union_edges(selection.u, selection.v)

    # ------------------------------------------------------------------
    # Union-find over threshold-passing edges
    # ------------------------------------------------------------------
    def _find(self, node: int) -> int:
        root = node
        parent = self._parent
        while root in parent:
            root = parent[root]
        while node != root:  # path compression
            ahead = parent[node]
            parent[node] = root
            node = ahead
        return root

    def _union_edges(self, u: np.ndarray, v: np.ndarray) -> None:
        for a, b in zip(u.tolist(), v.tolist()):
            ra, rb = self._find(a), self._find(b)
            self._cache.pop(ra, None)
            self._cache.pop(rb, None)
            if ra == rb:
                continue
            if len(self._members[ra]) < len(self._members[rb]):
                ra, rb = rb, ra
            self._parent[rb] = ra
            self._members[ra].update(self._members.pop(rb))

    def _passing(self, weight: np.ndarray) -> np.ndarray:
        return selection_mask(weight, self.threshold, inclusive=True)

    # ------------------------------------------------------------------
    # Delta observers (call after the graph mutator)
    # ------------------------------------------------------------------
    def insert(self, u, v, weight) -> None:
        """Observe inserted edges (after ``insert_uni_edges``)."""
        u = np.atleast_1d(np.asarray(u, dtype=np.int64))
        v = np.atleast_1d(np.asarray(v, dtype=np.int64))
        weight = np.atleast_1d(np.asarray(weight, dtype=np.float64))
        passing = self._passing(weight)
        self._union_edges(u[passing], v[passing])

    def delete(self, u, v, weight) -> None:
        """Observe deleted edges (after ``delete_uni_edges``).

        Union-find cannot split, so each affected component re-derives
        its connectivity with one sweep over its (already small)
        member set against the post-delete selection bitsets.
        """
        u = np.atleast_1d(np.asarray(u, dtype=np.int64))
        v = np.atleast_1d(np.asarray(v, dtype=np.int64))
        weight = np.atleast_1d(np.asarray(weight, dtype=np.float64))
        passing = self._passing(weight)
        roots = {self._find(int(node)) for node in u[passing]}
        roots |= {self._find(int(node)) for node in v[passing]}
        if not roots:
            return
        adjacency = self.compiled.select(
            self.threshold, inclusive=True
        ).adjacency_bitsets()
        for root in roots:
            members = self._members.pop(root)
            self._cache.pop(root, None)
            for node in members:
                self._parent.pop(node, None)
            seen: set[int] = set()
            for start in sorted(members):
                if start in seen:
                    continue
                component = {start}
                frontier = [start]
                while frontier:
                    node = frontier.pop()
                    for nbr in _bits(adjacency[node]):
                        if nbr in members and nbr not in component:
                            component.add(nbr)
                            frontier.append(nbr)
                seen |= component
                self._members[start] = component
                for node in component:
                    if node != start:
                        self._parent[node] = start

    def add_nodes(self, count: int) -> None:
        """Observe node growth (after ``add_uni_nodes``)."""
        n = self.compiled.n_nodes
        for node in range(n - count, n):
            self._members[node] = {node}

    # ------------------------------------------------------------------
    # The maintained partition
    # ------------------------------------------------------------------
    def partition(self) -> list[set[int]]:
        """The current partition, identical to a batch
        ``cluster_compiled`` call on the current graph."""
        code = self.clusterer.code
        if code == "GECG":
            # Global objective: the incrementality is the patched
            # triangle base + per-flip gain updates inside the kernel.
            return self.clusterer.cluster_compiled(
                self.compiled, self.threshold
            )
        if code == "CC":
            return [set(members) for members in self._members.values()]
        attach = (
            self.clusterer.attachment_fraction if code == "EMCC" else None
        )
        adjacency = None
        clusters: list[set[int]] = []
        for root, members in self._members.items():
            if len(members) == 1:
                clusters.append(set(members))
                continue
            cached = self._cache.get(root)
            if cached is None:
                if adjacency is None:
                    adjacency = self.compiled.select(
                        self.threshold, inclusive=True
                    ).adjacency_bitsets()
                mask = 0
                for node in members:
                    mask |= 1 << node
                cached = _cluster_component(adjacency, mask, attach)
                self._cache[root] = cached
            clusters.extend(set(cluster) for cluster in cached)
        return clusters


def _bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
