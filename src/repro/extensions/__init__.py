"""Extensions beyond the paper's evaluated scope.

The paper's related-work section describes algorithms it deliberately
leaves out of the CCER evaluation; this package implements them:

* :mod:`repro.extensions.dirty_er` — clustering algorithms for *Dirty
  ER* (a single collection with internal duplicates, clusters of any
  size): Connected Components, Maximum Clique Clustering, Extended
  Maximum Clique Clustering and Global Edge Consistency Gain;
* :mod:`repro.extensions.qlearning` — the reinforcement-learning
  bipartite matcher of Wang et al. (state ``(|L|, |R|)``, reward = sum
  of selected edge weights) that the paper flags as future work,
  implemented as tabular Q-learning over the greedy edge stream.
"""

from repro.extensions.dirty_er import (
    DIRTY_ALGORITHM_CODES,
    DirtyClusterer,
    DirtyERGraph,
    build_graph,
    connected_components_clusters,
    create_clusterer,
    extended_maximum_clique_clustering,
    global_edge_consistency_gain,
    maximum_clique_clustering,
)
from repro.extensions.qlearning import QLearningMatcher

__all__ = [
    "DirtyERGraph",
    "DirtyClusterer",
    "DIRTY_ALGORITHM_CODES",
    "create_clusterer",
    "build_graph",
    "connected_components_clusters",
    "maximum_clique_clustering",
    "extended_maximum_clique_clustering",
    "global_edge_consistency_gain",
    "QLearningMatcher",
]
