"""Q-learning bipartite matcher (the paper's flagged future work).

Wang et al. (ICDE 2019) cast adaptive bipartite matching as
reinforcement learning: a state is the pair ``(|L|, |R|)`` of matched
node counts per side and the reward is the total weight of the
selected matches.  The paper leaves this method out of its
learning-free study "but we plan to further explore it in our future
works" — this module provides that exploration.

The environment here streams the graph's edges in descending weight
order (the same stream UMC consumes greedily); at each step the agent
either *accepts* the edge (if both endpoints are free) or *skips* it.
Tabular Q-learning over the coarse ``(|L| bucket, |R| bucket, action)``
space learns when skipping a heavy edge pays off later.  With the
learning rate at zero the policy degenerates to UMC.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import SimilarityGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["QLearningMatcher"]


class QLearningMatcher(Matcher):
    """Tabular Q-learning over the greedy edge stream.

    Parameters
    ----------
    episodes:
        Training episodes over the edge stream.
    buckets:
        State-space granularity: matched counts are bucketed into this
        many bins per side.
    learning_rate, discount, epsilon:
        Standard Q-learning hyperparameters; ``epsilon`` is the
        exploration rate during training (greedy at inference).
    seed:
        Seed of the exploration randomness.
    """

    code = "QLM"
    full_name = "Q-Learning Matcher (Wang et al. style)"

    def __init__(
        self,
        episodes: int = 30,
        buckets: int = 8,
        learning_rate: float = 0.2,
        discount: float = 0.95,
        epsilon: float = 0.2,
        seed: int = 42,
    ) -> None:
        if episodes < 0:
            raise ValueError("episodes must be non-negative")
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        self.episodes = episodes
        self.buckets = buckets
        self.learning_rate = learning_rate
        self.discount = discount
        self.epsilon = epsilon
        self.seed = seed

    def match(self, graph: SimilarityGraph, threshold: float) -> MatchingResult:
        mask = graph.weight > threshold
        left = graph.left[mask]
        right = graph.right[mask]
        weight = graph.weight[mask]
        if weight.size == 0:
            return self._result([], threshold)
        order = np.lexsort((right, left, -weight))
        stream = list(zip(left[order], right[order], weight[order]))

        q_table = np.zeros((self.buckets, self.buckets, 2))
        rng = np.random.default_rng(self.seed)
        for _ in range(self.episodes):
            self._run_episode(stream, graph, q_table, rng, explore=True)

        pairs = self._run_episode(
            stream, graph, q_table, rng, explore=False
        )
        pairs.sort()
        return self._result(pairs, threshold)

    def _bucket(self, count: int, capacity: int) -> int:
        if capacity <= 0:
            return 0
        fraction = count / capacity
        return min(int(fraction * self.buckets), self.buckets - 1)

    def _run_episode(
        self,
        stream: list[tuple[int, int, float]],
        graph: SimilarityGraph,
        q_table: np.ndarray,
        rng: np.random.Generator,
        explore: bool,
    ) -> list[tuple[int, int]]:
        matched_left: set[int] = set()
        matched_right: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for i, j, weight in stream:
            i, j = int(i), int(j)
            if i in matched_left or j in matched_right:
                continue
            state = (
                self._bucket(len(matched_left), graph.n_left),
                self._bucket(len(matched_right), graph.n_right),
            )
            if explore and rng.random() < self.epsilon:
                action = int(rng.integers(2))
            else:
                action = int(np.argmax(q_table[state]))
            reward = float(weight) if action == 1 else 0.0
            if action == 1:
                matched_left.add(i)
                matched_right.add(j)
                pairs.append((i, j))
            if explore:
                next_state = (
                    self._bucket(len(matched_left), graph.n_left),
                    self._bucket(len(matched_right), graph.n_right),
                )
                best_next = float(np.max(q_table[next_state]))
                q_table[state][action] += self.learning_rate * (
                    reward
                    + self.discount * best_next
                    - q_table[state][action]
                )
        return pairs
