"""Clustering algorithms for Dirty ER (single-collection resolution).

In Dirty ER one collection contains duplicates of itself, so the
similarity graph is *not* bipartite and clusters may hold any number
of profiles.  The paper's related-work section sketches three recent
methods (beyond plain connected components), implemented here on
:mod:`networkx`:

* **Maximum Clique Clustering (MCC)** — ignore edge weights and
  repeatedly remove the maximum clique (with its vertices) until all
  nodes are assigned;
* **Extended Maximum Clique Clustering (EMCC)** — generalizes MCC:
  each removed maximal clique is enlarged with outside vertices
  adjacent to at least a minimum portion of its members;
* **Global Edge Consistency Gain (GECG)** — start from the
  thresholded edge labelling and iteratively flip the label of the
  edge whose flip most increases the number of label-consistent
  triangles; clusters are the components of match-labelled edges.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

__all__ = [
    "DirtyERGraph",
    "connected_components_clusters",
    "maximum_clique_clustering",
    "extended_maximum_clique_clustering",
    "global_edge_consistency_gain",
]

#: A Dirty-ER similarity graph: any undirected weighted nx.Graph whose
#: edge attribute ``weight`` carries the similarity in [0, 1].
DirtyERGraph = nx.Graph


def build_graph(
    n_nodes: int, edges: Iterable[tuple[int, int, float]]
) -> DirtyERGraph:
    """Convenience constructor for a Dirty-ER similarity graph."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    for u, v, weight in edges:
        graph.add_edge(u, v, weight=float(weight))
    return graph


def _pruned(graph: DirtyERGraph, threshold: float) -> DirtyERGraph:
    pruned = nx.Graph()
    pruned.add_nodes_from(graph.nodes)
    pruned.add_edges_from(
        (u, v, data)
        for u, v, data in graph.edges(data=True)
        if data.get("weight", 0.0) >= threshold
    )
    return pruned


def connected_components_clusters(
    graph: DirtyERGraph, threshold: float
) -> list[set[int]]:
    """Transitive closure of the pruned graph (clusters of any size)."""
    pruned = _pruned(graph, threshold)
    return [set(component) for component in nx.connected_components(pruned)]


def maximum_clique_clustering(
    graph: DirtyERGraph, threshold: float
) -> list[set[int]]:
    """MCC: iteratively remove the maximum clique.

    Edge weights are ignored after pruning, per the paper's
    description.  Singleton leftovers become singleton clusters.
    """
    working = _pruned(graph, threshold)
    clusters: list[set[int]] = []
    while working.number_of_edges() > 0:
        clique, _ = nx.max_weight_clique(working, weight=None)
        clusters.append(set(clique))
        working.remove_nodes_from(clique)
    clusters.extend({node} for node in working.nodes)
    return clusters


def extended_maximum_clique_clustering(
    graph: DirtyERGraph,
    threshold: float,
    attachment_fraction: float = 0.5,
) -> list[set[int]]:
    """EMCC: remove maximal cliques, then enlarge them.

    After removing a clique, outside vertices adjacent (in the pruned
    graph) to at least ``attachment_fraction`` of the clique's members
    join the cluster.
    """
    if not 0.0 < attachment_fraction <= 1.0:
        raise ValueError("attachment_fraction must be in (0, 1]")
    pruned = _pruned(graph, threshold)
    working = pruned.copy()
    clusters: list[set[int]] = []
    while working.number_of_edges() > 0:
        clique, _ = nx.max_weight_clique(working, weight=None)
        cluster = set(clique)
        required = max(1, int(round(attachment_fraction * len(cluster))))
        candidates = set(working.nodes) - cluster
        for node in sorted(candidates):
            incident = sum(
                1 for member in cluster if working.has_edge(node, member)
            )
            if incident >= required:
                cluster.add(node)
        clusters.append(cluster)
        working.remove_nodes_from(cluster)
    clusters.extend({node} for node in working.nodes)
    return clusters


def global_edge_consistency_gain(
    graph: DirtyERGraph,
    threshold: float,
    max_iterations: int = 100,
) -> list[set[int]]:
    """GECG: flip edge labels to maximize triangle consistency.

    A triangle is *consistent* when its three edges carry the same
    label.  Starting from the thresholded labelling, the single flip
    with the largest positive consistency gain is applied per
    iteration until no flip helps (or the iteration budget runs out);
    clusters are the connected components of match-labelled edges.
    """
    labels: dict[tuple[int, int], bool] = {}
    for u, v, data in graph.edges(data=True):
        edge = (min(u, v), max(u, v))
        labels[edge] = data.get("weight", 0.0) >= threshold

    adjacency: dict[int, set[int]] = {node: set() for node in graph.nodes}
    for u, v in labels:
        adjacency[u].add(v)
        adjacency[v].add(u)

    def edge_label(a: int, b: int) -> bool:
        return labels[(min(a, b), max(a, b))]

    def flip_gain(edge: tuple[int, int]) -> int:
        u, v = edge
        current = labels[edge]
        gain = 0
        for w in adjacency[u] & adjacency[v]:
            other = (edge_label(u, w), edge_label(v, w))
            consistent_now = other[0] == other[1] == current
            consistent_flip = other[0] == other[1] == (not current)
            gain += int(consistent_flip) - int(consistent_now)
        return gain

    for _ in range(max_iterations):
        best_edge, best_gain = None, 0
        for edge in labels:
            gain = flip_gain(edge)
            if gain > best_gain:
                best_edge, best_gain = edge, gain
        if best_edge is None:
            break
        labels[best_edge] = not labels[best_edge]

    matched = nx.Graph()
    matched.add_nodes_from(graph.nodes)
    matched.add_edges_from(edge for edge, label in labels.items() if label)
    return [set(component) for component in nx.connected_components(matched)]
