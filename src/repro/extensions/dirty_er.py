"""Clustering algorithms for Dirty ER (single-collection resolution).

In Dirty ER one collection contains duplicates of itself, so the
similarity graph is *not* bipartite and clusters may hold any number
of profiles.  The paper's related-work section sketches three recent
methods (beyond plain connected components):

* **Maximum Clique Clustering (MCC)** — ignore edge weights and
  repeatedly remove the maximum clique (with its vertices) until all
  nodes are assigned;
* **Extended Maximum Clique Clustering (EMCC)** — generalizes MCC:
  each removed maximal clique is enlarged with outside vertices
  adjacent to at least a minimum portion of its members;
* **Global Edge Consistency Gain (GECG)** — start from the
  thresholded edge labelling and iteratively flip the label of the
  edge whose flip most increases the number of label-consistent
  triangles; clusters are the components of match-labelled edges.

Since the compiled port, every algorithm has three entry points,
mirroring the bipartite matchers' convention:

* ``<algorithm>(graph, threshold)`` — the public API; accepts a
  :class:`~repro.graph.unipartite.UnipartiteGraph` or the legacy
  ``nx.Graph`` and runs the compiled kernel (compiling implicitly);
* ``<algorithm>_compiled(view, threshold)`` — the sweep-native kernel
  over a :class:`~repro.graph.unipartite.CompiledUnipartiteGraph`:
  cached threshold selections, ``scipy.sparse.csgraph`` components,
  Python-int adjacency *bitsets* for the clique growth, and the GECG
  triangle-consistency gain as two sparse matmuls per iteration;
* ``<algorithm>_legacy(graph, threshold)`` — the frozen networkx
  reference body, the oracle of the differential tests and of
  ``benchmarks/bench_dirty_er_engine.py``.

Determinism note: the pre-port prototype delegated clique selection to
``nx.max_weight_clique``, whose result among equal-size cliques is an
implementation detail.  Both paths now use one *canonical* rule — the
maximum-cardinality maximal clique, ties broken by the
lexicographically smallest sorted vertex list — and GECG breaks gain
ties by ascending ``(u, v)`` edge order, so legacy and compiled
clusterings are identical partition-for-partition, not just
equivalent up to tie choices.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx
import numpy as np

from repro.graph.selection import selection_mask
from repro.graph.unipartite import CompiledUnipartiteGraph, UnipartiteGraph

__all__ = [
    "DirtyERGraph",
    "DirtyClusterer",
    "DIRTY_ALGORITHM_CODES",
    "create_clusterer",
    "build_graph",
    "connected_components_clusters",
    "connected_components_clusters_compiled",
    "connected_components_clusters_legacy",
    "maximum_clique_clustering",
    "maximum_clique_clustering_compiled",
    "maximum_clique_clustering_legacy",
    "extended_maximum_clique_clustering",
    "extended_maximum_clique_clustering_compiled",
    "extended_maximum_clique_clustering_legacy",
    "global_edge_consistency_gain",
    "global_edge_consistency_gain_compiled",
    "global_edge_consistency_gain_legacy",
]

#: A legacy Dirty-ER similarity graph: any undirected weighted
#: nx.Graph whose edge attribute ``weight`` carries the similarity in
#: [0, 1].  The engine-native representation is
#: :class:`~repro.graph.unipartite.UnipartiteGraph`.
DirtyERGraph = nx.Graph


def build_graph(
    n_nodes: int, edges: Iterable[tuple[int, int, float]]
) -> DirtyERGraph:
    """Convenience constructor for a legacy (networkx) Dirty-ER graph."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    for u, v, weight in edges:
        graph.add_edge(u, v, weight=float(weight))
    return graph


def _as_unipartite(graph) -> UnipartiteGraph:
    """Accept either graph representation at the public entry points."""
    if isinstance(graph, UnipartiteGraph):
        return graph
    return UnipartiteGraph.from_networkx(graph)


def _as_networkx(graph) -> DirtyERGraph:
    """Accept either graph representation at the legacy entry points."""
    if isinstance(graph, UnipartiteGraph):
        return graph.to_networkx()
    return graph


# ======================================================================
# Frozen legacy bodies (networkx) — the differential-testing oracle
# ======================================================================
def _pruned(graph: DirtyERGraph, threshold: float) -> DirtyERGraph:
    pruned = nx.Graph()
    pruned.add_nodes_from(graph.nodes)
    pruned.add_edges_from(
        (u, v, data)
        for u, v, data in graph.edges(data=True)
        if data.get("weight", 0.0) >= threshold
    )
    return pruned


def _canonical_max_clique_nx(graph: DirtyERGraph) -> list[int]:
    """The canonical maximum clique: max size, then lex-smallest.

    Enumerates the maximal cliques (every maximum clique is maximal)
    and keeps the largest, breaking size ties by the lexicographically
    smallest sorted vertex list — the rule the compiled bitset kernel
    implements identically.
    """
    best_size = 0
    best: list[int] | None = None
    for clique in nx.find_cliques(graph):
        candidate = sorted(clique)
        if len(candidate) > best_size or (
            len(candidate) == best_size
            and best is not None
            and candidate < best
        ):
            best_size, best = len(candidate), candidate
    return best or []


def connected_components_clusters_legacy(
    graph: DirtyERGraph, threshold: float
) -> list[set[int]]:
    """Transitive closure of the pruned graph (clusters of any size)."""
    graph = _as_networkx(graph)
    pruned = _pruned(graph, threshold)
    return [set(component) for component in nx.connected_components(pruned)]


def maximum_clique_clustering_legacy(
    graph: DirtyERGraph, threshold: float
) -> list[set[int]]:
    """MCC: iteratively remove the canonical maximum clique.

    Edge weights are ignored after pruning, per the paper's
    description.  Singleton leftovers become singleton clusters.
    """
    graph = _as_networkx(graph)
    working = _pruned(graph, threshold)
    clusters: list[set[int]] = []
    while working.number_of_edges() > 0:
        clique = _canonical_max_clique_nx(working)
        clusters.append(set(clique))
        working.remove_nodes_from(clique)
    clusters.extend({node} for node in working.nodes)
    return clusters


def extended_maximum_clique_clustering_legacy(
    graph: DirtyERGraph,
    threshold: float,
    attachment_fraction: float = 0.5,
) -> list[set[int]]:
    """EMCC: remove canonical maximal cliques, then enlarge them.

    After removing a clique, outside vertices adjacent (in the pruned
    graph) to at least ``attachment_fraction`` of the clique's members
    join the cluster; candidates are examined in ascending node order
    against the *growing* cluster.
    """
    if not 0.0 < attachment_fraction <= 1.0:
        raise ValueError("attachment_fraction must be in (0, 1]")
    graph = _as_networkx(graph)
    pruned = _pruned(graph, threshold)
    working = pruned.copy()
    clusters: list[set[int]] = []
    while working.number_of_edges() > 0:
        clique = _canonical_max_clique_nx(working)
        cluster = set(clique)
        required = max(1, int(round(attachment_fraction * len(cluster))))
        candidates = set(working.nodes) - cluster
        for node in sorted(candidates):
            incident = sum(
                1 for member in cluster if working.has_edge(node, member)
            )
            if incident >= required:
                cluster.add(node)
        clusters.append(cluster)
        working.remove_nodes_from(cluster)
    clusters.extend({node} for node in working.nodes)
    return clusters


def global_edge_consistency_gain_legacy(
    graph: DirtyERGraph,
    threshold: float,
    max_iterations: int = 100,
) -> list[set[int]]:
    """GECG: flip edge labels to maximize triangle consistency.

    A triangle is *consistent* when its three edges carry the same
    label.  Starting from the thresholded labelling, the single flip
    with the largest positive consistency gain — ties broken by
    ascending ``(u, v)`` edge order — is applied per iteration until
    no flip helps (or the iteration budget runs out); clusters are the
    connected components of match-labelled edges.
    """
    graph = _as_networkx(graph)
    labels: dict[tuple[int, int], bool] = {}
    for u, v, data in graph.edges(data=True):
        edge = (min(u, v), max(u, v))
        labels[edge] = data.get("weight", 0.0) >= threshold

    adjacency: dict[int, set[int]] = {node: set() for node in graph.nodes}
    for u, v in labels:
        adjacency[u].add(v)
        adjacency[v].add(u)

    def edge_label(a: int, b: int) -> bool:
        return labels[(min(a, b), max(a, b))]

    def flip_gain(edge: tuple[int, int]) -> int:
        u, v = edge
        current = labels[edge]
        gain = 0
        for w in adjacency[u] & adjacency[v]:
            other = (edge_label(u, w), edge_label(v, w))
            consistent_now = other[0] == other[1] == current
            consistent_flip = other[0] == other[1] == (not current)
            gain += int(consistent_flip) - int(consistent_now)
        return gain

    for _ in range(max_iterations):
        best_edge, best_gain = None, 0
        for edge in sorted(labels):
            gain = flip_gain(edge)
            if gain > best_gain:
                best_edge, best_gain = edge, gain
        if best_edge is None:
            break
        labels[best_edge] = not labels[best_edge]

    matched = nx.Graph()
    matched.add_nodes_from(graph.nodes)
    matched.add_edges_from(edge for edge, label in labels.items() if label)
    return [set(component) for component in nx.connected_components(matched)]


# ======================================================================
# Compiled kernels (CSR / bitsets / sparse matmul)
# ======================================================================
def _labels_to_clusters(labels: np.ndarray) -> list[set[int]]:
    """Group node indices by component label into cluster sets."""
    clusters: dict[int, set[int]] = {}
    for node, label in enumerate(labels.tolist()):
        members = clusters.get(label)
        if members is None:
            clusters[label] = {node}
        else:
            members.add(node)
    return list(clusters.values())


def _iter_bits(mask: int):
    """Set bit positions of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def connected_components_clusters_compiled(
    compiled: CompiledUnipartiteGraph, threshold: float
) -> list[set[int]]:
    """Compiled CC: one cached ``csgraph.connected_components`` call."""
    selection = compiled.select(threshold, inclusive=True)
    return _labels_to_clusters(selection.component_labels())


def _canonical_max_clique_bits(
    adjacency: list[int], candidates: int
) -> list[int]:
    """The canonical maximum clique inside ``candidates`` (a bitset).

    Bron-Kerbosch with pivoting over Python-int bitsets: candidate
    filtering is one ``&`` per recursion step regardless of degree.
    Among the enumerated maximal cliques the largest wins, with size
    ties broken by the lexicographically smallest sorted vertex list —
    the same rule as :func:`_canonical_max_clique_nx`.  The
    size-bound prune is strict (``<``), so equal-size cliques are
    still visited for the lexicographic comparison.
    """
    best_size = 0
    best: list[int] | None = None

    def expand(chosen: list[int], p: int, x: int) -> None:
        nonlocal best_size, best
        if p == 0:
            if x == 0:  # maximal: compare under (size, lex) canon
                size = len(chosen)
                candidate = sorted(chosen)
                if size > best_size or (
                    size == best_size
                    and best is not None
                    and candidate < best
                ):
                    best_size, best = size, candidate
            return
        p_count = p.bit_count()
        if len(chosen) + p_count < best_size:
            return
        # Pivot from P (a valid Bron-Kerbosch pivot choice), stopping
        # early once no node can beat the best degree seen.
        pivot, pivot_degree = -1, -1
        scan = p
        while scan:
            low = scan & -scan
            node = low.bit_length() - 1
            scan ^= low
            degree = (p & adjacency[node]).bit_count()
            if degree > pivot_degree:
                pivot, pivot_degree = node, degree
                if degree >= p_count - 1:
                    break
        branch = p & ~adjacency[pivot]
        while branch:
            low = branch & -branch
            node = low.bit_length() - 1
            branch ^= low
            chosen.append(node)
            expand(chosen, p & adjacency[node], x & adjacency[node])
            chosen.pop()
            p ^= low
            x |= low

    expand([], candidates, 0)
    return best or []


def _component_masks(selection) -> list[int]:
    """Bitset per connected component of the selection, by min node."""
    labels = selection.component_labels()
    masks: dict[int, int] = {}
    for node, label in enumerate(labels.tolist()):
        masks[label] = masks.get(label, 0) | (1 << node)
    return [masks[label] for label in sorted(masks, key=lambda l: masks[l] & -masks[l])]


def _cluster_component(
    adjacency: list[int],
    component: int,
    attach_fraction: float | None,
) -> list[set[int]]:
    """Canonical clique removal inside one component (a node bitset).

    The shared per-component body of MCC (``attach_fraction is None``)
    and EMCC — also the unit of work of the incremental layer
    (:mod:`repro.extensions.incremental`), which re-runs it only for
    components a delta touched.  Depends exclusively on ``adjacency``
    restricted to ``component``, so batch and incremental calls over
    the same component are identical cluster-for-cluster.
    """
    clusters: list[set[int]] = []
    alive = component
    while True:
        clique = _canonical_max_clique_bits(adjacency, alive)
        if len(clique) < 2:
            break
        cluster_mask = 0
        for node in clique:
            cluster_mask |= 1 << node
        if attach_fraction is not None:
            required = max(1, int(round(attach_fraction * len(clique))))
            for node in _iter_bits(alive & ~cluster_mask):
                if (
                    adjacency[node] & cluster_mask
                ).bit_count() >= required:
                    cluster_mask |= 1 << node
        clusters.append(set(_iter_bits(cluster_mask)))
        alive &= ~cluster_mask
    clusters.extend({node} for node in _iter_bits(alive))
    return clusters


def _clique_removal_compiled(
    compiled: CompiledUnipartiteGraph,
    threshold: float,
    attach_fraction: float | None,
) -> list[set[int]]:
    """Shared MCC/EMCC driver: per-component canonical clique removal.

    Clusters removed from one component never touch another, so the
    global greedy loop of the legacy bodies decomposes exactly into
    independent per-component loops — same partition, much smaller
    clique searches.
    """
    selection = compiled.select(threshold, inclusive=True)
    if selection.count == 0:
        return [{node} for node in range(compiled.n_nodes)]
    adjacency = selection.adjacency_bitsets()
    clusters: list[set[int]] = []
    for component in _component_masks(selection):
        clusters.extend(
            _cluster_component(adjacency, component, attach_fraction)
        )
    return clusters


def maximum_clique_clustering_compiled(
    compiled: CompiledUnipartiteGraph, threshold: float
) -> list[set[int]]:
    """Compiled MCC: bitset clique search per connected component."""
    return _clique_removal_compiled(compiled, threshold, None)


def extended_maximum_clique_clustering_compiled(
    compiled: CompiledUnipartiteGraph,
    threshold: float,
    attachment_fraction: float = 0.5,
) -> list[set[int]]:
    """Compiled EMCC: bitset clique search plus bitset attachment."""
    if not 0.0 < attachment_fraction <= 1.0:
        raise ValueError("attachment_fraction must be in (0, 1]")
    return _clique_removal_compiled(compiled, threshold, attachment_fraction)


def _gecg_base(compiled: CompiledUnipartiteGraph):
    """Threshold-independent GECG state, cached per compiled graph.

    Holds the canonical ascending ``(u, v)`` edge order, the weights
    in that order, and the **triangle incidence arrays**: every
    triangle ``a < b < w`` of the graph (enumerated once, from its
    lowest edge ``(a, b)`` and common neighbours ``w > b``) as three
    parallel edge-index arrays.  A triangle touches three gain
    entries, so the incidence is stored pre-concatenated as
    ``(edge, other1, other2)`` triples — one ``bincount`` per label
    predicate scores every edge of every triangle per iteration.
    """
    base = compiled.kernel_cache.get("gecg_base")
    if base is None:
        graph = compiled.source
        order = np.lexsort((graph.v, graph.u))
        edge_u = graph.u[order]
        edge_v = graph.v[order]
        u_list, v_list = edge_u.tolist(), edge_v.tolist()
        edge_index = {
            pair: position
            for position, pair in enumerate(zip(u_list, v_list))
        }
        neighbour_sets: list[set[int]] = [
            set() for _ in range(compiled.n_nodes)
        ]
        for a, b in zip(u_list, v_list):
            neighbour_sets[a].add(b)
            neighbour_sets[b].add(a)
        tri_e1: list[int] = []
        tri_e2: list[int] = []
        tri_e3: list[int] = []
        for position, (a, b) in enumerate(zip(u_list, v_list)):
            for w in neighbour_sets[a] & neighbour_sets[b]:
                if w > b:  # a < b < w: each triangle exactly once
                    tri_e1.append(position)
                    tri_e2.append(edge_index[(a, w)])
                    tri_e3.append(edge_index[(b, w)])
        e1 = np.asarray(tri_e1, dtype=np.int64)
        e2 = np.asarray(tri_e2, dtype=np.int64)
        e3 = np.asarray(tri_e3, dtype=np.int64)
        # Every (edge, its two triangle partners) incidence, flattened.
        edges_at = np.concatenate([e1, e2, e3])
        other_a = np.concatenate([e2, e1, e1])
        other_b = np.concatenate([e3, e3, e2])
        base = (edge_u, edge_v, graph.weight[order], edges_at, other_a, other_b)
        compiled.kernel_cache["gecg_base"] = base
    return base


def _gecg_entries(
    compiled: CompiledUnipartiteGraph, edges_at: np.ndarray, m: int
):
    """Edge-to-incidence CSR over the triangle base, cached.

    Groups the flattened triangle incidence rows by their ``edges_at``
    edge: ``entry_order[indptr[e]:indptr[e + 1]]`` are the rows whose
    scored edge is ``e``.  This is what lets an iteration recompute
    gains for only the edges sharing a triangle with the last flip.
    Derived from the triangle base, so the incremental layer drops it
    (and this rebuilds lazily) whenever the base is patched.
    """
    entries = compiled.kernel_cache.get("gecg_entries")
    if entries is None:
        entry_order = np.argsort(edges_at, kind="stable")
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(edges_at, minlength=m), out=indptr[1:])
        entries = (entry_order, indptr)
        compiled.kernel_cache["gecg_entries"] = entries
    return entries


def global_edge_consistency_gain_compiled(
    compiled: CompiledUnipartiteGraph,
    threshold: float,
    max_iterations: int = 100,
) -> list[set[int]]:
    """Compiled GECG: incrementally maintained triangle-consistency gain.

    The triangles are enumerated once per graph (cached across the
    whole threshold sweep, and patched in place by the incremental
    layer).  The initial gain of every edge — ``#`` of incident
    triangles whose other two edges are both matched versus both
    unmatched — is two ``bincount`` calls over the triangle incidence;
    each subsequent iteration then recomputes gains *only for the
    edges sharing a triangle with the flipped edge* (the flipped
    edge's own gain just negates: its incident labels are unchanged),
    instead of rescoring the full graph.  The maintained gain array is
    exactly the full recompute, so the flip sequence — first edge
    attaining the maximum positive gain in canonical ascending
    ``(u, v)`` order, via ``np.argmax`` — is unchanged from the
    full-recompute kernel and from the legacy iteration order;
    clusters are the ``csgraph`` components of the match-labelled
    edges.
    """
    n = compiled.n_nodes
    m = compiled.n_edges
    if m == 0:
        return [{node} for node in range(n)]
    edge_u, edge_v, weights, edges_at, other_a, other_b = _gecg_base(compiled)
    entry_order, entry_indptr = _gecg_entries(compiled, edges_at, m)
    labels = selection_mask(weights, threshold, inclusive=True).copy()

    la = labels[other_a]
    lb = labels[other_b]
    both_matched = np.bincount(
        edges_at, weights=(la & lb).astype(np.float64), minlength=m
    )
    both_unmatched = np.bincount(
        edges_at, weights=(~la & ~lb).astype(np.float64), minlength=m
    )
    gain = np.where(
        labels,
        both_unmatched - both_matched,
        both_matched - both_unmatched,
    )

    for _ in range(max_iterations):
        if gain.max() <= 0:
            break
        flip = int(np.argmax(gain))
        labels[flip] = not labels[flip]
        # Only edges in a triangle with ``flip`` see different incident
        # labels; ``flip`` itself keeps its counts and negates.
        gain[flip] = -gain[flip]
        rows = entry_order[entry_indptr[flip] : entry_indptr[flip + 1]]
        affected = np.unique(
            np.concatenate([other_a[rows], other_b[rows]])
        )
        if len(affected):
            starts = entry_indptr[affected]
            counts = entry_indptr[affected + 1] - starts
            group = np.repeat(np.arange(len(affected)), counts)
            within = np.arange(int(counts.sum())) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            arows = entry_order[starts[group] + within]
            la = labels[other_a[arows]]
            lb = labels[other_b[arows]]
            matched = np.bincount(
                group,
                weights=(la & lb).astype(np.float64),
                minlength=len(affected),
            )
            unmatched = np.bincount(
                group,
                weights=(~la & ~lb).astype(np.float64),
                minlength=len(affected),
            )
            gain[affected] = np.where(
                labels[affected], unmatched - matched, matched - unmatched
            )

    if not labels.any():
        return [{node} for node in range(n)]
    from scipy import sparse
    from scipy.sparse import csgraph

    matched_graph = sparse.csr_matrix(
        (
            np.ones(int(labels.sum()) * 2),
            (
                np.concatenate([edge_u[labels], edge_v[labels]]),
                np.concatenate([edge_v[labels], edge_u[labels]]),
            ),
        ),
        shape=(n, n),
    )
    _, component = csgraph.connected_components(matched_graph, directed=False)
    return _labels_to_clusters(component.astype(np.int64))


# ======================================================================
# Public entry points (thin wrappers; compile implicitly)
# ======================================================================
def connected_components_clusters(
    graph, threshold: float
) -> list[set[int]]:
    """Transitive closure of the pruned graph (clusters of any size)."""
    return connected_components_clusters_compiled(
        _as_unipartite(graph).compiled(), threshold
    )


def maximum_clique_clustering(graph, threshold: float) -> list[set[int]]:
    """MCC: iteratively remove the canonical maximum clique."""
    return maximum_clique_clustering_compiled(
        _as_unipartite(graph).compiled(), threshold
    )


def extended_maximum_clique_clustering(
    graph,
    threshold: float,
    attachment_fraction: float = 0.5,
) -> list[set[int]]:
    """EMCC: remove canonical maximal cliques, then enlarge them."""
    if not 0.0 < attachment_fraction <= 1.0:
        raise ValueError("attachment_fraction must be in (0, 1]")
    return extended_maximum_clique_clustering_compiled(
        _as_unipartite(graph).compiled(), threshold, attachment_fraction
    )


def global_edge_consistency_gain(
    graph,
    threshold: float,
    max_iterations: int = 100,
) -> list[set[int]]:
    """GECG: flip edge labels to maximize triangle consistency."""
    return global_edge_consistency_gain_compiled(
        _as_unipartite(graph).compiled(), threshold, max_iterations
    )


# ======================================================================
# Clusterer registry (the dirty counterpart of matching.registry)
# ======================================================================
#: The four Dirty-ER clustering algorithms, in evaluation order.
DIRTY_ALGORITHM_CODES: tuple[str, ...] = ("CC", "MCC", "EMCC", "GECG")


class DirtyClusterer:
    """One Dirty-ER clustering algorithm with its parameters.

    The clustering counterpart of :class:`repro.matching.base.Matcher`:
    ``cluster`` is the thin public entry point (compiles implicitly),
    ``cluster_compiled`` is sweep-native, and ``cluster_legacy`` runs
    the frozen networkx reference body.
    """

    def __init__(
        self,
        code: str,
        attachment_fraction: float = 0.5,
        max_iterations: int = 100,
    ) -> None:
        if code not in DIRTY_ALGORITHM_CODES:
            raise ValueError(
                f"unknown dirty-ER algorithm {code!r}; expected one of "
                f"{DIRTY_ALGORITHM_CODES}"
            )
        self.code = code
        self.attachment_fraction = attachment_fraction
        self.max_iterations = max_iterations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirtyClusterer({self.code})"

    def cluster(self, graph, threshold: float) -> list[set[int]]:
        return self.cluster_compiled(
            _as_unipartite(graph).compiled(), threshold
        )

    def cluster_compiled(
        self, compiled: CompiledUnipartiteGraph, threshold: float
    ) -> list[set[int]]:
        if self.code == "CC":
            return connected_components_clusters_compiled(compiled, threshold)
        if self.code == "MCC":
            return maximum_clique_clustering_compiled(compiled, threshold)
        if self.code == "EMCC":
            return extended_maximum_clique_clustering_compiled(
                compiled, threshold, self.attachment_fraction
            )
        return global_edge_consistency_gain_compiled(
            compiled, threshold, self.max_iterations
        )

    def cluster_legacy(self, graph, threshold: float) -> list[set[int]]:
        if self.code == "CC":
            return connected_components_clusters_legacy(graph, threshold)
        if self.code == "MCC":
            return maximum_clique_clustering_legacy(graph, threshold)
        if self.code == "EMCC":
            return extended_maximum_clique_clustering_legacy(
                graph, threshold, self.attachment_fraction
            )
        return global_edge_consistency_gain_legacy(
            graph, threshold, self.max_iterations
        )


def create_clusterer(code: str, **params) -> DirtyClusterer:
    """Instantiate a clusterer by algorithm code (``CC`` .. ``GECG``)."""
    return DirtyClusterer(code.upper(), **params)
