"""Connected Components clustering (CNC) — Algorithm 2 in the paper.

The simplest algorithm: discard all edges below the similarity
threshold, compute the transitive closure (connected components) of the
pruned graph, and keep only the components that contain exactly two
entities, one from each collection.  Time complexity ``O(n + m)``.

The compiled kernel takes the inclusive threshold prefix of the
compiled edge permutation and labels components with
:func:`scipy.sparse.csgraph.connected_components` (C speed); the
legacy path runs the original Python union-find.  A 2-node component
in a bipartite graph is necessarily one left node joined to one right
node, so both paths emit exactly the same pairs.

The paper observes that CNC trades very high precision for low recall:
any node involved in a larger component is discarded entirely.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["ConnectedComponentsClustering", "UnionFind"]


class UnionFind:
    """Array-based disjoint-set forest with union by size.

    Nodes are dense integers ``0 .. n-1``.  Besides the parent pointers
    it tracks per-root component size, which CNC needs to reject
    components larger than two nodes without a second pass.
    """

    __slots__ = ("parent", "size")

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        """Return the root of ``x`` with path halving."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> int:
        """Merge the components of ``a`` and ``b``; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return ra

    def component_size(self, x: int) -> int:
        """Size of the component containing ``x``."""
        return int(self.size[self.find(x)])


class ConnectedComponentsClustering(Matcher):
    """CNC: transitive closure, then keep only valid 2-node partitions.

    Algorithm 2 prunes edges with ``sim < t`` — i.e. it keeps edges with
    weight *greater than or equal to* the threshold, unlike the strict
    comparison used by the other algorithms' pseudocode.  We follow the
    pseudocode literally.
    """

    code = "CNC"
    full_name = "Connected Components"

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        selection = view.select(threshold, inclusive=True)
        k = selection.count
        if k == 0:
            return self._result([], threshold)

        n_left = view.n_left
        n_total = n_left + view.n_right
        left = selection.left
        right = selection.right
        adjacency = sp.coo_matrix(
            (np.ones(k, dtype=np.int8), (left, n_left + right)),
            shape=(n_total, n_total),
        )
        _, labels = connected_components(adjacency, directed=False)
        sizes = np.bincount(labels)
        keep = sizes[labels[left]] == 2

        # Each surviving component is one (left, right) pair; duplicate
        # parallel edges collapse through the unique sorted keys, which
        # also yields the pairs in ascending (left, right) order.
        keys = np.unique(left[keep] * np.int64(view.n_right) + right[keep])
        stride = np.int64(view.n_right)
        pairs = list(
            zip((keys // stride).tolist(), (keys % stride).tolist())
        )
        return self._result(pairs, threshold)

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        mask = graph.weight >= threshold
        left = graph.left[mask]
        right = graph.right[mask]

        n_total = graph.n_left + graph.n_right
        forest = UnionFind(n_total)
        for i, j in zip(left, right):
            forest.union(int(i), int(graph.n_left + j))

        pairs: list[tuple[int, int]] = []
        # A valid partition has exactly one left and one right node;
        # in a bipartite graph a 2-node component is necessarily one
        # edge, hence cross-collection.  Iterate edges and emit each
        # 2-node component exactly once (via its left member).
        emitted: set[int] = set()
        for i, j in zip(left, right):
            i = int(i)
            if i in emitted:
                continue
            if forest.component_size(i) == 2:
                pairs.append((i, int(j)))
                emitted.add(i)
        pairs.sort()
        return self._result(pairs, threshold)
