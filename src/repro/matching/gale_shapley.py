"""Classic Gale-Shapley stable marriage matching (reference baseline).

KRC (Kiraly's clustering) is a 3/2-approximation to the *maximum*
stable marriage; the classic deferred-acceptance algorithm of Gale and
Shapley computes a stable (man-optimal) matching without the
second-chance mechanism.  Comparing the two isolates the contribution
of Kiraly's extension — one of the design choices DESIGN.md flags for
ablation.
"""

from __future__ import annotations

from collections import deque

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["GaleShapleyMatching"]


class GaleShapleyMatching(Matcher):
    """Deferred acceptance on weighted preference lists.

    Men (``V1``) propose in descending edge-weight order, restricted to
    edges above the threshold; women (``V2``) accept when free and
    trade up only for strictly heavier edges.  The compiled kernel
    reads preferences from the cached full adjacency lists, bounded by
    the per-threshold prefix lengths of the edge selection; the
    deferred-acceptance loop is unchanged.
    """

    code = "GSM"
    full_name = "Gale-Shapley Stable Marriage"

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        selection = view.select(threshold, inclusive=False)
        return self._propose(
            view.n_left,
            view.left_adjacency(),
            selection.left_counts(),
            threshold,
        )

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        preferences: list[list[tuple[int, float]]] = [
            [(j, w) for j, w in neighbours if w > threshold]
            for neighbours in graph.left_adjacency()
        ]
        limits = [len(prefs) for prefs in preferences]
        return self._propose(graph.n_left, preferences, limits, threshold)

    def _propose(
        self,
        n_left: int,
        preferences: list[list[tuple[int, float]]],
        limits: list[int],
        threshold: float,
    ) -> MatchingResult:
        next_choice = [0] * n_left
        fiance: dict[int, int] = {}
        engagement_weight: dict[int, float] = {}

        free_men: deque[int] = deque(range(n_left))
        while free_men:
            man = free_men.popleft()
            prefs = preferences[man]
            if next_choice[man] >= limits[man]:
                continue  # exhausted: stays single
            woman, weight = prefs[next_choice[man]]
            next_choice[man] += 1
            current = fiance.get(woman)
            if current is None:
                fiance[woman] = man
                engagement_weight[woman] = weight
            elif weight > engagement_weight[woman]:
                fiance[woman] = man
                engagement_weight[woman] = weight
                free_men.append(current)
            else:
                free_men.append(man)

        pairs = sorted((man, woman) for woman, man in fiance.items())
        return self._result(pairs, threshold)
