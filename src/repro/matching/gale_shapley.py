"""Classic Gale-Shapley stable marriage matching (reference baseline).

KRC (Kiraly's clustering) is a 3/2-approximation to the *maximum*
stable marriage; the classic deferred-acceptance algorithm of Gale and
Shapley computes a stable (man-optimal) matching without the
second-chance mechanism.  Comparing the two isolates the contribution
of Kiraly's extension — one of the design choices DESIGN.md flags for
ablation.
"""

from __future__ import annotations

from collections import deque

from repro.graph.bipartite import SimilarityGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["GaleShapleyMatching"]


class GaleShapleyMatching(Matcher):
    """Deferred acceptance on weighted preference lists.

    Men (``V1``) propose in descending edge-weight order, restricted to
    edges above the threshold; women (``V2``) accept when free and
    trade up only for strictly heavier edges.
    """

    code = "GSM"
    full_name = "Gale-Shapley Stable Marriage"

    def match(self, graph: SimilarityGraph, threshold: float) -> MatchingResult:
        preferences: list[list[tuple[int, float]]] = [
            [(j, w) for j, w in neighbours if w > threshold]
            for neighbours in graph.left_adjacency()
        ]
        next_choice = [0] * graph.n_left
        fiance: dict[int, int] = {}
        engagement_weight: dict[int, float] = {}

        free_men: deque[int] = deque(range(graph.n_left))
        while free_men:
            man = free_men.popleft()
            prefs = preferences[man]
            if next_choice[man] >= len(prefs):
                continue  # exhausted: stays single
            woman, weight = prefs[next_choice[man]]
            next_choice[man] += 1
            current = fiance.get(woman)
            if current is None:
                fiance[woman] = man
                engagement_weight[woman] = weight
            elif weight > engagement_weight[woman]:
                fiance[woman] = man
                engagement_weight[woman] = weight
                free_men.append(current)
            else:
                free_men.append(man)

        pairs = sorted((man, woman) for woman, man in fiance.items())
        return self._result(pairs, threshold)
