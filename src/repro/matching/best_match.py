"""Best Match clustering (BMC) — Algorithm 5.

Inspired by the Best Match strategy of Similarity Flooding as
simplified in BigMat: scan the *basis* collection in order and pair
each entity with its most similar not-yet-matched entity of the other
collection, provided the edge weight exceeds the threshold.  Time
complexity ``O(m)``.

BMC is the paper's only algorithm with a second configuration
parameter: which collection serves as the basis.  The experiments run
both options and keep the better one; the paper notes the smaller
collection usually wins.
"""

from __future__ import annotations

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["BestMatchClustering", "BASIS_CHOICES"]

BASIS_CHOICES = ("left", "right", "smaller")


class BestMatchClustering(Matcher):
    """BMC per Algorithm 5 of the paper.

    Parameters
    ----------
    basis:
        ``"left"`` scans ``V1``, ``"right"`` scans ``V2`` and
        ``"smaller"`` (the default, following the paper's observation)
        scans whichever collection has fewer entities.
    """

    code = "BMC"
    full_name = "Best Match Clustering"

    def __init__(self, basis: str = "smaller") -> None:
        if basis not in BASIS_CHOICES:
            raise ValueError(f"basis must be one of {BASIS_CHOICES}")
        self.basis = basis

    def _resolved_basis(self, graph) -> str:
        if self.basis != "smaller":
            return self.basis
        return "left" if graph.n_left <= graph.n_right else "right"

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        basis = self._resolved_basis(view)
        if basis == "left":
            n_basis = view.n_left
            adjacency = view.left_adjacency()
        else:
            n_basis = view.n_right
            adjacency = view.right_adjacency()

        matched_other: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for node in range(n_basis):
            for other, weight in adjacency[node]:
                if weight <= threshold:
                    break  # adjacency sorted by descending weight
                if other not in matched_other:
                    matched_other.add(other)
                    if basis == "left":
                        pairs.append((node, other))
                    else:
                        pairs.append((other, node))
                    break
        pairs.sort()
        return self._result(pairs, threshold)

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        basis = self._resolved_basis(graph)
        if basis == "left":
            n_basis = graph.n_left
            adjacency = graph.left_adjacency()
        else:
            n_basis = graph.n_right
            adjacency = graph.right_adjacency()

        matched_other: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for node in range(n_basis):
            for other, weight in adjacency[node]:
                if weight <= threshold:
                    break  # adjacency sorted by descending weight
                if other not in matched_other:
                    matched_other.add(other)
                    if basis == "left":
                        pairs.append((node, other))
                    else:
                        pairs.append((other, node))
                    break
        pairs.sort()
        return self._result(pairs, threshold)
