"""Kiraly's clustering (KRC) — Algorithm 7.

An adaptation of Kiraly's linear-time 3/2-approximation to the maximum
stable marriage problem ("New Algorithm", Kiraly 2013).  Entities of
``V1`` ("men") propose in descending preference (edge weight) order to
entities of ``V2`` ("women"); a woman accepts when she is free or when
she prefers the new proposer.  A man whose preference list runs out
gets exactly one *second chance*: his list is restored and — this is
the approximation trick — women now favour him over an equally
attractive rival who still has his first chance left.  Terminates when
no free man with proposals remains.  Time complexity
``O(n + m log m)``.

The paper reports KRC as the overall top F-measure performer, at the
cost of higher (but stable) runtimes.
"""

from __future__ import annotations

from collections import deque

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["KiralyClustering"]


class KiralyClustering(Matcher):
    """KRC per Algorithm 7 of the paper.

    The compiled kernel reads preferences from the cached full
    adjacency lists, bounded by the per-threshold prefix lengths of
    the edge selection (each node's above-threshold neighbours are a
    prefix of its descending-weight list) — no per-call list
    filtering; the proposal loop is unchanged.
    """

    code = "KRC"
    full_name = "Kiraly's Clustering"

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        selection = view.select(threshold, inclusive=False)
        return self._propose(
            view.n_left,
            view.left_adjacency(),
            selection.left_counts(),
            threshold,
        )

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        n_left = graph.n_left
        left_adjacency = graph.left_adjacency()

        # Preference lists: neighbours above the threshold, already in
        # descending-weight order.
        preferences: list[list[tuple[int, float]]] = [
            [(j, w) for j, w in neighbours if w > threshold]
            for neighbours in left_adjacency
        ]
        limits = [len(prefs) for prefs in preferences]
        return self._propose(n_left, preferences, limits, threshold)

    def _propose(
        self,
        n_left: int,
        preferences: list[list[tuple[int, float]]],
        limits: list[int],
        threshold: float,
    ) -> MatchingResult:
        next_choice = [0] * n_left  # cursor into each preference list
        last_chance = [False] * n_left
        fiance: dict[int, int] = {}  # woman -> engaged man
        engagement_weight: dict[int, float] = {}  # woman -> edge weight

        free_men: deque[int] = deque(range(n_left))
        while free_men:
            man = free_men.popleft()
            prefs = preferences[man]
            if next_choice[man] < limits[man]:
                woman, weight = prefs[next_choice[man]]
                next_choice[man] += 1
                current = fiance.get(woman)
                if current is None:
                    fiance[woman] = man
                    engagement_weight[woman] = weight
                elif self._accepts_proposal(
                    weight,
                    engagement_weight[woman],
                    last_chance[man],
                    last_chance[current],
                ):
                    fiance[woman] = man
                    engagement_weight[woman] = weight
                    free_men.append(current)  # the old fiance is free
                else:
                    free_men.append(man)  # rejected: try next preference
            elif not last_chance[man]:
                # Second chance: restore the preference list once.
                last_chance[man] = True
                next_choice[man] = 0
                if limits[man]:
                    free_men.append(man)
            # else: the man stays unmatched for good.

        pairs = sorted((man, woman) for woman, man in fiance.items())
        return self._result(pairs, threshold)

    @staticmethod
    def _accepts_proposal(
        new_weight: float,
        current_weight: float,
        new_last_chance: bool,
        current_last_chance: bool,
    ) -> bool:
        """Kiraly's acceptance rule adapted to weighted preferences.

        A woman trades up for a strictly better edge weight; on equal
        weight she favours a proposer on his second chance over a
        fiance who still has his first chance left (this is what lifts
        the approximation guarantee from 2 to 3/2 in Kiraly's
        analysis).
        """
        if new_weight > current_weight:
            return True
        if new_weight == current_weight:
            return new_last_chance and not current_last_chance
        return False
