"""Best Assignment Heuristic (BAH) — Algorithm 4.

A swap-based random-search heuristic for the maximum weight bipartite
matching problem.  Every entity of the smaller collection starts paired
with an arbitrary entity of the larger one; each step picks two random
entities of the larger collection and swaps their partners if the total
weight does not decrease.  The search stops after a maximum number of
steps or a wall-clock budget, whichever comes first (the paper uses
10,000 steps and a 2-minute limit).

BAH is the paper's stochastic outlier: it occasionally beats every
other algorithm on balanced collections but is by far the slowest and
least robust method.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["BestAssignmentHeuristic"]

DEFAULT_MAX_MOVES = 10_000
DEFAULT_TIME_LIMIT = 120.0  # seconds, as in the paper

_CONTRIBUTION_CACHE_KEY = "bah_contribution"


class BestAssignmentHeuristic(Matcher):
    """BAH per Algorithm 4 of the paper.

    Parameters
    ----------
    max_moves:
        Maximum number of swap attempts (paper default: 10,000).
    time_limit:
        Wall-clock budget in seconds (paper default: 2 minutes).
    seed:
        Seed of the random generator driving the swap selection.  The
        paper stresses BAH's stochastic nature; a fixed seed makes runs
        reproducible while still exercising the random search.
    """

    code = "BAH"
    full_name = "Best Assignment Heuristic"

    def __init__(
        self,
        max_moves: int = DEFAULT_MAX_MOVES,
        time_limit: float = DEFAULT_TIME_LIMIT,
        seed: int = 42,
    ) -> None:
        if max_moves < 0:
            raise ValueError("max_moves must be non-negative")
        if time_limit <= 0:
            raise ValueError("time_limit must be positive")
        self.max_moves = max_moves
        self.time_limit = time_limit
        self.seed = seed

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        # The pseudocode assumes |V1| >= |V2|: swaps happen on the
        # larger side.  Orient the selected edge arrays accordingly and
        # flip the pairs back at the end.
        flipped = view.n_left < view.n_right
        if flipped:
            n_large, n_small = view.n_right, view.n_left
        else:
            n_large, n_small = view.n_left, view.n_right
        if n_large == 0 or n_small == 0:
            return self._result([], threshold)

        # d(v1, v2) keyed as one flat integer, with the *maximum* weight
        # per pair (built from the ascending-weight suffix so the
        # heaviest duplicate wins).  The map is threshold-independent —
        # the threshold is applied at lookup time — so a 20-point sweep
        # builds it once instead of re-scanning all edges per call.
        contribution = view.kernel_cache.get(_CONTRIBUTION_CACHE_KEY)
        if contribution is None:
            if flipped:
                big, small = view.right_sorted, view.left_sorted
            else:
                big, small = view.left_sorted, view.right_sorted
            keys = big * np.int64(n_small) + small
            contribution = dict(
                zip(keys[::-1].tolist(), view.weight_sorted[::-1].tolist())
            )
            view.kernel_cache[_CONTRIBUTION_CACHE_KEY] = contribution

        pairs = self._swap_search(contribution, threshold, n_large, n_small)
        if flipped:
            pairs = [(j, i) for i, j in pairs]
        pairs.sort()
        return self._result(pairs, threshold)

    def _swap_search(
        self,
        contribution: dict[int, float],
        threshold: float,
        n_large: int,
        n_small: int,
    ) -> list[tuple[int, int]]:
        """The random swap search over a prepared contribution map.

        Identical move sequence and float arithmetic as the legacy
        :meth:`_search`: ``gain`` yields the pair's maximum weight when
        it exceeds the threshold and ``0.0`` otherwise, exactly like
        the legacy per-call dict that only held above-threshold edges.
        """
        partner = np.full(n_large, -1, dtype=np.int64)
        partner[:n_small] = np.arange(n_small)
        raw = contribution.get

        def get(key: int, default: float = 0.0) -> float:
            weight = raw(key, 0.0)
            return weight if weight > threshold else default

        rng = np.random.default_rng(self.seed)
        deadline = time.perf_counter() + self.time_limit
        moves = 0
        check_every = 256  # amortise the clock syscall
        while moves < self.max_moves:
            moves += 1
            if moves % check_every == 0 and time.perf_counter() >= deadline:
                break
            i = int(rng.integers(n_large))
            j = int(rng.integers(n_large))
            if i == j:
                continue
            pi, pj = int(partner[i]), int(partner[j])
            delta = 0.0
            if pi >= 0:
                delta += get(j * n_small + pi, 0.0) - get(i * n_small + pi, 0.0)
            if pj >= 0:
                delta += get(i * n_small + pj, 0.0) - get(j * n_small + pj, 0.0)
            if delta >= 0.0:
                partner[i], partner[j] = pj, pi

        pairs: list[tuple[int, int]] = []
        for i in range(n_large):
            j = int(partner[i])
            if j >= 0 and get(i * n_small + j, 0.0) > 0.0:
                pairs.append((i, j))
        return pairs

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        # The pseudocode assumes |V1| >= |V2|: swaps happen on the
        # larger side.  Work on the swapped graph when needed and flip
        # the pairs back at the end.
        flipped = graph.n_left < graph.n_right
        working = graph.swap_sides() if flipped else graph

        pairs = self._search(working, threshold)
        if flipped:
            pairs = [(j, i) for i, j in pairs]
        pairs.sort()
        return self._result(pairs, threshold)

    def _search(
        self, graph: SimilarityGraph, threshold: float
    ) -> list[tuple[int, int]]:
        n_large = graph.n_left
        n_small = graph.n_right
        if n_large == 0 or n_small == 0:
            return []

        # d(v1, v2): edge weight if above the threshold, else 0.
        contribution: dict[tuple[int, int], float] = {}
        for i, j, w in zip(graph.left, graph.right, graph.weight):
            if w > threshold:
                key = (int(i), int(j))
                if w > contribution.get(key, 0.0):
                    contribution[key] = float(w)

        # partner[i] = the small-side entity currently paired with the
        # large-side entity i, or -1.  Initial assignment pairs the
        # first |V2| large entities with the small entities in order.
        partner = np.full(n_large, -1, dtype=np.int64)
        partner[:n_small] = np.arange(n_small)

        def gain(i: int, j: int) -> float:
            return contribution.get((i, j), 0.0)

        rng = np.random.default_rng(self.seed)
        deadline = time.perf_counter() + self.time_limit
        moves = 0
        check_every = 256  # amortise the clock syscall
        while moves < self.max_moves:
            moves += 1
            if moves % check_every == 0 and time.perf_counter() >= deadline:
                break
            i = int(rng.integers(n_large))
            j = int(rng.integers(n_large))
            if i == j:
                continue
            pi, pj = int(partner[i]), int(partner[j])
            delta = 0.0
            if pi >= 0:
                delta += gain(j, pi) - gain(i, pi)
            if pj >= 0:
                delta += gain(i, pj) - gain(j, pj)
            if delta >= 0.0:
                partner[i], partner[j] = pj, pi

        pairs: list[tuple[int, int]] = []
        for i in range(n_large):
            j = int(partner[i])
            if j >= 0 and gain(i, j) > 0.0:
                pairs.append((i, j))
        return pairs
