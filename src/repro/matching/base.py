"""Shared matcher interface and matching result container.

The paper's problem statement (Section 2): given a bipartite similarity
graph, output a set of partitions each holding one node, or two nodes
from different collections.  Singleton partitions carry no information
for the evaluation measures, so :class:`MatchingResult` stores only the
2-node partitions (the matched pairs); everything not mentioned in a
pair is implicitly a singleton.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.graph.bipartite import SimilarityGraph

__all__ = ["Matcher", "MatchingResult"]


@dataclass
class MatchingResult:
    """The output of a bipartite matching algorithm.

    Attributes
    ----------
    pairs:
        Matched pairs ``(left_index, right_index)``.  Every left and
        right index appears at most once (the unique-mapping constraint
        of CCER); :meth:`validate` enforces this.
    algorithm:
        Short code of the producing algorithm (e.g. ``"UMC"``).
    threshold:
        Similarity threshold the algorithm was run with.
    """

    pairs: list[tuple[int, int]] = field(default_factory=list)
    algorithm: str = ""
    threshold: float = 0.0

    def __len__(self) -> int:
        return len(self.pairs)

    def pair_set(self) -> set[tuple[int, int]]:
        """The matched pairs as a set, for evaluation lookups."""
        return set(self.pairs)

    def matched_left(self) -> set[int]:
        """Left nodes that participate in some pair."""
        return {i for i, _ in self.pairs}

    def matched_right(self) -> set[int]:
        """Right nodes that participate in some pair."""
        return {j for _, j in self.pairs}

    def total_weight(self, graph: SimilarityGraph) -> float:
        """Sum of graph edge weights over the matched pairs.

        Pairs without a corresponding graph edge contribute ``0`` (this
        can happen for assignment-style algorithms that pair nodes first
        and filter by threshold later).
        """
        lookup: dict[tuple[int, int], float] = {}
        for i, j, w in zip(graph.left, graph.right, graph.weight):
            key = (int(i), int(j))
            if w > lookup.get(key, -1.0):
                lookup[key] = float(w)
        return sum(lookup.get(pair, 0.0) for pair in self.pairs)

    def validate(self, graph: SimilarityGraph | None = None) -> None:
        """Raise :class:`ValueError` if the result violates CCER rules.

        Checks the unique-mapping constraint and, when ``graph`` is
        given, index bounds.
        """
        left_seen: set[int] = set()
        right_seen: set[int] = set()
        for i, j in self.pairs:
            if i in left_seen:
                raise ValueError(f"left node {i} matched more than once")
            if j in right_seen:
                raise ValueError(f"right node {j} matched more than once")
            left_seen.add(i)
            right_seen.add(j)
            if graph is not None:
                if not (0 <= i < graph.n_left):
                    raise ValueError(f"left node {i} out of range")
                if not (0 <= j < graph.n_right):
                    raise ValueError(f"right node {j} out of range")


class Matcher(ABC):
    """Base class of all bipartite matching algorithms.

    Subclasses set the class attributes ``code`` (the paper's
    three-letter identifier) and ``full_name`` and implement
    :meth:`match`.
    """

    code: str = ""
    full_name: str = ""

    @abstractmethod
    def match(self, graph: SimilarityGraph, threshold: float) -> MatchingResult:
        """Partition ``graph`` using the similarity ``threshold``.

        Implementations must return pairs that satisfy the
        unique-mapping constraint and must not mutate ``graph``.
        """

    def _result(
        self, pairs: list[tuple[int, int]], threshold: float
    ) -> MatchingResult:
        return MatchingResult(
            pairs=pairs, algorithm=self.code, threshold=threshold
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
