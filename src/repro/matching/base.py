"""Shared matcher interface and matching result container.

The paper's problem statement (Section 2): given a bipartite similarity
graph, output a set of partitions each holding one node, or two nodes
from different collections.  Singleton partitions carry no information
for the evaluation measures, so :class:`MatchingResult` stores only the
2-node partitions (the matched pairs); everything not mentioned in a
pair is implicitly a singleton.

Matchers expose two equivalent entry points:

* :meth:`Matcher.match` — the historical ``(graph, threshold)`` API.
  It is now a thin wrapper: it compiles the graph (cached on the graph
  instance, so the cost is paid once per graph, not per call) and
  delegates to the compiled path.  Results are bit-identical to the
  pre-compiled implementations, which remain available as
  :meth:`Matcher.match_legacy` for differential testing and the
  matching-sweep benchmark.
* :meth:`Matcher.match_compiled` — the sweep-native path, consuming a
  :class:`~repro.graph.compiled.CompiledGraph` directly so repeated
  calls across thresholds share one edge sort, one CSR adjacency and
  cached per-threshold edge selections.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph

__all__ = ["Matcher", "MatchingResult"]


@dataclass
class MatchingResult:
    """The output of a bipartite matching algorithm.

    Attributes
    ----------
    pairs:
        Matched pairs ``(left_index, right_index)``.  Every left and
        right index appears at most once (the unique-mapping constraint
        of CCER); :meth:`validate` enforces this.
    algorithm:
        Short code of the producing algorithm (e.g. ``"UMC"``).
    threshold:
        Similarity threshold the algorithm was run with.
    """

    pairs: list[tuple[int, int]] = field(default_factory=list)
    algorithm: str = ""
    threshold: float = 0.0

    def __len__(self) -> int:
        return len(self.pairs)

    def pair_set(self) -> set[tuple[int, int]]:
        """The matched pairs as a set, for evaluation lookups."""
        return set(self.pairs)

    def matched_left(self) -> set[int]:
        """Left nodes that participate in some pair."""
        return {i for i, _ in self.pairs}

    def matched_right(self) -> set[int]:
        """Right nodes that participate in some pair."""
        return {j for _, j in self.pairs}

    def total_weight(self, graph: SimilarityGraph) -> float:
        """Sum of graph edge weights over the matched pairs.

        Pairs without a corresponding graph edge contribute ``0`` (this
        can happen for assignment-style algorithms that pair nodes first
        and filter by threshold later).
        """
        lookup: dict[tuple[int, int], float] = {}
        for i, j, w in zip(graph.left, graph.right, graph.weight):
            key = (int(i), int(j))
            if w > lookup.get(key, -1.0):
                lookup[key] = float(w)
        return sum(lookup.get(pair, 0.0) for pair in self.pairs)

    def validate(self, graph: SimilarityGraph | None = None) -> None:
        """Raise :class:`ValueError` if the result violates CCER rules.

        Checks the unique-mapping constraint and, when ``graph`` is
        given, index bounds.
        """
        left_seen: set[int] = set()
        right_seen: set[int] = set()
        for i, j in self.pairs:
            if i in left_seen:
                raise ValueError(f"left node {i} matched more than once")
            if j in right_seen:
                raise ValueError(f"right node {j} matched more than once")
            left_seen.add(i)
            right_seen.add(j)
            if graph is not None:
                if not (0 <= i < graph.n_left):
                    raise ValueError(f"left node {i} out of range")
                if not (0 <= j < graph.n_right):
                    raise ValueError(f"right node {j} out of range")


class Matcher(ABC):
    """Base class of all bipartite matching algorithms.

    Subclasses set the class attributes ``code`` (the paper's
    three-letter identifier) and ``full_name`` and implement at least
    one of :meth:`match_compiled` (preferred: the sweep engine calls it
    directly) or :meth:`match` (external matchers that have no compiled
    kernel); the default implementations bridge between the two.
    """

    code: str = ""
    full_name: str = ""

    def match(self, graph: SimilarityGraph, threshold: float) -> MatchingResult:
        """Partition ``graph`` using the similarity ``threshold``.

        Implementations must return pairs that satisfy the
        unique-mapping constraint and must not mutate ``graph``'s edge
        arrays.  The default compiles the graph (cached on the graph)
        and delegates to :meth:`match_compiled`.
        """
        return self.match_compiled(graph.compiled(), threshold)

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        """Partition a compiled graph at ``threshold``.

        The compiled path of the ten built-in algorithms; matchers
        without a compiled kernel (e.g. the learned baselines) inherit
        this fallback onto their :meth:`match` over the source graph.
        """
        if type(self).match is Matcher.match:  # neither entry overridden
            raise NotImplementedError(
                f"{type(self).__name__} implements neither match() nor "
                "match_compiled()"
            )
        return self.match(view.source, threshold)

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        """The pre-compiled reference implementation, kept verbatim.

        Used by the differential test-suite and by
        ``benchmarks/bench_matching_sweep.py`` as the baseline whose
        output the compiled kernels must reproduce bit for bit.
        Matchers without a dedicated legacy body fall back to
        :meth:`match`.
        """
        return self.match(graph, threshold)

    def _result(
        self, pairs: list[tuple[int, int]], threshold: float
    ) -> MatchingResult:
        return MatchingResult(
            pairs=pairs, algorithm=self.code, threshold=threshold
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
