"""Registry mapping algorithm codes to matcher factories.

The experiment drivers refer to algorithms by the paper's three-letter
codes; this module centralizes construction so that every driver uses
the same default configuration (e.g. BAH's step budget).
"""

from __future__ import annotations

from typing import Callable

from repro.matching.base import Matcher
from repro.matching.best_assignment import BestAssignmentHeuristic
from repro.matching.best_match import BestMatchClustering
from repro.matching.connected_components import ConnectedComponentsClustering
from repro.matching.exact import ExactClustering
from repro.matching.gale_shapley import GaleShapleyMatching
from repro.matching.hungarian import HungarianMatching
from repro.matching.kiraly import KiralyClustering
from repro.matching.ricochet import RicochetSRClustering
from repro.matching.row_column import RowColumnClustering
from repro.matching.unique_mapping import UniqueMappingClustering

__all__ = [
    "ALGORITHM_CODES",
    "PAPER_ALGORITHM_CODES",
    "create_matcher",
    "default_matchers",
    "paper_matchers",
]

_FACTORIES: dict[str, Callable[..., Matcher]] = {
    "CNC": ConnectedComponentsClustering,
    "RSR": RicochetSRClustering,
    "RCA": RowColumnClustering,
    "BAH": BestAssignmentHeuristic,
    "BMC": BestMatchClustering,
    "EXC": ExactClustering,
    "KRC": KiralyClustering,
    "UMC": UniqueMappingClustering,
    "HUN": HungarianMatching,
    "GSM": GaleShapleyMatching,
}

#: The eight algorithms evaluated by the paper, in the paper's order.
PAPER_ALGORITHM_CODES: tuple[str, ...] = (
    "CNC",
    "RSR",
    "RCA",
    "BAH",
    "BMC",
    "EXC",
    "KRC",
    "UMC",
)

#: Every algorithm available in this library (paper + oracles).
ALGORITHM_CODES: tuple[str, ...] = tuple(_FACTORIES)


def create_matcher(code: str, **kwargs) -> Matcher:
    """Instantiate the matcher registered under ``code``.

    Keyword arguments are forwarded to the matcher constructor (e.g.
    ``create_matcher("BAH", max_moves=2000, time_limit=2.0)``).
    """
    try:
        factory = _FACTORIES[code.upper()]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown algorithm {code!r}; known codes: {known}")
    return factory(**kwargs)


def paper_matchers(
    bah_max_moves: int = 10_000,
    bah_time_limit: float = 120.0,
    bah_seed: int = 42,
) -> dict[str, Matcher]:
    """The paper's eight algorithms with their default configuration.

    BAH's budgets are exposed because laptop-scale benchmark runs use a
    much smaller time limit than the paper's 2 minutes.
    """
    matchers: dict[str, Matcher] = {}
    for code in PAPER_ALGORITHM_CODES:
        if code == "BAH":
            matchers[code] = BestAssignmentHeuristic(
                max_moves=bah_max_moves,
                time_limit=bah_time_limit,
                seed=bah_seed,
            )
        else:
            matchers[code] = create_matcher(code)
    return matchers


def default_matchers() -> dict[str, Matcher]:
    """All registered algorithms with default configuration."""
    return {code: create_matcher(code) for code in ALGORITHM_CODES}
