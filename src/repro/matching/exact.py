"""Exact clustering (EXC) — Algorithm 6.

Inspired by the Exact strategy of Similarity Flooding: two entities are
paired only when they are *mutually* each other's best match and the
edge weight exceeds the threshold.  EXC is a stricter, symmetric
version of BMC — a reciprocity check that raises precision at the cost
of recall.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["ExactClustering"]


class ExactClustering(Matcher):
    """EXC per Algorithm 6 of the paper.

    The mutual-best-match pairs are found with one argmax per node over
    the adjacency lists; ties are broken by ascending neighbour index
    (the adjacency order), matching the priority-queue pop of the
    pseudocode.

    The compiled kernel is fully vectorized: each node's best match is
    the first entry of its CSR run (runs are sorted by descending
    weight, ties ascending neighbour), so the whole algorithm is three
    array gathers and one boolean reduction.
    """

    code = "EXC"
    full_name = "Exact Clustering"

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        best_left = self._best_csr(
            view.left_indptr, view.left_neighbors, view.left_weights, threshold
        )
        best_right = self._best_csr(
            view.right_indptr,
            view.right_neighbors,
            view.right_weights,
            threshold,
        )

        candidates = np.nonzero(best_left >= 0)[0]
        partners = best_left[candidates]
        mutual = best_right[partners] == candidates
        pairs = list(
            zip(candidates[mutual].tolist(), partners[mutual].tolist())
        )
        return self._result(pairs, threshold)

    @staticmethod
    def _best_csr(
        indptr: np.ndarray,
        neighbors: np.ndarray,
        weights: np.ndarray,
        threshold: float,
    ) -> np.ndarray:
        """Each node's top neighbour above the threshold, or -1."""
        starts = indptr[:-1]
        has_edges = starts < indptr[1:]
        if not len(neighbors):
            return np.full(len(starts), -1, dtype=np.int64)
        first = np.minimum(starts, len(neighbors) - 1)
        above = weights[first] > threshold
        return np.where(has_edges & above, neighbors[first], -1)

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        left_adjacency = graph.left_adjacency()
        right_adjacency = graph.right_adjacency()

        best_for_left = self._best_neighbours(left_adjacency, threshold)
        best_for_right = self._best_neighbours(right_adjacency, threshold)

        pairs: list[tuple[int, int]] = []
        for i, j in enumerate(best_for_left):
            if j >= 0 and best_for_right[j] == i:
                pairs.append((i, j))
        return self._result(pairs, threshold)

    @staticmethod
    def _best_neighbours(
        adjacency: list[list[tuple[int, float]]], threshold: float
    ) -> list[int]:
        """Index of each node's top neighbour above the threshold, or -1."""
        best: list[int] = []
        for neighbours in adjacency:
            if neighbours and neighbours[0][1] > threshold:
                best.append(neighbours[0][0])
            else:
                best.append(-1)
        return best
