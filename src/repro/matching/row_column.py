"""Row-Column Assignment clustering (RCA) — Algorithm 3.

Based on Kurtzberg's Row-Column Scan approximation for the assignment
problem.  Two greedy passes over the similarity graph: the first scans
``V1`` in order, assigning to each node its most similar not-yet-matched
node of ``V2``; the second pass does the symmetric scan over ``V2``.
Each pass accumulates the total weight of its assignment; the heavier
solution wins, and pairs below the similarity threshold are discarded
at the very end (the assignment itself ignores the threshold, as the
assignment problem assumes a complete cost matrix).

Time complexity ``O(|V1| * |V2|)``.
"""

from __future__ import annotations

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["RowColumnClustering"]

_PASS_CACHE_KEY = "rca_passes"


class RowColumnClustering(Matcher):
    """RCA per Algorithm 3 of the paper.

    The two greedy scans ignore the threshold entirely (the assignment
    problem assumes a complete cost matrix), so the compiled kernel
    computes them once per graph, caches the winning assignment on the
    :class:`CompiledGraph` and reduces every subsequent threshold to
    the final ``w >= t`` filter — a sweep costs one assignment instead
    of twenty.
    """

    code = "RCA"
    full_name = "Row-Column Assignment"

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        chosen = view.kernel_cache.get(_PASS_CACHE_KEY)
        if chosen is None:
            first_pairs, first_value = self._greedy_pass(
                view.n_left, view.left_adjacency()
            )
            second_pairs_swapped, second_value = self._greedy_pass(
                view.n_right, view.right_adjacency()
            )
            if first_value > second_value:
                chosen = first_pairs
            else:
                chosen = [(i, j, w) for j, i, w in second_pairs_swapped]
            view.kernel_cache[_PASS_CACHE_KEY] = chosen

        pairs = sorted((i, j) for i, j, w in chosen if w >= threshold)
        return self._result(pairs, threshold)

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        first_pairs, first_value = self._greedy_pass(
            graph.n_left, graph.left_adjacency()
        )
        second_pairs_swapped, second_value = self._greedy_pass(
            graph.n_right, graph.right_adjacency()
        )

        if first_value > second_value:
            chosen = first_pairs
        else:
            chosen = [(i, j, w) for j, i, w in second_pairs_swapped]

        pairs = sorted((i, j) for i, j, w in chosen if w >= threshold)
        return self._result(pairs, threshold)

    @staticmethod
    def _greedy_pass(
        n_source: int,
        adjacency: list[list[tuple[int, float]]],
    ) -> tuple[list[tuple[int, int, float]], float]:
        """One Row-Column scan.

        For every source node (in index order) pick its most similar
        currently unassigned target node.  Returns the chosen
        ``(source, target, weight)`` triples and the assignment value
        (sum of chosen weights).
        """
        matched_targets: set[int] = set()
        chosen: list[tuple[int, int, float]] = []
        value = 0.0
        for source in range(n_source):
            for target, weight in adjacency[source]:
                if target not in matched_targets:
                    matched_targets.add(target)
                    chosen.append((source, target, weight))
                    value += weight
                    break
        return chosen, value
