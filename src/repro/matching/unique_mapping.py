"""Unique Mapping clustering (UMC) — Algorithm 8.

Sort all edges above the threshold by decreasing weight and greedily
match the top-weighted pair whose entities are both still free.  This
is the direct expression of CCER's unique-mapping constraint, and is
equivalent to FAMER's CLIP clustering restricted to two sources.  Time
complexity ``O(m log m)`` for the sort.

UMC is the paper's most balanced algorithm (smallest precision/recall
gap) and, together with KRC, the top F-measure performer.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["UniqueMappingClustering"]


class UniqueMappingClustering(Matcher):
    """UMC per Algorithm 8 of the paper.

    Edges are ordered by decreasing weight with ties broken by
    ascending ``(left, right)`` index, which makes the greedy scan
    deterministic.  That is exactly the compiled graph's global edge
    permutation, so the compiled kernel replaces the per-call mask +
    lexsort with a prefix slice and runs only the greedy scan.
    """

    code = "UMC"
    full_name = "Unique Mapping Clustering"

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        selection = view.select(threshold, inclusive=False)
        matched_left: set[int] = set()
        matched_right: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for i, j in zip(selection.left.tolist(), selection.right.tolist()):
            if i in matched_left or j in matched_right:
                continue
            matched_left.add(i)
            matched_right.add(j)
            pairs.append((i, j))
        pairs.sort()
        return self._result(pairs, threshold)

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        mask = graph.weight > threshold
        left = graph.left[mask]
        right = graph.right[mask]
        weight = graph.weight[mask]

        order = np.lexsort((right, left, -weight))

        matched_left: set[int] = set()
        matched_right: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for idx in order:
            i = int(left[idx])
            j = int(right[idx])
            if i in matched_left or j in matched_right:
                continue
            matched_left.add(i)
            matched_right.add(j)
            pairs.append((i, j))
        pairs.sort()
        return self._result(pairs, threshold)
