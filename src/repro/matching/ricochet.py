"""Ricochet Sequential Rippling clustering (RSR) — Algorithm 1.

An adaptation of the Ricochet family of graph clustering algorithms
(Wijaya & Bressan) to CCER: partitions hold at most one entity from
each collection.  Nodes are visited in descending order of the average
weight of their adjacent edges; each visited node becomes a candidate
*seed* and tries to capture its best adjacent node, possibly stealing
it from a previous seed.  Seeds that lose their only member are
re-assigned to their nearest available singleton.  Time complexity
``O(n * m)`` in the worst case.
"""

from __future__ import annotations

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["RicochetSRClustering"]

# Node identifiers inside the algorithm: left node i -> i,
# right node j -> n_left + j, so both sides live in one index space.


class RicochetSRClustering(Matcher):
    """RSR per Algorithm 1 of the paper.

    Implementation notes (kept faithful to the pseudocode):

    * the seed queue orders nodes by descending average adjacent weight
      (ties broken by ascending node id for determinism);
    * a node that is already a *center* is never captured by another
      seed;
    * a capture always leaves the previous center alone, because CCER
      partitions have at most two members; the lonely center is then
      re-assigned to its most similar adjacent node whose partition is
      still below two members;
    * the final output keeps the 2-node partitions as matched pairs.

    The compiled kernel reuses the seed queue, node averages and merged
    adjacency cached on the :class:`CompiledGraph` (all are
    threshold-independent, yet the legacy path rebuilt each of them on
    every one of a sweep's 20 calls); the rippling itself is unchanged.
    """

    code = "RSR"
    full_name = "Ricochet Sequential Rippling"

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        n_left = view.n_left
        n_total = n_left + view.n_right
        adjacency = view.merged_adjacency()
        queue = view.ripple_queue()

        sim_with_center = [0.0] * n_total
        center_of = list(range(n_total))
        partition: list[set[int]] = [set() for _ in range(n_total)]
        is_center = [False] * n_total

        for seed in queue:
            to_reassign: list[int] = []
            for neighbour, sim in adjacency[seed]:
                if sim <= threshold:
                    break  # adjacency is sorted by descending weight
                if is_center[neighbour]:
                    continue
                if sim > sim_with_center[neighbour]:
                    old_center = center_of[neighbour]
                    partition[old_center].discard(neighbour)
                    partition[seed].add(neighbour)
                    if old_center != neighbour:
                        to_reassign.append(old_center)
                    sim_with_center[neighbour] = sim
                    center_of[neighbour] = seed
                    break

            if partition[seed]:
                if center_of[seed] != seed:
                    partition[center_of[seed]].discard(seed)
                    to_reassign.append(center_of[seed])
                is_center[seed] = True
                partition[seed].add(seed)
                center_of[seed] = seed
                sim_with_center[seed] = 1.0

            for lonely in to_reassign:
                if len(partition[lonely]) > 1:
                    continue  # regained a member in the meantime
                best_target = lonely
                best_sim = 0.0
                for neighbour, sim in adjacency[lonely]:
                    if sim <= threshold:
                        break
                    if sim > best_sim and len(partition[neighbour]) < 2:
                        best_target = neighbour
                        best_sim = sim
                if best_sim > 0.0 and len(partition[best_target]) < 2:
                    partition[lonely].discard(lonely)
                    partition[best_target].add(lonely)
                    center_of[lonely] = best_target
                    sim_with_center[lonely] = best_sim

        pairs: list[tuple[int, int]] = []
        for cluster in partition:
            if len(cluster) != 2:
                continue
            a, b = sorted(cluster)
            if a < n_left <= b:
                pairs.append((a, b - n_left))
        pairs.sort()
        return self._result(pairs, threshold)

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        n_left = graph.n_left
        n_total = n_left + graph.n_right

        adjacency = self._merged_adjacency(graph)

        left_avg, right_avg = graph.average_node_weights()
        averages = list(left_avg) + list(right_avg)
        # Seeds in descending average weight; ascending id on ties.
        queue = sorted(range(n_total), key=lambda v: (-averages[v], v))

        sim_with_center = [0.0] * n_total
        center_of = list(range(n_total))
        partition: list[set[int]] = [set() for _ in range(n_total)]
        is_center = [False] * n_total

        for seed in queue:
            to_reassign: list[int] = []
            for neighbour, sim in adjacency[seed]:
                if sim <= threshold:
                    break  # adjacency is sorted by descending weight
                if is_center[neighbour]:
                    continue
                if sim > sim_with_center[neighbour]:
                    old_center = center_of[neighbour]
                    partition[old_center].discard(neighbour)
                    partition[seed].add(neighbour)
                    if old_center != neighbour:
                        to_reassign.append(old_center)
                    sim_with_center[neighbour] = sim
                    center_of[neighbour] = seed
                    break

            if partition[seed]:
                if center_of[seed] != seed:
                    partition[center_of[seed]].discard(seed)
                    to_reassign.append(center_of[seed])
                is_center[seed] = True
                partition[seed].add(seed)
                center_of[seed] = seed
                sim_with_center[seed] = 1.0

            for lonely in to_reassign:
                if len(partition[lonely]) > 1:
                    continue  # regained a member in the meantime
                best_target = lonely
                best_sim = 0.0
                for neighbour, sim in adjacency[lonely]:
                    if sim <= threshold:
                        break
                    if sim > best_sim and len(partition[neighbour]) < 2:
                        best_target = neighbour
                        best_sim = sim
                if best_sim > 0.0 and len(partition[best_target]) < 2:
                    partition[lonely].discard(lonely)
                    partition[best_target].add(lonely)
                    center_of[lonely] = best_target
                    sim_with_center[lonely] = best_sim

        pairs: list[tuple[int, int]] = []
        for cluster in partition:
            if len(cluster) != 2:
                continue
            a, b = sorted(cluster)
            if a < n_left <= b:
                pairs.append((a, b - n_left))
        pairs.sort()
        return self._result(pairs, threshold)

    @staticmethod
    def _merged_adjacency(
        graph: SimilarityGraph,
    ) -> list[list[tuple[int, float]]]:
        """Adjacency over the merged id space, sorted by desc. weight."""
        n_left = graph.n_left
        left_adj = graph.left_adjacency()
        right_adj = graph.right_adjacency()
        merged: list[list[tuple[int, float]]] = []
        for neighbours in left_adj:
            merged.append([(n_left + j, w) for j, w in neighbours])
        for neighbours in right_adj:
            merged.append(list(neighbours))
        return merged
