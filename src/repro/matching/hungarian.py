"""Exact maximum-weight bipartite matching (Hungarian / Kuhn-Munkres).

The paper *excludes* the Hungarian algorithm from the evaluation
because of its cubic time complexity, while noting that Gemmell et
al.'s MaxWeight method uses the exact solution that BAH approximates.
We keep an exact solver as a reference oracle: the ablation benchmark
``bench_ablation_exact_vs_greedy`` measures how much matching weight
and F-measure the efficient heuristics sacrifice.

Implementation: ``scipy.optimize.linear_sum_assignment`` on the dense
weight matrix (only edges above the threshold contribute weight, so
maximizing the assignment and dropping zero-weight pairs yields the
maximum-weight matching of the pruned graph).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.matching.base import Matcher, MatchingResult

__all__ = ["HungarianMatching"]

# Guard against accidentally materialising a huge dense matrix.
DEFAULT_MAX_DENSE_CELLS = 30_000_000


class HungarianMatching(Matcher):
    """Exact maximum-weight bipartite matching via scipy.

    Parameters
    ----------
    max_dense_cells:
        Upper bound on ``|V1| * |V2|``; larger inputs raise
        :class:`ValueError` instead of exhausting memory.  The oracle is
        meant for the small ablation datasets, not the full corpus.
    """

    code = "HUN"
    full_name = "Hungarian (exact maximum-weight matching)"

    def __init__(self, max_dense_cells: int = DEFAULT_MAX_DENSE_CELLS) -> None:
        self.max_dense_cells = max_dense_cells

    def match_compiled(
        self, view: CompiledGraph, threshold: float
    ) -> MatchingResult:
        selection = view.select(threshold, inclusive=False)
        # Scatter in ascending *original* edge order so that parallel
        # duplicate edges resolve with the same last-write-wins value
        # as the legacy mask-based construction.
        indices = selection.original_indices()
        graph = view.source
        return self._solve_dense(
            graph, graph.left[indices], graph.right[indices],
            graph.weight[indices], threshold,
        )

    def match_legacy(
        self, graph: SimilarityGraph, threshold: float
    ) -> MatchingResult:
        mask = graph.weight > threshold
        return self._solve_dense(
            graph, graph.left[mask], graph.right[mask], graph.weight[mask],
            threshold,
        )

    def _solve_dense(
        self,
        graph: SimilarityGraph,
        left: np.ndarray,
        right: np.ndarray,
        weight: np.ndarray,
        threshold: float,
    ) -> MatchingResult:
        if graph.cartesian_size > self.max_dense_cells:
            raise ValueError(
                "graph too large for the dense Hungarian oracle: "
                f"{graph.n_left}x{graph.n_right} cells exceed "
                f"{self.max_dense_cells}"
            )
        if graph.n_left == 0 or graph.n_right == 0 or graph.n_edges == 0:
            return self._result([], threshold)

        matrix = np.zeros((graph.n_left, graph.n_right))
        matrix[left, right] = weight

        rows, cols = linear_sum_assignment(matrix, maximize=True)
        pairs = [
            (int(i), int(j))
            for i, j in zip(rows, cols)
            if matrix[i, j] > 0.0
        ]
        pairs.sort()
        return self._result(pairs, threshold)
