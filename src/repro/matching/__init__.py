"""Bipartite graph matching algorithms for Clean-Clean ER.

This package implements the paper's eight learning-free algorithms
(Section 3 / appendix pseudocode) plus two exact oracles that the paper
excludes for complexity reasons but that are useful as references:

================================  ====  =========================================
Algorithm                         Code  Module
================================  ====  =========================================
Connected Components              CNC   :mod:`repro.matching.connected_components`
Ricochet Sequential Rippling      RSR   :mod:`repro.matching.ricochet`
Row-Column Assignment             RCA   :mod:`repro.matching.row_column`
Best Assignment Heuristic         BAH   :mod:`repro.matching.best_assignment`
Best Match Clustering             BMC   :mod:`repro.matching.best_match`
Exact Clustering                  EXC   :mod:`repro.matching.exact`
Kiraly's Clustering               KRC   :mod:`repro.matching.kiraly`
Unique Mapping Clustering         UMC   :mod:`repro.matching.unique_mapping`
Hungarian (exact MWM oracle)      HUN   :mod:`repro.matching.hungarian`
Gale-Shapley (stable marriage)    GSM   :mod:`repro.matching.gale_shapley`
================================  ====  =========================================

All algorithms share the :class:`repro.matching.base.Matcher` interface
with two equivalent entry points: ``match(graph, threshold)`` — a thin
wrapper that compiles the graph (cached on the graph instance) — and
the sweep-native ``match_compiled(view, threshold)``, which consumes a
:class:`~repro.graph.compiled.CompiledGraph` so that all algorithms
and all thresholds of a sweep share one edge sort, one CSR adjacency
and cached per-threshold edge selections.  Both return a
:class:`MatchingResult` whose pairs satisfy the unique-mapping
constraint of CCER; the pre-compiled implementations survive as
``match_legacy`` and the differential test-suite plus
``benchmarks/bench_matching_sweep.py`` pin the two paths to
bit-identical output.
"""

from repro.matching.base import Matcher, MatchingResult
from repro.matching.best_assignment import BestAssignmentHeuristic
from repro.matching.best_match import BestMatchClustering
from repro.matching.connected_components import ConnectedComponentsClustering
from repro.matching.exact import ExactClustering
from repro.matching.gale_shapley import GaleShapleyMatching
from repro.matching.hungarian import HungarianMatching
from repro.matching.kiraly import KiralyClustering
from repro.matching.registry import (
    ALGORITHM_CODES,
    PAPER_ALGORITHM_CODES,
    create_matcher,
    default_matchers,
    paper_matchers,
)
from repro.matching.ricochet import RicochetSRClustering
from repro.matching.row_column import RowColumnClustering
from repro.matching.unique_mapping import UniqueMappingClustering

__all__ = [
    "Matcher",
    "MatchingResult",
    "ConnectedComponentsClustering",
    "RicochetSRClustering",
    "RowColumnClustering",
    "BestAssignmentHeuristic",
    "BestMatchClustering",
    "ExactClustering",
    "KiralyClustering",
    "UniqueMappingClustering",
    "HungarianMatching",
    "GaleShapleyMatching",
    "ALGORITHM_CODES",
    "PAPER_ALGORITHM_CODES",
    "create_matcher",
    "default_matchers",
    "paper_matchers",
]
