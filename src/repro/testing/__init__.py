"""Testing utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness used by the resilience suite (``tests/pipeline/test_resilience.py``)
and the CI ``faults`` job; it lives in the package (not in ``tests/``)
because the injectors must be importable inside pool *worker
processes*, which only see the installed package.
"""
