"""Deterministic fault injection for the resilient execution layer.

The :class:`~repro.pipeline.resilience.ResilientPool` task wrapper
calls :func:`maybe_inject` (in the worker, right before the payload
function) with the task's key and attempt number.  Faults are
configured through the ``REPRO_FAULTS`` environment variable — the
only channel that reaches pool worker *processes* — as a JSON spec
built by :func:`fault_spec`::

    REPRO_FAULTS = {
        "parent_pid": <pid of the orchestrating process>,
        "rules": [
            {"match": "d1/group001", "action": "kill"},
            {"match": ":jaccard",   "action": "delay", "seconds": 2.0},
            {"match": "",           "action": "error", "attempts": [0]},
        ],
    }

A rule fires when ``match`` is a substring of the task key and the
attempt number is in ``attempts`` (default ``[0]``: first attempt
only, so retries deterministically succeed; ``null`` = every
attempt).  Actions:

``kill``
    ``os._exit(3)`` — the worker dies as if OOM-killed, breaking the
    process pool.  Never fires in the parent process (``parent_pid``
    guards it), so inline/serial fallback execution survives a
    standing kill rule — which is exactly what the degradation tests
    rely on.
``delay``
    ``time.sleep(seconds)`` — drives a task past its deadline.
``error``
    raises :class:`InjectedFault` — an ordinary task failure.

With ``REPRO_FAULTS`` unset, :func:`maybe_inject` is one dict lookup.

File-corruption helpers (:func:`truncate_file`, :func:`corrupt_json`,
:func:`truncate_store_payload`) damage on-disk artifacts the way a
torn write or bad disk would, for the store-quarantine tests.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = [
    "ACTIONS",
    "ENV_VAR",
    "InjectedFault",
    "corrupt_json",
    "fault_spec",
    "inject",
    "maybe_inject",
    "truncate_file",
    "truncate_store_payload",
]

ENV_VAR = "REPRO_FAULTS"

#: Every rule action :func:`maybe_inject` understands.
ACTIONS = ("kill", "delay", "error")


class InjectedFault(RuntimeError):
    """The error raised by an ``action: "error"`` rule."""


def fault_spec(rules: list[dict], parent_pid: int | None = None) -> str:
    """The ``REPRO_FAULTS`` value for ``rules``.

    ``parent_pid`` defaults to the calling process, which is the
    orchestrator in every test: ``kill`` rules then only ever fire in
    pool workers, never in the process that set them.
    """
    return json.dumps(
        {
            "parent_pid": os.getpid() if parent_pid is None else parent_pid,
            "rules": list(rules),
        }
    )


def inject(monkeypatch, *rules: dict) -> None:
    """Arm ``rules`` for the test via pytest's ``monkeypatch``."""
    monkeypatch.setenv(ENV_VAR, fault_spec(list(rules)))


def maybe_inject(key: str, attempt: int) -> None:
    """Fire the first matching armed fault for this task attempt."""
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError:
        return
    for rule in spec.get("rules", ()):
        if rule.get("match", "") not in key:
            continue
        attempts = rule.get("attempts", [0])
        if attempts is not None and attempt not in attempts:
            continue
        action = rule.get("action")
        if action == "delay":
            time.sleep(float(rule.get("seconds", 1.0)))
        elif action == "error":
            raise InjectedFault(
                f"injected fault for task {key!r} (attempt {attempt})"
            )
        elif action == "kill":
            if os.getpid() != spec.get("parent_pid"):
                os._exit(3)
        return


# ----------------------------------------------------------------------
# On-disk corruption helpers
# ----------------------------------------------------------------------
def truncate_file(path: str | Path, keep_bytes: int = 16) -> None:
    """Truncate ``path`` to its first ``keep_bytes`` bytes — the shape
    a torn write leaves behind."""
    path = Path(path)
    data = path.read_bytes()[:keep_bytes]
    path.write_bytes(data)


def corrupt_json(path: str | Path) -> None:
    """Overwrite a JSON file with bytes that no longer parse."""
    Path(path).write_text('{"corrupt": tru')


def truncate_store_payload(store, index: int = 0, keep_bytes: int = 16):
    """Truncate the payload of the ``index``-th committed entry of an
    :class:`~repro.pipeline.store.ArtifactStore`; returns the entry."""
    entries = store.entries()
    entry = entries[index]
    truncate_file(store.root / f"{entry.key}.npz", keep_bytes)
    return entry
