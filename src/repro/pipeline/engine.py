"""Shared-artifact similarity engine.

The corpus workbench computes one all-pairs similarity matrix per
similarity function of the Section-4 taxonomy.  Naively each function
rebuilds every intermediate it needs — yet most intermediates are
shared by whole groups of functions:

* the 16 schema-based string measures of one attribute share the
  encoded code-point matrix (5 alignment measures) and the sparse
  token-count matrices (8 token measures) of that attribute's values;
* the 6 vector measures of one ``(unit, n)`` n-gram model share the
  n-gram profiles and vocabulary/DF statistics, and split into only
  two distinct :class:`~repro.vectorspace.VectorModel` weightings
  (``tf``/``tfidf``);
* the 4 graph measures of one ``(unit, n)`` model share the sparse
  entity n-gram graphs, whose construction dominates their cost;
* the 3 semantic measures of one ``(model, text-source)`` combination
  share the embedding model instance (and its token cache) plus the
  text/token embeddings.

:class:`ArtifactCache` memoizes these intermediates per dataset;
:class:`SimilarityEngine` computes matrices through the cache and is
**bit-identical** to the direct
:func:`~repro.pipeline.similarity_functions.compute_similarity_matrix`
path (the differential tests in ``tests/pipeline/test_engine.py``
assert exact equality for every family).

Cache keys and invalidation
---------------------------
Keys are flat tuples — ``("vector_model", unit, n, weighting)``,
``("entity_graphs", unit, n)``, ``("string_batch", attribute)``,
``("string_plan", attribute)`` plus the unique-universe artifacts
``("string_unique_encoded" | "string_unique_tokens" |
"string_token_grid", attribute)`` of the pairwise-kernel engine,
``("semantic_model", name)``, ``("text_embeddings", model, attribute)``
(``attribute is None`` marks the schema-agnostic text source), and —
when blocking is configured — ``("candidate_set", spec)`` /
``("sparse_plan", attribute, spec)`` where ``spec`` is the canonical
blocking string (see :mod:`repro.pipeline.blocking`) — so the
cache-hit tests can assert every key is built exactly once.  The cache
holds derived state of one *generated* dataset only; anything that
changes the generated data (dataset code, ``scale``, ``max_pairs``,
``seed``, noise configuration) must create a fresh
:class:`ArtifactCache`, which the workbench does by constructing one
engine per dataset per corpus run.

Persistence
-----------
Two layers persist across runs.  The graph corpus cache (keyed by
``GraphCorpusConfig.cache_key()``) stores finished *results*; the
:class:`~repro.pipeline.store.ArtifactStore` stores the expensive
*intermediates*.  A cache constructed with ``store=`` and
``dataset_key=(code, scale, max_pairs, seed)`` consults the store
before building any artifact whose kind has a registered codec
(:data:`repro.pipeline.store.STORE_KINDS`) and commits what it builds,
so a later run over the same generated dataset — even under a
different corpus config — loads embeddings, token matrices and entity
graphs instead of rebuilding them.  Loads count in ``load_counts``
(not ``build_counts``) and their wall-clock lands in ``miss_seconds``,
i.e. the artifact stage of :meth:`SimilarityEngine.compute_timed`.
Results are bit-identical with the store cold, warm or absent.

Parallelism
-----------
:func:`group_specs` partitions a spec list into contiguous
artifact-sharing groups.  The workbench farms these groups out to a
``concurrent.futures.ProcessPoolExecutor`` when its ``workers`` knob
(``GraphCorpusConfig.workers``, ``generate_corpus(..., workers=N)``,
``repro corpus --workers N``) exceeds one.  Workers recreate the
dataset deterministically from its spec, so only the config and the
specs cross the process boundary; ``workers`` never changes results or
cache keys — it only changes wall-clock.

Below the process level sits the pairwise-kernel engine
(:mod:`repro.pipeline.kernels`): the schema-based string measures run
deduplicated, cache-blocked kernels that can execute their blocks on a
thread pool.  ``SimilarityEngine(..., threads=N)`` scopes that pool —
the workbench passes the same ``workers`` knob when it runs groups
serially (process workers keep ``threads=1`` to avoid
oversubscription).  Thread count never changes results either: blocks
write disjoint output rows.
"""

from __future__ import annotations

import time
import warnings
from collections import Counter
from dataclasses import dataclass, replace

import numpy as np

from repro.datasets.generator import CleanCleanDataset
from repro.ngramgraph import (
    common_edge_matrix,
    entity_graph_matrices,
    pairwise_ratio_sum,
)
from repro.pipeline.batched_strings import (
    ALIGNMENT_MEASURES,
    TOKEN_MATRIX_MEASURES,
    StringBatch,
    schema_based_matrix,
    schema_based_pairs,
)
from repro.pipeline.kernels import SparsePlan, kernel_threads, row_chunk_size
from repro.pipeline.similarity_functions import (
    SimilarityFunctionSpec,
    graph_measure_matrix,
    make_semantic_model,
    semantic_matrix_from_embeddings,
    vector_measure_matrix,
    weighting_for_measure,
)
from repro.vectorspace import build_profile_space, build_vector_models

__all__ = [
    "ArtifactCache",
    "PairScores",
    "SimilarityEngine",
    "SpecGroup",
    "group_key",
    "group_specs",
]


class ArtifactCache:
    """Memoized expensive intermediates of one generated dataset.

    Every artifact is built at most once per key (see the module
    docstring for the key vocabulary).  ``build_counts`` and
    ``build_seconds`` record each miss for the cache-hit tests and the
    per-stage timing attribution; ``miss_seconds`` is the running total
    of time spent acquiring artifacts (building or loading), which
    :meth:`SimilarityEngine.compute_timed` samples around a matrix
    computation to split artifact cost from measure cost.

    With ``store`` (an :class:`~repro.pipeline.store.ArtifactStore`)
    and ``dataset_key`` (the ``(code, scale, max_pairs, seed)``
    identity of the generated dataset), persistable artifact kinds are
    loaded from disk when present — counted in ``load_counts`` — and
    committed to disk when built, extending the cache across runs.
    """

    def __init__(
        self,
        dataset: CleanCleanDataset,
        store=None,
        dataset_key: tuple | None = None,
    ) -> None:
        if store is not None and dataset_key is None:
            raise ValueError(
                "a persistent store needs the dataset_key identity "
                "(code, scale, max_pairs, seed)"
            )
        self.dataset = dataset
        self.store = store
        self.dataset_key = dataset_key
        self._warned_save_failure = False
        self._store: dict[tuple, object] = {}
        self.build_counts: Counter[tuple] = Counter()
        self.load_counts: Counter[tuple] = Counter()
        self.build_seconds: dict[tuple, float] = {}
        self._miss_seconds = 0.0

    @property
    def miss_seconds(self) -> float:
        """Total seconds spent building or loading artifacts so far."""
        return self._miss_seconds

    def get(self, key: tuple, builder):
        """The artifact under ``key``: memoized, loaded, or built.

        Resolution order — in-memory memo, then the persistent store
        (persistable kinds only), then ``builder()``; a fresh build is
        committed back to the store.  Either slow path's wall-clock
        counts toward ``miss_seconds``.
        """
        try:
            return self._store[key]
        except KeyError:
            pass
        start = time.perf_counter()
        nested_before = self._miss_seconds
        value = None
        if self.store is not None:
            value = self.store.load(self.dataset_key, key)
        loaded = value is not None
        if loaded:
            self.load_counts[key] += 1
        else:
            value = builder()
            self.build_counts[key] += 1
            if self.store is not None:
                try:
                    self.store.save(self.dataset_key, key, value)
                except Exception as error:
                    # The store is an optimization: a full disk, a
                    # racing cleanup or a codec edge case must not
                    # kill a run that already holds the built
                    # artifact (a store-less run would succeed).
                    # Warn once so a persistently broken store does
                    # not silently disable persistence.
                    if not self._warned_save_failure:
                        self._warned_save_failure = True
                        warnings.warn(
                            f"artifact store write failed for {key!r} "
                            f"({error}); this artifact was not "
                            "persisted (further store-write failures "
                            "in this run will not be reported)",
                            RuntimeWarning,
                            stacklevel=2,
                        )
        # Builders may recurse into the cache (e.g. text embeddings
        # pool the token embeddings); the nested get() already charged
        # its own time, so charge this key only the remainder — the
        # clock stays a wall-clock total under arbitrary nesting.
        elapsed = time.perf_counter() - start
        nested = self._miss_seconds - nested_before
        own = max(elapsed - nested, 0.0)
        self._store[key] = value
        if not loaded:
            self.build_seconds[key] = (
                self.build_seconds.get(key, 0.0) + own
            )
        self._miss_seconds += own
        return value

    # ---------------------------------------------------------- inputs
    def attribute_values(self, attribute: str) -> tuple[list[str], list[str]]:
        return self.get(
            ("values", attribute),
            lambda: (
                self.dataset.left.attribute_values(attribute),
                self.dataset.right.attribute_values(attribute),
            ),
        )

    def texts(self) -> tuple[list[str], list[str]]:
        return self.get(
            ("texts",),
            lambda: (self.dataset.left.texts(), self.dataset.right.texts()),
        )

    def _source(self, attribute: str | None) -> tuple[list[str], list[str]]:
        """Strings of a text source: an attribute or the full texts."""
        if attribute is None:
            return self.texts()
        return self.attribute_values(attribute)

    # ---------------------------------------------- schema-based batch
    def string_batch(self, attribute: str) -> StringBatch:
        lefts, rights = self.attribute_values(attribute)
        return self.get(
            ("string_batch", attribute), lambda: StringBatch(lefts, rights)
        )

    # ------------------------------------------------ candidate pairs
    def candidate_set(self, blocking: str):
        """The blocking candidate set for a (canonical) spec string.

        Built over the schema-agnostic texts (blocking is record-level,
        not attribute-level) and persisted through the store under the
        content key ``("candidate_set", spec)``, so reruns and sibling
        corpus configs sharing the generated dataset reuse it.
        """
        from repro.pipeline.blocking import build_candidate_set

        def build():
            lefts, rights = self.texts()
            return build_candidate_set(lefts, rights, blocking)

        return self.get(("candidate_set", blocking), build)

    def sparse_plan(self, attribute: str, blocking: str) -> SparsePlan:
        """Candidate-cell plan of one attribute's unique-value grid."""
        def build():
            candidates = self.candidate_set(blocking)
            batch = self.string_batch(attribute)
            return SparsePlan.build(
                batch.plan, candidates.left, candidates.right
            )

        return self.get(("sparse_plan", attribute, blocking), build)

    def probe_index(self, blocking: str):
        """The query-time :class:`~repro.pipeline.blocking.BlockingIndex`.

        Memoized but never persisted: the index is a dict-heavy probe
        structure cheap to rebuild from the dataset and expensive to
        serialize, and the serving layer builds it once per process at
        warmup anyway.
        """
        from repro.pipeline.blocking import build_blocking_index

        def build():
            lefts, rights = self.texts()
            return build_blocking_index(lefts, rights, blocking)

        return self.get(("probe_index", blocking), build)

    # -------------------------------------------------- vector models
    def profile_space(self, unit: str, n: int):
        texts_left, texts_right = self.texts()
        return self.get(
            ("profile_space", unit, n),
            lambda: build_profile_space(texts_left, texts_right, n, unit),
        )

    def vector_models(self, unit: str, n: int, weighting: str):
        # The profile space resolves inside the builder: a store hit
        # for both weightings of a (unit, n) model never extracts a
        # single n-gram profile.
        def build():
            texts_left, texts_right = self.texts()
            return build_vector_models(
                texts_left,
                texts_right,
                n=n,
                unit=unit,
                weighting=weighting,
                space=self.profile_space(unit, n),
            )

        return self.get(("vector_model", unit, n, weighting), build)

    # --------------------------------------------------- n-gram graphs
    def value_lists(self) -> tuple[list[list[str]], list[list[str]]]:
        return self.get(
            ("value_lists",),
            lambda: (
                self.dataset.left.value_lists(),
                self.dataset.right.value_lists(),
            ),
        )

    def entity_graphs(self, unit: str, n: int):
        def build():
            lists_left, lists_right = self.value_lists()
            return entity_graph_matrices(
                lists_left, lists_right, n=n, unit=unit
            )

        return self.get(("entity_graphs", unit, n), build)

    def graph_ratio_sums(self, unit: str, n: int) -> np.ndarray:
        """Pairwise ratio sums shared by Value/NormValue/Overall."""
        return self.get(
            ("graph_ratio", unit, n),
            lambda: pairwise_ratio_sum(*self.entity_graphs(unit, n)),
        )

    def graph_common_edges(self, unit: str, n: int) -> np.ndarray:
        """Common-edge counts shared by Containment/Overall."""
        return self.get(
            ("graph_common", unit, n),
            lambda: common_edge_matrix(*self.entity_graphs(unit, n)),
        )

    # ------------------------------------------------ semantic models
    def semantic_model(self, name: str):
        return self.get(
            ("semantic_model", name), lambda: make_semantic_model(name)
        )

    def text_embeddings(
        self, model_name: str, attribute: str | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked text embeddings, derived from the token embeddings.

        ``embed_text`` is exactly the row mean of ``embed_tokens`` (the
        zero vector for token-less texts), so pooling the cached token
        matrices is bit-identical to calling ``embed_texts`` — and one
        token-embedding pass serves all three semantic measures.  The
        model and token matrices resolve inside the builder, so a
        store hit serves the cosine/euclidean measures without
        instantiating a model or touching the token embeddings.
        """

        def build():
            model = self.semantic_model(model_name)
            token_left, token_right = self.token_embeddings(
                model_name, attribute
            )
            return (
                _pool_token_embeddings(token_left, model.dim),
                _pool_token_embeddings(token_right, model.dim),
            )

        return self.get(("text_embeddings", model_name, attribute), build)

    def token_embeddings(
        self, model_name: str, attribute: str | None
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        def build():
            model = self.semantic_model(model_name)
            lefts, rights = self._source(attribute)
            return (
                [model.embed_tokens(text) for text in lefts],
                [model.embed_tokens(text) for text in rights],
            )

        return self.get(("token_embeddings", model_name, attribute), build)

    def wmd_stats(self, model_name: str, attribute: str | None):
        """Per-text RWMD statistics (squared norms and weights)."""
        from repro.embeddings.wmd import token_stats

        token_left, token_right = self.token_embeddings(
            model_name, attribute
        )
        return self.get(
            ("wmd_stats", model_name, attribute),
            lambda: (
                [token_stats(matrix) for matrix in token_left],
                [token_stats(matrix) for matrix in token_right],
            ),
        )


def _pool_token_embeddings(
    token_matrices: list[np.ndarray], dim: int
) -> np.ndarray:
    """Mean-pool per-text token matrices into stacked text embeddings."""
    return np.vstack(
        [
            matrix.mean(axis=0) if matrix.shape[0] else np.zeros(dim)
            for matrix in token_matrices
        ]
    )


@dataclass(frozen=True)
class PairScores:
    """Sparse scoring result: per-candidate-pair similarity values.

    ``left``/``right``/``values`` are parallel arrays over the
    candidate pairs (sorted lexicographically, the
    :class:`~repro.pipeline.blocking.CandidateSet` order).  On every
    retained pair the value is bitwise equal to the dense matrix cell;
    ``fallback`` marks families scored by dense-then-gather (vector,
    graph and semantic measures, whose BLAS summation orders cannot be
    reproduced cell-wise) rather than the truly sparse kernel path.
    """

    n_left: int
    n_right: int
    left: np.ndarray
    right: np.ndarray
    values: np.ndarray
    fallback: bool = False

    @property
    def n_pairs(self) -> int:
        """Number of scored candidate pairs."""
        return int(self.values.size)


class SimilarityEngine:
    """Computes similarity matrices through an :class:`ArtifactCache`.

    Produces bit-identical results to
    :func:`~repro.pipeline.similarity_functions.compute_similarity_matrix`
    — same kernels, same inputs — while building every shared artifact
    once.  ``store``/``dataset_key`` (see :class:`ArtifactCache`)
    additionally persist the artifacts across runs; neither affects
    any produced matrix.

    With ``blocking`` (a spec string for
    :func:`~repro.pipeline.blocking.parse_blocking_spec`),
    :meth:`compute_pairs_timed` scores only the candidate pairs of the
    blocking scheme — the sparse path.  The dense :meth:`compute` path
    is unaffected by the knob.
    """

    def __init__(
        self,
        dataset: CleanCleanDataset,
        cache: ArtifactCache | None = None,
        threads: int = 1,
        store=None,
        dataset_key: tuple | None = None,
        blocking: str | None = None,
        shard_plan=None,
    ) -> None:
        self.dataset = dataset
        if cache is None:
            cache = ArtifactCache(dataset, store=store, dataset_key=dataset_key)
        elif store is not None or dataset_key is not None:
            raise ValueError(
                "pass store/dataset_key to the ArtifactCache when "
                "supplying an explicit cache — they would otherwise "
                "be silently ignored"
            )
        self.cache = cache
        self.threads = max(int(threads), 1)
        if blocking is not None:
            from repro.pipeline.blocking import canonical_blocking

            blocking = canonical_blocking(blocking)
        self.blocking = blocking
        self.shard_plan = shard_plan

    def compute(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        """The all-pairs similarity matrix of ``spec``."""
        matrix, _, _ = self.compute_timed(spec)
        return matrix

    def compute_timed(
        self, spec: SimilarityFunctionSpec
    ) -> tuple[np.ndarray, float, float]:
        """``(matrix, artifact_seconds, matrix_seconds)`` for ``spec``.

        ``artifact_seconds`` is the time spent building cache-missed
        artifacts during this call (zero on a fully warm cache);
        ``matrix_seconds`` is the remainder of the wall-clock.  The
        pairwise kernels run under this engine's ``threads`` knob,
        which never affects the produced matrix.
        """
        before = self.cache.miss_seconds
        start = time.perf_counter()
        with kernel_threads(self.threads):
            matrix = self._dispatch(spec)
        total = time.perf_counter() - start
        artifact_seconds = self.cache.miss_seconds - before
        return matrix, artifact_seconds, max(total - artifact_seconds, 0.0)

    def compute_pairs(self, spec: SimilarityFunctionSpec) -> PairScores:
        """Candidate-pair scores of ``spec`` under this engine's blocking."""
        pairs, _, _ = self.compute_pairs_timed(spec)
        return pairs

    def compute_pairs_timed(
        self, spec: SimilarityFunctionSpec
    ) -> tuple[PairScores, float, float]:
        """``(pairs, artifact_seconds, matrix_seconds)`` for ``spec``.

        The sparse analogue of :meth:`compute_timed`: scores only the
        candidate pairs produced by this engine's ``blocking`` spec.
        Requires ``blocking`` to be configured.
        """
        if self.blocking is None:
            raise ValueError(
                "compute_pairs_timed requires a blocking= spec; "
                "use compute_timed for the dense all-pairs path"
            )
        before = self.cache.miss_seconds
        start = time.perf_counter()
        with kernel_threads(self.threads):
            pairs = self._dispatch_pairs(spec)
        total = time.perf_counter() - start
        artifact_seconds = self.cache.miss_seconds - before
        return pairs, artifact_seconds, max(total - artifact_seconds, 0.0)

    def _dispatch(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        if spec.family == "schema_based_syntactic":
            return self._schema_based(spec)
        if spec.family == "schema_agnostic_syntactic":
            if spec.details["model"] == "vector":
                return self._vector(spec)
            return self._graph(spec)
        if spec.family == "schema_based_semantic":
            return self._semantic(spec, spec.details["attribute"])
        return self._semantic(spec, None)

    def _dispatch_pairs(self, spec: SimilarityFunctionSpec) -> PairScores:
        candidates = self.cache.candidate_set(self.blocking)
        if spec.family == "schema_based_syntactic":
            values = self._schema_based_pairs(spec)
            fallback = False
        else:
            # Vector/graph/semantic measures reduce over model
            # dimensions with BLAS summation orders that a cell-wise
            # kernel cannot reproduce bitwise — score dense row
            # chunks and gather the retained cells incrementally, so
            # peak memory is one chunk block rather than the full
            # grid.  Identical values by construction; flagged so
            # callers can tell.
            values = self._gather_chunked(spec, candidates)
            fallback = True
        return PairScores(
            n_left=candidates.n_left,
            n_right=candidates.n_right,
            left=candidates.left,
            right=candidates.right,
            values=values,
            fallback=fallback,
        )

    def compute_sharded(
        self,
        spec: SimilarityFunctionSpec,
        shard_plan=None,
        spill_dir=None,
        name: str = "",
        metadata: dict | None = None,
        normalize: bool = True,
    ):
        """The similarity graph of ``spec``, built shard by shard.

        Streams the row-range shards of ``shard_plan`` (or the plan
        passed to the constructor) through :meth:`shard_scores`,
        spills each shard's edges to an npz file and merges them into
        a :class:`~repro.graph.bipartite.SimilarityGraph` —
        bit-identical to building the graph from :meth:`compute` /
        :meth:`compute_pairs` and invariant to the shard count.  Peak
        memory is one dense row chunk plus the merged edge arrays,
        never the full matrix.
        """
        from repro.pipeline.sharding import ShardRun

        plan = shard_plan if shard_plan is not None else self.shard_plan
        if plan is None:
            raise ValueError(
                "compute_sharded requires a shard plan — pass "
                "shard_plan= here or to the constructor"
            )
        return ShardRun(self, plan, spill_dir=spill_dir).run(
            spec, name=name, metadata=metadata, normalize=normalize
        )

    def shard_scores(
        self, spec: SimilarityFunctionSpec, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Raw positive-score edges of matrix rows ``[start, stop)``.

        ``(left, right, values)`` with absolute row indices and raw
        (unclipped) scores, in exactly the order the full-matrix graph
        construction emits them — row-major nonzero order on the dense
        path, candidate order (positive cells only) under blocking —
        so concatenating consecutive shards reproduces the unsharded
        edge stream bit-identically.
        """
        [(edges, _, _)] = self.shard_scores_group([spec], start, stop)
        return edges

    def shard_scores_group(
        self,
        specs,
        start: int,
        stop: int,
    ) -> list[tuple[tuple[np.ndarray, np.ndarray, np.ndarray], float, float]]:
        """Per-spec ``(edges, artifact_seconds, matrix_seconds)`` of a shard.

        Iterates chunk-outer / spec-inner: every spec of an
        artifact-sharing group scores one grid block before the next
        block is touched, so block-level intermediates (string
        batches, graph ratio sums) are built once per block and peak
        memory stays at one dense chunk regardless of how many specs
        ride along.
        """
        candidates = None
        if self.blocking is not None:
            candidates = self.cache.candidate_set(self.blocking)
            n_left, n_right = candidates.n_left, candidates.n_right
        else:
            texts_left, texts_right = self.cache.texts()
            n_left, n_right = len(texts_left), len(texts_right)
        start = max(int(start), 0)
        stop = min(int(stop), n_left)
        accumulated: list[tuple[list, list, list]] = [
            ([], [], []) for _ in specs
        ]
        artifact_seconds = [0.0] * len(specs)
        matrix_seconds = [0.0] * len(specs)
        with kernel_threads(self.threads):
            chunk = row_chunk_size(n_right)
            for g_lo, g_hi in _grid_blocks(start, stop, chunk, n_left):
                row_lo, row_hi = max(start, g_lo), min(stop, g_hi)
                if candidates is not None:
                    pair_lo, pair_hi = np.searchsorted(
                        candidates.left, [row_lo, row_hi]
                    )
                    if pair_lo == pair_hi:
                        continue
                scratch: dict = {}
                for index, spec in enumerate(specs):
                    before = self.cache.miss_seconds
                    begin = time.perf_counter()
                    block = self._dispatch_rows(spec, g_lo, g_hi, scratch)
                    if candidates is not None:
                        pair_left = candidates.left[pair_lo:pair_hi]
                        pair_right = candidates.right[pair_lo:pair_hi]
                        values = np.ascontiguousarray(
                            block[pair_left - g_lo, pair_right]
                        )
                        keep = values > 0.0
                        rows = pair_left[keep]
                        cols = pair_right[keep]
                        values = values[keep]
                    else:
                        sub = block[row_lo - g_lo : row_hi - g_lo]
                        rows, cols = np.nonzero(sub > 0.0)
                        values = sub[rows, cols]
                        rows = rows + row_lo
                    elapsed = time.perf_counter() - begin
                    own = self.cache.miss_seconds - before
                    artifact_seconds[index] += own
                    matrix_seconds[index] += max(elapsed - own, 0.0)
                    accumulated[index][0].append(rows)
                    accumulated[index][1].append(cols)
                    accumulated[index][2].append(values)
        results = []
        for (rows, cols, values), build, score in zip(
            accumulated, artifact_seconds, matrix_seconds
        ):
            if rows:
                edges = (
                    np.concatenate(rows),
                    np.concatenate(cols),
                    np.concatenate(values),
                )
            else:
                edges = (
                    np.empty(0, dtype=np.intp),
                    np.empty(0, dtype=np.intp),
                    np.empty(0, dtype=np.float64),
                )
            results.append((edges, build, score))
        return results

    def _gather_chunked(
        self, spec: SimilarityFunctionSpec, candidates
    ) -> np.ndarray:
        """Candidate-cell values of ``spec`` via chunked dense rows."""
        values = np.empty(len(candidates.left), dtype=np.float64)
        chunk = row_chunk_size(candidates.n_right)
        for g_lo, g_hi in _grid_blocks(
            0, candidates.n_left, chunk, candidates.n_left
        ):
            pair_lo, pair_hi = np.searchsorted(
                candidates.left, [g_lo, g_hi]
            )
            if pair_lo == pair_hi:
                continue
            scratch: dict = {}
            block = self._dispatch_rows(spec, g_lo, g_hi, scratch)
            values[pair_lo:pair_hi] = block[
                candidates.left[pair_lo:pair_hi] - g_lo,
                candidates.right[pair_lo:pair_hi],
            ]
        return values

    def _dispatch_rows(
        self,
        spec: SimilarityFunctionSpec,
        start: int,
        stop: int,
        scratch: dict,
    ) -> np.ndarray:
        """Dense rows ``[start, stop)`` of ``spec``'s matrix.

        Bitwise equal to ``self._dispatch(spec)[start:stop]`` when
        ``[start, stop)`` is a block of the absolute row-chunk grid
        (:func:`~repro.pipeline.kernels.row_chunk_size`): the string
        kernels are per-pair exact, the vector/graph reductions are
        row-local, and the semantic gemms are chunked on exactly that
        grid.  ``scratch`` holds block-level intermediates shared by
        sibling specs scoring the same block; callers discard it
        between blocks to keep memory bounded.
        """
        if spec.family == "schema_based_syntactic":
            return self._schema_based_rows(spec, start, stop, scratch)
        if spec.family == "schema_agnostic_syntactic":
            if spec.details["model"] == "vector":
                return self._vector_rows(spec, start, stop)
            return self._graph_rows(spec, start, stop, scratch)
        if spec.family == "schema_based_semantic":
            return self._semantic_rows(
                spec, spec.details["attribute"], start, stop
            )
        return self._semantic_rows(spec, None, start, stop)

    def _schema_based_rows(
        self, spec: SimilarityFunctionSpec, start: int, stop: int, scratch: dict
    ) -> np.ndarray:
        attribute = spec.details["attribute"]
        measure = spec.details["measure"]
        lefts, rights = self.cache.attribute_values(attribute)
        key = ("string_rows", attribute, start, stop)
        batch = scratch.get(key)
        if batch is None:
            batch = StringBatch(lefts[start:stop], rights)
            scratch[key] = batch
        return schema_based_matrix(batch.lefts, batch.rights, measure, batch)

    def _vector_rows(
        self, spec: SimilarityFunctionSpec, start: int, stop: int
    ) -> np.ndarray:
        measure = spec.details["measure"]
        left, right = self.cache.vector_models(
            spec.details["unit"],
            spec.details["n"],
            weighting_for_measure(measure),
        )
        # Row-slice the left model only; document frequencies and the
        # vocabulary stay collection-global (ARCS weights by global DF).
        rows = replace(
            left,
            matrix=left.matrix[start:stop],
            binary=left.binary[start:stop],
        )
        return vector_measure_matrix(rows, right, measure)

    def _graph_rows(
        self, spec: SimilarityFunctionSpec, start: int, stop: int, scratch: dict
    ) -> np.ndarray:
        unit, n = spec.details["unit"], spec.details["n"]
        measure = spec.details["measure"]
        sparse_left, sparse_right = self.cache.entity_graphs(unit, n)
        rows_left = sparse_left[start:stop]
        ratio = common = None
        if measure in ("value", "normalized_value", "overall"):
            key = ("graph_ratio_rows", unit, n, start, stop)
            ratio = scratch.get(key)
            if ratio is None:
                ratio = pairwise_ratio_sum(rows_left, sparse_right)
                scratch[key] = ratio
        if measure in ("containment", "overall"):
            key = ("graph_common_rows", unit, n, start, stop)
            common = scratch.get(key)
            if common is None:
                common = common_edge_matrix(rows_left, sparse_right)
                scratch[key] = common
        return graph_measure_matrix(
            rows_left, sparse_right, measure, ratio=ratio, common=common
        )

    def _semantic_rows(
        self,
        spec: SimilarityFunctionSpec,
        attribute: str | None,
        start: int,
        stop: int,
    ) -> np.ndarray:
        model_name = spec.details["model"]
        measure = spec.details["measure"]
        lefts, rights = self.cache._source(attribute)
        wmd_stats = None
        if measure == "wmd":
            token_left, token_right = self.cache.token_embeddings(
                model_name, attribute
            )
            stats_left, stats_right = self.cache.wmd_stats(
                model_name, attribute
            )
            embeddings = (token_left[start:stop], token_right)
            wmd_stats = (stats_left[start:stop], stats_right)
        else:
            text_left, text_right = self.cache.text_embeddings(
                model_name, attribute
            )
            embeddings = (text_left[start:stop], text_right)
        return semantic_matrix_from_embeddings(
            lefts[start:stop],
            rights,
            measure,
            embeddings[0],
            embeddings[1],
            wmd_stats=wmd_stats,
        )

    def _seed_schema_artifacts(self, attribute: str, measure: str):
        batch = self.cache.string_batch(attribute)
        # Materialize the measure's shared unique-universe artifacts
        # under the cache clock so their cost is attributed to the
        # artifact stage (the batch builds them lazily either way).
        # When an artifact arrives from the persistent store instead,
        # seed the batch's lazy slot with it so the kernels consume
        # the loaded arrays (see StringBatch.seed_artifact).
        self.cache.get(("string_plan", attribute), lambda: batch.plan)
        if measure in ALIGNMENT_MEASURES or measure == "jaro":
            encoded = self.cache.get(
                ("string_unique_encoded", attribute),
                lambda: (
                    batch.unique_left_encoding,
                    batch.unique_right_encoding,
                ),
            )
            batch.seed_artifact("unique_left_encoding", encoded[0])
            batch.seed_artifact("unique_right_encoding", encoded[1])
        elif measure in TOKEN_MATRIX_MEASURES:
            token_sparse = self.cache.get(
                ("string_unique_tokens", attribute),
                lambda: batch.unique_token_sparse,
            )
            batch.seed_artifact("unique_token_sparse", token_sparse)
        elif measure == "monge_elkan":
            grid = self.cache.get(
                ("string_token_grid", attribute),
                lambda: batch.monge_elkan_grid,
            )
            batch.seed_artifact("monge_elkan_grid", grid)
        return batch

    def _schema_based(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        attribute = spec.details["attribute"]
        measure = spec.details["measure"]
        batch = self._seed_schema_artifacts(attribute, measure)
        return schema_based_matrix(batch.lefts, batch.rights, measure, batch)

    def _schema_based_pairs(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        attribute = spec.details["attribute"]
        measure = spec.details["measure"]
        batch = self._seed_schema_artifacts(attribute, measure)
        sparse_plan = self.cache.sparse_plan(attribute, self.blocking)
        return schema_based_pairs(batch.lefts, batch.rights, measure, sparse_plan, batch)

    def _vector(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        measure = spec.details["measure"]
        left, right = self.cache.vector_models(
            spec.details["unit"],
            spec.details["n"],
            weighting_for_measure(measure),
        )
        return vector_measure_matrix(left, right, measure)

    def _graph(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        unit, n = spec.details["unit"], spec.details["n"]
        measure = spec.details["measure"]
        sparse_left, sparse_right = self.cache.entity_graphs(unit, n)
        ratio = common = None
        if measure in ("value", "normalized_value", "overall"):
            ratio = self.cache.graph_ratio_sums(unit, n)
        if measure in ("containment", "overall"):
            common = self.cache.graph_common_edges(unit, n)
        return graph_measure_matrix(
            sparse_left, sparse_right, measure, ratio=ratio, common=common
        )

    def _semantic(
        self, spec: SimilarityFunctionSpec, attribute: str | None
    ) -> np.ndarray:
        model_name = spec.details["model"]
        measure = spec.details["measure"]
        lefts, rights = self.cache._source(attribute)
        wmd_stats = None
        if measure == "wmd":
            embeddings = self.cache.token_embeddings(model_name, attribute)
            wmd_stats = self.cache.wmd_stats(model_name, attribute)
        else:
            embeddings = self.cache.text_embeddings(model_name, attribute)
        return semantic_matrix_from_embeddings(
            lefts,
            rights,
            measure,
            embeddings[0],
            embeddings[1],
            wmd_stats=wmd_stats,
        )


def _grid_blocks(start: int, stop: int, chunk: int, n_rows: int):
    """Absolute chunk-grid blocks overlapping ``[start, stop)``.

    Yields whole grid cells ``[k*chunk, min((k+1)*chunk, n_rows))``
    regardless of where the requested range starts or ends — callers
    slice the computed rows down to the range.  Evaluating only whole
    grid cells keeps every chunk-internal BLAS gemm bitwise identical
    to the blocks the unsharded chunked pass performs, which is what
    makes shard boundaries free to land on any row.
    """
    lo = start - (start % chunk)
    while lo < stop:
        hi = min(lo + chunk, n_rows)
        yield lo, hi
        lo = hi


@dataclass(frozen=True)
class SpecGroup:
    """A contiguous run of specs sharing their expensive artifacts."""

    key: tuple
    specs: tuple[SimilarityFunctionSpec, ...]


def group_key(spec: SimilarityFunctionSpec) -> tuple:
    """The artifact-sharing group a spec belongs to."""
    if spec.family == "schema_based_syntactic":
        return ("schema_based", spec.details["attribute"])
    if spec.family == "schema_agnostic_syntactic":
        return (
            spec.details["model"],
            spec.details["unit"],
            spec.details["n"],
        )
    if spec.family == "schema_based_semantic":
        return ("semantic", spec.details["model"], spec.details["attribute"])
    return ("semantic", spec.details["model"], None)


def group_specs(specs: list[SimilarityFunctionSpec]) -> list[SpecGroup]:
    """Partition ``specs`` into artifact-sharing groups.

    Groups keep first-seen key order and specs keep their relative
    order; because :func:`enumerate_function_specs` emits each group's
    specs contiguously, concatenating the groups reproduces the input
    order exactly — the corpus is invariant under grouping.
    """
    ordered: dict[tuple, list[SimilarityFunctionSpec]] = {}
    for spec in specs:
        ordered.setdefault(group_key(spec), []).append(spec)
    return [
        SpecGroup(key=key, specs=tuple(members))
        for key, members in ordered.items()
    ]
