"""Shared-artifact similarity engine.

The corpus workbench computes one all-pairs similarity matrix per
similarity function of the Section-4 taxonomy.  Naively each function
rebuilds every intermediate it needs — yet most intermediates are
shared by whole groups of functions:

* the 16 schema-based string measures of one attribute share the
  encoded code-point matrix (5 alignment measures) and the sparse
  token-count matrices (8 token measures) of that attribute's values;
* the 6 vector measures of one ``(unit, n)`` n-gram model share the
  n-gram profiles and vocabulary/DF statistics, and split into only
  two distinct :class:`~repro.vectorspace.VectorModel` weightings
  (``tf``/``tfidf``);
* the 4 graph measures of one ``(unit, n)`` model share the sparse
  entity n-gram graphs, whose construction dominates their cost;
* the 3 semantic measures of one ``(model, text-source)`` combination
  share the embedding model instance (and its token cache) plus the
  text/token embeddings.

:class:`ArtifactCache` memoizes these intermediates per dataset;
:class:`SimilarityEngine` computes matrices through the cache and is
**bit-identical** to the direct
:func:`~repro.pipeline.similarity_functions.compute_similarity_matrix`
path (the differential tests in ``tests/pipeline/test_engine.py``
assert exact equality for every family).

Cache keys and invalidation
---------------------------
Keys are flat tuples — ``("vector_model", unit, n, weighting)``,
``("entity_graphs", unit, n)``, ``("string_batch", attribute)``,
``("string_plan", attribute)`` plus the unique-universe artifacts
``("string_unique_encoded" | "string_unique_tokens" |
"string_token_grid", attribute)`` of the pairwise-kernel engine,
``("semantic_model", name)``, ``("text_embeddings", model, attribute)``
(``attribute is None`` marks the schema-agnostic text source) — so the
cache-hit tests can assert every key is built exactly once.  The cache
holds derived state of one *generated* dataset only; anything that
changes the generated data (dataset code, ``scale``, ``max_pairs``,
``seed``, noise configuration) must create a fresh
:class:`ArtifactCache`, which the workbench does by constructing one
engine per dataset per corpus run.  Nothing is persisted: the
persistent layer is the graph corpus cache keyed by
``GraphCorpusConfig.cache_key()``.

Parallelism
-----------
:func:`group_specs` partitions a spec list into contiguous
artifact-sharing groups.  The workbench farms these groups out to a
``concurrent.futures.ProcessPoolExecutor`` when its ``workers`` knob
(``GraphCorpusConfig.workers``, ``generate_corpus(..., workers=N)``,
``repro corpus --workers N``) exceeds one.  Workers recreate the
dataset deterministically from its spec, so only the config and the
specs cross the process boundary; ``workers`` never changes results or
cache keys — it only changes wall-clock.

Below the process level sits the pairwise-kernel engine
(:mod:`repro.pipeline.kernels`): the schema-based string measures run
deduplicated, cache-blocked kernels that can execute their blocks on a
thread pool.  ``SimilarityEngine(..., threads=N)`` scopes that pool —
the workbench passes the same ``workers`` knob when it runs groups
serially (process workers keep ``threads=1`` to avoid
oversubscription).  Thread count never changes results either: blocks
write disjoint output rows.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.datasets.generator import CleanCleanDataset
from repro.ngramgraph import (
    common_edge_matrix,
    entity_graph_matrices,
    pairwise_ratio_sum,
)
from repro.pipeline.batched_strings import (
    ALIGNMENT_MEASURES,
    TOKEN_MATRIX_MEASURES,
    StringBatch,
    schema_based_matrix,
)
from repro.pipeline.kernels import kernel_threads
from repro.pipeline.similarity_functions import (
    SimilarityFunctionSpec,
    graph_measure_matrix,
    make_semantic_model,
    semantic_matrix_from_embeddings,
    vector_measure_matrix,
    weighting_for_measure,
)
from repro.vectorspace import build_profile_space, build_vector_models

__all__ = [
    "ArtifactCache",
    "SimilarityEngine",
    "SpecGroup",
    "group_key",
    "group_specs",
]


class ArtifactCache:
    """Memoized expensive intermediates of one generated dataset.

    Every artifact is built at most once per key (see the module
    docstring for the key vocabulary).  ``build_counts`` and
    ``build_seconds`` record each miss for the cache-hit tests and the
    per-stage timing attribution; ``miss_seconds`` is the running total
    of time spent building artifacts, which
    :meth:`SimilarityEngine.compute_timed` samples around a matrix
    computation to split artifact cost from measure cost.
    """

    def __init__(self, dataset: CleanCleanDataset) -> None:
        self.dataset = dataset
        self._store: dict[tuple, object] = {}
        self.build_counts: Counter[tuple] = Counter()
        self.build_seconds: dict[tuple, float] = {}
        self._miss_seconds = 0.0

    @property
    def miss_seconds(self) -> float:
        """Total seconds spent building artifacts so far."""
        return self._miss_seconds

    def get(self, key: tuple, builder):
        """The artifact under ``key``, building it on first access."""
        try:
            return self._store[key]
        except KeyError:
            pass
        start = time.perf_counter()
        value = builder()
        elapsed = time.perf_counter() - start
        self._store[key] = value
        self.build_counts[key] += 1
        self.build_seconds[key] = (
            self.build_seconds.get(key, 0.0) + elapsed
        )
        self._miss_seconds += elapsed
        return value

    # ---------------------------------------------------------- inputs
    def attribute_values(self, attribute: str) -> tuple[list[str], list[str]]:
        return self.get(
            ("values", attribute),
            lambda: (
                self.dataset.left.attribute_values(attribute),
                self.dataset.right.attribute_values(attribute),
            ),
        )

    def texts(self) -> tuple[list[str], list[str]]:
        return self.get(
            ("texts",),
            lambda: (self.dataset.left.texts(), self.dataset.right.texts()),
        )

    def _source(self, attribute: str | None) -> tuple[list[str], list[str]]:
        """Strings of a text source: an attribute or the full texts."""
        if attribute is None:
            return self.texts()
        return self.attribute_values(attribute)

    # ---------------------------------------------- schema-based batch
    def string_batch(self, attribute: str) -> StringBatch:
        lefts, rights = self.attribute_values(attribute)
        return self.get(
            ("string_batch", attribute), lambda: StringBatch(lefts, rights)
        )

    # -------------------------------------------------- vector models
    def profile_space(self, unit: str, n: int):
        texts_left, texts_right = self.texts()
        return self.get(
            ("profile_space", unit, n),
            lambda: build_profile_space(texts_left, texts_right, n, unit),
        )

    def vector_models(self, unit: str, n: int, weighting: str):
        space = self.profile_space(unit, n)
        texts_left, texts_right = self.texts()
        return self.get(
            ("vector_model", unit, n, weighting),
            lambda: build_vector_models(
                texts_left,
                texts_right,
                n=n,
                unit=unit,
                weighting=weighting,
                space=space,
            ),
        )

    # --------------------------------------------------- n-gram graphs
    def value_lists(self) -> tuple[list[list[str]], list[list[str]]]:
        return self.get(
            ("value_lists",),
            lambda: (
                self.dataset.left.value_lists(),
                self.dataset.right.value_lists(),
            ),
        )

    def entity_graphs(self, unit: str, n: int):
        lists_left, lists_right = self.value_lists()
        return self.get(
            ("entity_graphs", unit, n),
            lambda: entity_graph_matrices(
                lists_left, lists_right, n=n, unit=unit
            ),
        )

    def graph_ratio_sums(self, unit: str, n: int) -> np.ndarray:
        """Pairwise ratio sums shared by Value/NormValue/Overall."""
        sparse_left, sparse_right = self.entity_graphs(unit, n)
        return self.get(
            ("graph_ratio", unit, n),
            lambda: pairwise_ratio_sum(sparse_left, sparse_right),
        )

    def graph_common_edges(self, unit: str, n: int) -> np.ndarray:
        """Common-edge counts shared by Containment/Overall."""
        sparse_left, sparse_right = self.entity_graphs(unit, n)
        return self.get(
            ("graph_common", unit, n),
            lambda: common_edge_matrix(sparse_left, sparse_right),
        )

    # ------------------------------------------------ semantic models
    def semantic_model(self, name: str):
        return self.get(
            ("semantic_model", name), lambda: make_semantic_model(name)
        )

    def text_embeddings(
        self, model_name: str, attribute: str | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked text embeddings, derived from the token embeddings.

        ``embed_text`` is exactly the row mean of ``embed_tokens`` (the
        zero vector for token-less texts), so pooling the cached token
        matrices is bit-identical to calling ``embed_texts`` — and one
        token-embedding pass serves all three semantic measures.
        """
        model = self.semantic_model(model_name)
        token_left, token_right = self.token_embeddings(
            model_name, attribute
        )
        return self.get(
            ("text_embeddings", model_name, attribute),
            lambda: (
                _pool_token_embeddings(token_left, model.dim),
                _pool_token_embeddings(token_right, model.dim),
            ),
        )

    def token_embeddings(
        self, model_name: str, attribute: str | None
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        model = self.semantic_model(model_name)
        lefts, rights = self._source(attribute)
        return self.get(
            ("token_embeddings", model_name, attribute),
            lambda: (
                [model.embed_tokens(text) for text in lefts],
                [model.embed_tokens(text) for text in rights],
            ),
        )

    def wmd_stats(self, model_name: str, attribute: str | None):
        """Per-text RWMD statistics (squared norms and weights)."""
        from repro.embeddings.wmd import token_stats

        token_left, token_right = self.token_embeddings(
            model_name, attribute
        )
        return self.get(
            ("wmd_stats", model_name, attribute),
            lambda: (
                [token_stats(matrix) for matrix in token_left],
                [token_stats(matrix) for matrix in token_right],
            ),
        )


def _pool_token_embeddings(
    token_matrices: list[np.ndarray], dim: int
) -> np.ndarray:
    """Mean-pool per-text token matrices into stacked text embeddings."""
    return np.vstack(
        [
            matrix.mean(axis=0) if matrix.shape[0] else np.zeros(dim)
            for matrix in token_matrices
        ]
    )


class SimilarityEngine:
    """Computes similarity matrices through an :class:`ArtifactCache`.

    Produces bit-identical results to
    :func:`~repro.pipeline.similarity_functions.compute_similarity_matrix`
    — same kernels, same inputs — while building every shared artifact
    once.
    """

    def __init__(
        self,
        dataset: CleanCleanDataset,
        cache: ArtifactCache | None = None,
        threads: int = 1,
    ) -> None:
        self.dataset = dataset
        self.cache = cache if cache is not None else ArtifactCache(dataset)
        self.threads = max(int(threads), 1)

    def compute(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        """The all-pairs similarity matrix of ``spec``."""
        matrix, _, _ = self.compute_timed(spec)
        return matrix

    def compute_timed(
        self, spec: SimilarityFunctionSpec
    ) -> tuple[np.ndarray, float, float]:
        """``(matrix, artifact_seconds, matrix_seconds)`` for ``spec``.

        ``artifact_seconds`` is the time spent building cache-missed
        artifacts during this call (zero on a fully warm cache);
        ``matrix_seconds`` is the remainder of the wall-clock.  The
        pairwise kernels run under this engine's ``threads`` knob,
        which never affects the produced matrix.
        """
        before = self.cache.miss_seconds
        start = time.perf_counter()
        with kernel_threads(self.threads):
            matrix = self._dispatch(spec)
        total = time.perf_counter() - start
        artifact_seconds = self.cache.miss_seconds - before
        return matrix, artifact_seconds, max(total - artifact_seconds, 0.0)

    def _dispatch(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        if spec.family == "schema_based_syntactic":
            return self._schema_based(spec)
        if spec.family == "schema_agnostic_syntactic":
            if spec.details["model"] == "vector":
                return self._vector(spec)
            return self._graph(spec)
        if spec.family == "schema_based_semantic":
            return self._semantic(spec, spec.details["attribute"])
        return self._semantic(spec, None)

    def _schema_based(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        attribute = spec.details["attribute"]
        measure = spec.details["measure"]
        batch = self.cache.string_batch(attribute)
        # Materialize the measure's shared unique-universe artifacts
        # under the cache clock so their cost is attributed to the
        # artifact stage (the batch builds them lazily either way).
        self.cache.get(("string_plan", attribute), lambda: batch.plan)
        if measure in ALIGNMENT_MEASURES or measure == "jaro":
            self.cache.get(
                ("string_unique_encoded", attribute),
                lambda: (
                    batch.unique_left_encoding,
                    batch.unique_right_encoding,
                ),
            )
        elif measure in TOKEN_MATRIX_MEASURES:
            self.cache.get(
                ("string_unique_tokens", attribute),
                lambda: batch.unique_token_sparse,
            )
        elif measure == "monge_elkan":
            self.cache.get(
                ("string_token_grid", attribute),
                lambda: batch.monge_elkan_grid,
            )
        return schema_based_matrix(batch.lefts, batch.rights, measure, batch)

    def _vector(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        measure = spec.details["measure"]
        left, right = self.cache.vector_models(
            spec.details["unit"],
            spec.details["n"],
            weighting_for_measure(measure),
        )
        return vector_measure_matrix(left, right, measure)

    def _graph(self, spec: SimilarityFunctionSpec) -> np.ndarray:
        unit, n = spec.details["unit"], spec.details["n"]
        measure = spec.details["measure"]
        sparse_left, sparse_right = self.cache.entity_graphs(unit, n)
        ratio = common = None
        if measure in ("value", "normalized_value", "overall"):
            ratio = self.cache.graph_ratio_sums(unit, n)
        if measure in ("containment", "overall"):
            common = self.cache.graph_common_edges(unit, n)
        return graph_measure_matrix(
            sparse_left, sparse_right, measure, ratio=ratio, common=common
        )

    def _semantic(
        self, spec: SimilarityFunctionSpec, attribute: str | None
    ) -> np.ndarray:
        model_name = spec.details["model"]
        measure = spec.details["measure"]
        lefts, rights = self.cache._source(attribute)
        wmd_stats = None
        if measure == "wmd":
            embeddings = self.cache.token_embeddings(model_name, attribute)
            wmd_stats = self.cache.wmd_stats(model_name, attribute)
        else:
            embeddings = self.cache.text_embeddings(model_name, attribute)
        return semantic_matrix_from_embeddings(
            lefts,
            rights,
            measure,
            embeddings[0],
            embeddings[1],
            wmd_stats=wmd_stats,
        )


@dataclass(frozen=True)
class SpecGroup:
    """A contiguous run of specs sharing their expensive artifacts."""

    key: tuple
    specs: tuple[SimilarityFunctionSpec, ...]


def group_key(spec: SimilarityFunctionSpec) -> tuple:
    """The artifact-sharing group a spec belongs to."""
    if spec.family == "schema_based_syntactic":
        return ("schema_based", spec.details["attribute"])
    if spec.family == "schema_agnostic_syntactic":
        return (
            spec.details["model"],
            spec.details["unit"],
            spec.details["n"],
        )
    if spec.family == "schema_based_semantic":
        return ("semantic", spec.details["model"], spec.details["attribute"])
    return ("semantic", spec.details["model"], None)


def group_specs(specs: list[SimilarityFunctionSpec]) -> list[SpecGroup]:
    """Partition ``specs`` into artifact-sharing groups.

    Groups keep first-seen key order and specs keep their relative
    order; because :func:`enumerate_function_specs` emits each group's
    specs contiguously, concatenating the groups reproduces the input
    order exactly — the corpus is invariant under grouping.
    """
    ordered: dict[tuple, list[SimilarityFunctionSpec]] = {}
    for spec in specs:
        ordered.setdefault(group_key(spec), []).append(spec)
    return [
        SpecGroup(key=key, specs=tuple(members))
        for key, members in ordered.items()
    ]
