"""Similarity-graph generation pipeline (Section 4 + 5 of the paper).

Turns a :class:`~repro.datasets.generator.CleanCleanDataset` into the
four families of similarity graphs the paper evaluates:

* schema-based syntactic — 16 string measures per selected attribute;
* schema-agnostic syntactic — 6 n-gram vector models x 6 measures plus
  6 n-gram graph models x 4 measures (60 functions);
* schema-based semantic — 2 embedding models x 3 measures per attribute;
* schema-agnostic semantic — 2 embedding models x 3 measures.

By default no blocking is applied: *all* entity pairs with similarity
above zero become edges, exactly as in the paper's protocol.  The
optional blocking layer (:mod:`repro.pipeline.blocking`, enabled via
``blocking=`` on the engine / corpus config) generates a deterministic
:class:`~repro.pipeline.blocking.CandidateSet` and scores only those
pairs — bit-identical values on every retained cell, but a sparse
graph.  The all-pairs computations run on the deduplicated, blocked,
thread-parallel pairwise-kernel engine
(:mod:`repro.pipeline.kernels`, consumed by
:mod:`repro.pipeline.batched_strings`), and corpus generation shares
expensive artifacts across functions (see
:mod:`repro.pipeline.engine`) — and, with an
:class:`~repro.pipeline.store.ArtifactStore` configured, across runs
and corpus configs — so the protocol stays laptop-feasible.
"""

from repro.pipeline.blocking import (
    CandidateSet,
    build_candidate_set,
    canonical_blocking,
    parse_blocking_spec,
)
from repro.pipeline.engine import (
    ArtifactCache,
    PairScores,
    SimilarityEngine,
    SpecGroup,
    group_specs,
)
from repro.pipeline.store import ArtifactStore, dataset_store_key
from repro.pipeline.kernels import SparsePlan, UniquePlan, kernel_threads
from repro.pipeline.graph_builder import matrix_to_graph, pairs_to_graph
from repro.pipeline.similarity_functions import (
    FAMILIES,
    SimilarityFunctionSpec,
    compute_similarity_matrix,
    enumerate_function_specs,
    enumerate_functions,
)
from repro.pipeline.workbench import (
    DirtyGraphRecord,
    GraphCorpusConfig,
    GraphRecord,
    generate_corpus,
    generate_dirty_corpus,
)

__all__ = [
    "FAMILIES",
    "SimilarityFunctionSpec",
    "enumerate_functions",
    "enumerate_function_specs",
    "compute_similarity_matrix",
    "matrix_to_graph",
    "pairs_to_graph",
    "CandidateSet",
    "PairScores",
    "build_candidate_set",
    "canonical_blocking",
    "parse_blocking_spec",
    "ArtifactCache",
    "ArtifactStore",
    "dataset_store_key",
    "SimilarityEngine",
    "SpecGroup",
    "group_specs",
    "GraphCorpusConfig",
    "GraphRecord",
    "generate_corpus",
    "DirtyGraphRecord",
    "generate_dirty_corpus",
    "UniquePlan",
    "SparsePlan",
    "kernel_threads",
]
