"""The similarity-function taxonomy of Section 4.

Enumerates the learning-free similarity functions of the paper's four
input families and computes their all-pairs similarity matrices on a
:class:`~repro.datasets.generator.CleanCleanDataset`:

===========================  ====================================  =====
Family                       Functions                             Count
===========================  ====================================  =====
schema-based syntactic       16 string measures x attribute        16/attr
schema-agnostic syntactic    6 vector models x 6 vector measures    36
                             6 graph models x 4 graph measures      24
schema-based semantic        2 embedding models x 3 measures        6/attr
schema-agnostic semantic     2 embedding models x 3 measures        6
===========================  ====================================  =====

(The paper's 60 schema-agnostic syntactic functions are exactly the
36 + 24 above.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.generator import CleanCleanDataset, DatasetSpec
from repro.embeddings import (
    ContextualModel,
    FastTextLikeModel,
    cosine_similarity_matrix,
    euclidean_similarity_matrix,
    word_mover_similarity_matrix,
)
from repro.ngramgraph import (
    containment_matrix,
    entity_graph_matrices,
    normalized_value_matrix,
    overall_matrix,
    value_matrix,
)
from repro.pipeline.batched_strings import schema_based_matrix
from repro.pipeline.kernels import UniquePlan
from repro.textsim.registry import SCHEMA_BASED_MEASURES
from repro.vectorspace import (
    arcs_matrix,
    build_vector_models,
    cosine_matrix,
    generalized_jaccard_matrix,
    jaccard_matrix,
)

__all__ = [
    "FAMILIES",
    "SimilarityFunctionSpec",
    "enumerate_functions",
    "enumerate_function_specs",
    "compute_similarity_matrix",
    "vector_measure_matrix",
    "graph_measure_matrix",
    "semantic_matrix_from_embeddings",
    "make_semantic_model",
    "weighting_for_measure",
]

#: The paper's four input families.
FAMILIES = (
    "schema_based_syntactic",
    "schema_agnostic_syntactic",
    "schema_based_semantic",
    "schema_agnostic_semantic",
)

#: N-gram model configurations, as in the paper: character n in
#: {2, 3, 4} and token n in {1, 2, 3}.
NGRAM_MODELS: tuple[tuple[str, int], ...] = (
    ("char", 2),
    ("char", 3),
    ("char", 4),
    ("token", 1),
    ("token", 2),
    ("token", 3),
)

VECTOR_MEASURES = (
    "arcs",
    "cosine_tf",
    "cosine_tfidf",
    "jaccard",
    "gjs_tf",
    "gjs_tfidf",
)

GRAPH_MEASURES = ("containment", "value", "normalized_value", "overall")

SEMANTIC_MODELS = ("fasttext_like", "albert_like")

SEMANTIC_MEASURES = ("cosine", "euclidean", "wmd")


@dataclass(frozen=True)
class SimilarityFunctionSpec:
    """One similarity function of the taxonomy.

    ``details`` holds the family-specific configuration: the measure
    name, the n-gram model, the embedding model, etc.
    """

    family: str
    details: dict = field(default_factory=dict, hash=False, compare=False)
    name: str = ""

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"unknown family {self.family!r}")

    @property
    def scope(self) -> str:
        """``schema_based`` or ``schema_agnostic``."""
        return (
            "schema_based"
            if self.family.startswith("schema_based")
            else "schema_agnostic"
        )

    @property
    def form(self) -> str:
        """``syntactic`` or ``semantic``."""
        return "syntactic" if self.family.endswith("syntactic") else "semantic"


def enumerate_functions(
    dataset: CleanCleanDataset,
    families: tuple[str, ...] = FAMILIES,
    schema_based_measures: tuple[str, ...] | None = None,
    ngram_models: tuple[tuple[str, int], ...] = NGRAM_MODELS,
    vector_measures: tuple[str, ...] = VECTOR_MEASURES,
    graph_measures: tuple[str, ...] = GRAPH_MEASURES,
    semantic_models: tuple[str, ...] = SEMANTIC_MODELS,
    semantic_measures: tuple[str, ...] = SEMANTIC_MEASURES,
    max_attributes: int | None = None,
) -> list[SimilarityFunctionSpec]:
    """All similarity-function specs applicable to ``dataset``."""
    return enumerate_function_specs(
        dataset.spec,
        families=families,
        schema_based_measures=schema_based_measures,
        ngram_models=ngram_models,
        vector_measures=vector_measures,
        graph_measures=graph_measures,
        semantic_models=semantic_models,
        semantic_measures=semantic_measures,
        max_attributes=max_attributes,
    )


def enumerate_function_specs(
    dataset_spec: DatasetSpec,
    families: tuple[str, ...] = FAMILIES,
    schema_based_measures: tuple[str, ...] | None = None,
    ngram_models: tuple[tuple[str, int], ...] = NGRAM_MODELS,
    vector_measures: tuple[str, ...] = VECTOR_MEASURES,
    graph_measures: tuple[str, ...] = GRAPH_MEASURES,
    semantic_models: tuple[str, ...] = SEMANTIC_MODELS,
    semantic_measures: tuple[str, ...] = SEMANTIC_MEASURES,
    max_attributes: int | None = None,
) -> list[SimilarityFunctionSpec]:
    """All similarity-function specs applicable to ``dataset_spec``.

    The schema-based families iterate the dataset's high-coverage
    attributes (``spec.schema_attributes``), exactly as the paper
    restricts schema-based settings to such attributes;
    ``max_attributes`` truncates that list for reduced-size corpora.
    Only the blueprint is needed (not the generated data), which lets
    the workbench plan work before — and without — generating datasets.
    """
    if schema_based_measures is None:
        schema_based_measures = tuple(SCHEMA_BASED_MEASURES)
    specs: list[SimilarityFunctionSpec] = []
    attributes = dataset_spec.schema_attributes
    if max_attributes is not None:
        attributes = attributes[:max_attributes]

    if "schema_based_syntactic" in families:
        for attribute in attributes:
            for measure in schema_based_measures:
                specs.append(
                    SimilarityFunctionSpec(
                        family="schema_based_syntactic",
                        details={"attribute": attribute, "measure": measure},
                        name=f"sb-syn:{attribute}:{measure}",
                    )
                )

    if "schema_agnostic_syntactic" in families:
        for unit, n in ngram_models:
            for measure in vector_measures:
                specs.append(
                    SimilarityFunctionSpec(
                        family="schema_agnostic_syntactic",
                        details={
                            "model": "vector",
                            "unit": unit,
                            "n": n,
                            "measure": measure,
                        },
                        name=f"sa-syn:vec:{unit}{n}:{measure}",
                    )
                )
            for measure in graph_measures:
                specs.append(
                    SimilarityFunctionSpec(
                        family="schema_agnostic_syntactic",
                        details={
                            "model": "graph",
                            "unit": unit,
                            "n": n,
                            "measure": measure,
                        },
                        name=f"sa-syn:gra:{unit}{n}:{measure}",
                    )
                )

    if "schema_based_semantic" in families:
        for attribute in attributes:
            for model in semantic_models:
                for measure in semantic_measures:
                    specs.append(
                        SimilarityFunctionSpec(
                            family="schema_based_semantic",
                            details={
                                "attribute": attribute,
                                "model": model,
                                "measure": measure,
                            },
                            name=f"sb-sem:{attribute}:{model}:{measure}",
                        )
                    )

    if "schema_agnostic_semantic" in families:
        for model in semantic_models:
            for measure in semantic_measures:
                specs.append(
                    SimilarityFunctionSpec(
                        family="schema_agnostic_semantic",
                        details={"model": model, "measure": measure},
                        name=f"sa-sem:{model}:{measure}",
                    )
                )
    return specs


def compute_similarity_matrix(
    dataset: CleanCleanDataset, spec: SimilarityFunctionSpec
) -> np.ndarray:
    """The all-pairs similarity matrix of ``spec`` on ``dataset``.

    This is the *direct* path: every artifact (string encodings,
    vector/graph models, embeddings) is built from scratch.  The
    engine path (:class:`repro.pipeline.engine.SimilarityEngine`)
    shares artifacts across specs and produces bit-identical matrices.
    """
    if spec.family == "schema_based_syntactic":
        lefts = dataset.left.attribute_values(spec.details["attribute"])
        rights = dataset.right.attribute_values(spec.details["attribute"])
        return schema_based_matrix(lefts, rights, spec.details["measure"])
    if spec.family == "schema_agnostic_syntactic":
        if spec.details["model"] == "vector":
            return _vector_matrix(dataset, spec)
        return _graph_model_matrix(dataset, spec)
    if spec.family == "schema_based_semantic":
        attribute = spec.details["attribute"]
        lefts = dataset.left.attribute_values(attribute)
        rights = dataset.right.attribute_values(attribute)
        return _semantic_matrix(lefts, rights, spec)
    # schema_agnostic_semantic
    return _semantic_matrix(dataset.left.texts(), dataset.right.texts(), spec)


def weighting_for_measure(measure: str) -> str:
    """The vector-model weighting a vector measure consumes."""
    return "tfidf" if measure.endswith("tfidf") else "tf"


def vector_measure_matrix(left, right, measure: str) -> np.ndarray:
    """A vector measure on prebuilt :class:`VectorModel` pairs."""
    if measure == "arcs":
        return arcs_matrix(left, right)
    if measure.startswith("cosine"):
        return cosine_matrix(left, right)
    if measure == "jaccard":
        return jaccard_matrix(left, right)
    if measure.startswith("gjs"):
        return generalized_jaccard_matrix(left, right)
    raise KeyError(f"unknown vector measure {measure!r}")


def _vector_matrix(
    dataset: CleanCleanDataset, spec: SimilarityFunctionSpec
) -> np.ndarray:
    measure = spec.details["measure"]
    left, right = build_vector_models(
        dataset.left.texts(),
        dataset.right.texts(),
        n=spec.details["n"],
        unit=spec.details["unit"],
        weighting=weighting_for_measure(measure),
    )
    return vector_measure_matrix(left, right, measure)


def graph_measure_matrix(
    sparse_left,
    sparse_right,
    measure: str,
    ratio: np.ndarray | None = None,
    common: np.ndarray | None = None,
) -> np.ndarray:
    """A graph measure on prebuilt sparse entity-graph matrices.

    ``ratio`` / ``common`` optionally supply the pairwise ratio-sum and
    common-edge intermediates shared by Value/NormValue/Overall and
    Containment/Overall respectively.
    """
    if measure == "containment":
        return containment_matrix(sparse_left, sparse_right, common=common)
    if measure == "value":
        return value_matrix(sparse_left, sparse_right, ratio=ratio)
    if measure == "normalized_value":
        return normalized_value_matrix(
            sparse_left, sparse_right, ratio=ratio
        )
    if measure == "overall":
        return overall_matrix(
            sparse_left, sparse_right, ratio=ratio, common=common
        )
    raise KeyError(f"unknown graph measure {measure!r}")


def _graph_model_matrix(
    dataset: CleanCleanDataset, spec: SimilarityFunctionSpec
) -> np.ndarray:
    sparse_left, sparse_right = entity_graph_matrices(
        dataset.left.value_lists(),
        dataset.right.value_lists(),
        n=spec.details["n"],
        unit=spec.details["unit"],
    )
    return graph_measure_matrix(sparse_left, sparse_right, spec.details["measure"])


def make_semantic_model(name: str):
    """Instantiate a semantic model of the taxonomy by name."""
    if name == "fasttext_like":
        return FastTextLikeModel()
    if name == "albert_like":
        return ContextualModel()
    raise KeyError(f"unknown semantic model {name!r}")


def semantic_matrix_from_embeddings(
    lefts: list[str],
    rights: list[str],
    measure: str,
    embeddings_left,
    embeddings_right,
    wmd_stats=None,
) -> np.ndarray:
    """A semantic measure on precomputed embeddings.

    ``embeddings_*`` are stacked text embeddings (arrays) for
    ``cosine``/``euclidean`` and per-text token-embedding matrices
    (lists of arrays) for ``wmd``.  ``lefts``/``rights`` are the source
    strings, needed for the empty-evidence convention.  ``wmd_stats``
    optionally carries the two per-text statistics lists of
    :func:`repro.embeddings.wmd.token_stats` for the ``wmd`` measure.

    The ``wmd`` measure routes through a
    :class:`~repro.pipeline.kernels.UniquePlan` over the source
    strings: duplicated texts have identical (deterministic) token
    embeddings, so each unique text pair is evaluated once and the
    result is scattered back — bit-identical to the full pair loop.
    """
    if measure == "wmd":
        stats_left, stats_right = (
            wmd_stats if wmd_stats is not None else (None, None)
        )
        plan = UniquePlan.build(lefts, rights)
        unique = word_mover_similarity_matrix(
            [embeddings_left[i] for i in plan.left_index],
            [embeddings_right[j] for j in plan.right_index],
            stats_left=(
                None
                if stats_left is None
                else [stats_left[i] for i in plan.left_index]
            ),
            stats_right=(
                None
                if stats_right is None
                else [stats_right[j] for j in plan.right_index]
            ),
        )
        result = plan.expand(unique)
    elif measure == "cosine":
        result = cosine_similarity_matrix(embeddings_left, embeddings_right)
    elif measure == "euclidean":
        result = euclidean_similarity_matrix(
            embeddings_left, embeddings_right
        )
    else:
        raise KeyError(f"unknown semantic measure {measure!r}")
    # No evidence for pairs with an empty side (mirrors the builder
    # convention of the syntactic families).
    left_empty = np.array([not text for text in lefts], dtype=bool)
    right_empty = np.array([not text for text in rights], dtype=bool)
    result[left_empty, :] = 0.0
    result[:, right_empty] = 0.0
    return result


def _semantic_matrix(
    lefts: list[str], rights: list[str], spec: SimilarityFunctionSpec
) -> np.ndarray:
    model = make_semantic_model(spec.details["model"])
    measure = spec.details["measure"]
    if measure == "wmd":
        embeddings_left = [model.embed_tokens(text) for text in lefts]
        embeddings_right = [model.embed_tokens(text) for text in rights]
    else:
        embeddings_left = model.embed_texts(lefts)
        embeddings_right = model.embed_texts(rights)
    return semantic_matrix_from_embeddings(
        lefts, rights, measure, embeddings_left, embeddings_right
    )
