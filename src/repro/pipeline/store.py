"""Persistent, content-addressed artifact store.

:class:`~repro.pipeline.engine.ArtifactCache` memoizes the expensive
per-dataset intermediates of corpus generation — embeddings, token
matrices, entity graphs — for the lifetime of *one* run.  Two corpus
configs that share a dataset (same code, scale, ``max_pairs``, seed)
still rebuilt every one of them from scratch.  :class:`ArtifactStore`
extends the cache across runs: artifacts are written to a versioned
on-disk layout and any later run over the same generated dataset loads
them instead of rebuilding.

Layout and keys
---------------
Every entry is a pair of files in one flat directory::

    <root>/<key>.npz    # the artifact payload (numpy arrays only)
    <root>/<key>.json   # the entry manifest (commit marker)

``<key>`` is a BLAKE2b hash of the canonical JSON encoding of
``(dataset code, scale, max_pairs, seed, artifact kind, artifact
params)`` — everything that determines the artifact's content, and
nothing that does not (worker counts, store paths and corpus grouping
never enter the key).  The manifest stamps each entry with
``schema_version`` (the store's serialization format) and
``repro_version`` (the package version); an entry whose stamps do not
match the running code is treated as a miss and deleted, so format or
algorithm changes can never resurrect stale intermediates.

Concurrency
-----------
Writes are atomic (temp file in the store directory + ``os.replace``)
and **write-once**: the payload lands first, the manifest second, and
an entry only exists once its manifest does.  Concurrent writers of
the same key — e.g. the process-parallel corpus workers — race
harmlessly: whoever commits first wins and later writers discard their
work (the artifacts are deterministic, so every racer holds the same
value).  Readers that observe a payload without a manifest simply see
a miss; they never delete the in-flight file.

Size budget
-----------
:meth:`ArtifactStore.gc` evicts least-recently-used entries (manifest
mtime, refreshed on every load) until the store fits a byte budget;
a store constructed with ``size_budget`` enforces it after every
write.  :meth:`ArtifactStore.purge` empties the store.

Corruption and quarantine
-------------------------
A committed entry can still rot after the fact — a torn write on a
dying disk, bit flips, an interrupted copy of the store directory.
Reads detect this (an unparseable manifest, a payload that no longer
decodes) and **quarantine** the entry: both files move to
``<root>/quarantine/`` — aside, not deleted — the load reports a
miss, and the caller rebuilds and recommits under the same key.
Quarantined files are never consulted again (no retry-loop on known-
bad bytes) but are kept for inspection; ``repro store ls`` surfaces
their count, ``purge`` clears them, and ``gc`` sweeps quarantined
files older than the stray grace period so the corner cannot grow
without bound.  Version-stamp mismatches are *staleness*, not
corruption: those entries are deleted outright, exactly as before.

Read-only tier
--------------
A store constructed with ``read_tier=PATH`` layers a **shared
read-only tier** under the writable root: a load that misses locally
is retried against the tier, and a tier hit **never writes upward** —
no recency ``utime``, no stale-entry deletion, no copy into the local
root (the in-memory :class:`~repro.pipeline.engine.ArtifactCache`
absorbs repeat reads within a run).  A stale or corrupt tier entry is
simply a miss: the tier may live on media this process cannot (and
must not) modify, e.g. a CI cache directory seeded by earlier runs.
All writes, gc and purge operate on the local root only.

Serialization is strictly ``npz``/JSON — no pickles.  Only artifact
kinds with a registered codec persist (see :data:`STORE_KINDS`); all
of them round-trip **bit-identically**, which is what keeps a corpus
generated from a warm store equal, bit for bit, to a cold one
(``tests/pipeline/test_store.py`` asserts this end to end).
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

import numpy as np
from scipy import sparse

__all__ = [
    "ArtifactStore",
    "StoreEntry",
    "SCHEMA_VERSION",
    "STORE_KINDS",
    "dataset_store_key",
    "parse_size_budget",
]

#: Version of the on-disk serialization format.  Bump whenever a codec
#: changes shape or meaning; every existing entry is then invalidated
#: on first contact.
SCHEMA_VERSION = 1

#: Subdirectory of the store root holding corrupt entries that were
#: moved aside on read (see "Corruption and quarantine" above).  The
#: maintenance scans all glob the flat root, so quarantined files are
#: structurally invisible to loads, ``entries()`` and eviction.
_QUARANTINE_DIR = "quarantine"

#: Grace period before gc/purge may sweep uncommitted files (stray
#: temp files and payloads without a manifest).  Younger ones may be
#: a live writer's in-flight commit — deleting them would crash its
#: ``os.replace`` or orphan its manifest.
_STRAY_GRACE_SECONDS = 3600.0


def _repro_version() -> str:
    from repro import __version__

    return __version__


def dataset_store_key(
    code: str,
    scale: float | None,
    max_pairs: int | None,
    seed: int,
) -> tuple:
    """The dataset-identity half of a store key.

    These four knobs fully determine a generated dataset (see
    :func:`repro.datasets.generator.generate_dataset`), hence every
    artifact derived from it.  ``None`` scale/max_pairs are resolved
    to the catalog's environment-driven defaults *here*: two runs
    under different ``REPRO_SCALE``/``REPRO_MAX_PAIRS`` settings
    generate different datasets and must never share a key.
    """
    from repro.datasets.catalog import default_max_pairs, default_scale

    if scale is None:
        scale = default_scale()
    if max_pairs is None:
        max_pairs = default_max_pairs()
    # dataset_spec lowercases the code, so case variants generate the
    # same dataset and must share a key.
    return (code.lower(), float(scale), int(max_pairs), seed)


def parse_size_budget(text: str | int | None) -> int | None:
    """A byte count from ``"500K"`` / ``"64M"`` / ``"2G"`` / plain int."""
    if text is None:
        return None
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"size budget must be >= 0: {text!r}")
        return text
    raw = text.strip().upper()
    units = {"K": 1024, "M": 1024**2, "G": 1024**3, "B": 1}
    factor = 1
    if raw and raw[-1] in units:
        factor = units[raw[-1]]
        raw = raw[:-1]
    try:
        nbytes = int(float(raw) * factor)
    except ValueError:
        raise ValueError(f"unparseable size budget: {text!r}") from None
    if nbytes < 0:
        # A negative budget would evict everything — that's purge's
        # job, and a likely typo here.
        raise ValueError(f"size budget must be >= 0: {text!r}")
    return nbytes


# ----------------------------------------------------------------------
# Codecs: artifact value <-> flat dict of numpy arrays
# ----------------------------------------------------------------------
def _encode_csr(prefix: str, matrix: sparse.csr_matrix) -> dict:
    return {
        f"{prefix}_data": matrix.data,
        f"{prefix}_indices": matrix.indices,
        f"{prefix}_indptr": matrix.indptr,
        f"{prefix}_shape": np.asarray(matrix.shape, dtype=np.int64),
    }


def _decode_csr(prefix: str, arrays) -> sparse.csr_matrix:
    return sparse.csr_matrix(
        (
            arrays[f"{prefix}_data"],
            arrays[f"{prefix}_indices"],
            arrays[f"{prefix}_indptr"],
        ),
        shape=tuple(arrays[f"{prefix}_shape"]),
    )


def _encode_ragged(prefix: str, matrices: list[np.ndarray]) -> dict:
    """A list of per-item arrays as one stack plus row lengths."""
    lengths = np.asarray(
        [matrix.shape[0] for matrix in matrices], dtype=np.int64
    )
    return {
        f"{prefix}_stack": np.concatenate(matrices, axis=0),
        f"{prefix}_lengths": lengths,
    }


def _decode_ragged(prefix: str, arrays) -> list[np.ndarray]:
    lengths = arrays[f"{prefix}_lengths"]
    splits = np.cumsum(lengths)[:-1]
    return [
        np.ascontiguousarray(part)
        for part in np.split(arrays[f"{prefix}_stack"], splits, axis=0)
    ]


class _CsrPairCodec:
    """``(csr_left, csr_right)`` — entity graphs, unique token counts."""

    def encode(self, value) -> dict:
        left, right = value
        return {**_encode_csr("left", left), **_encode_csr("right", right)}

    def decode(self, arrays):
        return _decode_csr("left", arrays), _decode_csr("right", arrays)


class _ArrayCodec:
    """A single dense array — graph ratio sums, common-edge counts."""

    def encode(self, value) -> dict:
        return {"array": np.asarray(value)}

    def decode(self, arrays):
        return arrays["array"]


class _ArrayPairCodec:
    """``(array_left, array_right)`` — stacked text embeddings."""

    def encode(self, value) -> dict:
        left, right = value
        return {"left": np.asarray(left), "right": np.asarray(right)}

    def decode(self, arrays):
        return arrays["left"], arrays["right"]


class _RaggedPairCodec:
    """Two lists of per-text matrices — token embeddings."""

    def encode(self, value) -> dict:
        left, right = value
        return {**_encode_ragged("left", left), **_encode_ragged("right", right)}

    def decode(self, arrays):
        return _decode_ragged("left", arrays), _decode_ragged("right", arrays)


class _EncodingPairCodec:
    """``((codes, lengths), (codes, lengths))`` — unique string encodings."""

    def encode(self, value) -> dict:
        (codes_left, lengths_left), (codes_right, lengths_right) = value
        return {
            "left_codes": codes_left,
            "left_lengths": lengths_left,
            "right_codes": codes_right,
            "right_lengths": lengths_right,
        }

    def decode(self, arrays):
        return (
            (arrays["left_codes"], arrays["left_lengths"]),
            (arrays["right_codes"], arrays["right_lengths"]),
        )


class _VectorModelPairCodec:
    """``(VectorModel, VectorModel)`` with their shared vocabulary.

    The vocabulary dict always maps gram -> dense insertion index (see
    :func:`repro.vectorspace.build_profile_space`), so storing the
    grams in index order loses nothing; decoding rebuilds one dict
    shared by both sides, mirroring construction.
    """

    def encode(self, value) -> dict:
        left, right = value
        grams = np.asarray(list(left.vocabulary), dtype=np.str_)
        return {
            "vocabulary": grams,
            "left_df": left.document_frequency,
            "right_df": right.document_frequency,
            **_encode_csr("left_matrix", left.matrix),
            **_encode_csr("left_binary", left.binary),
            **_encode_csr("right_matrix", right.matrix),
            **_encode_csr("right_binary", right.binary),
        }

    def decode(self, arrays):
        from repro.vectorspace import VectorModel

        vocabulary = {
            str(gram): index
            for index, gram in enumerate(arrays["vocabulary"])
        }
        left = VectorModel(
            matrix=_decode_csr("left_matrix", arrays),
            binary=_decode_csr("left_binary", arrays),
            document_frequency=arrays["left_df"],
            vocabulary=vocabulary,
        )
        right = VectorModel(
            matrix=_decode_csr("right_matrix", arrays),
            binary=_decode_csr("right_binary", arrays),
            document_frequency=arrays["right_df"],
            vocabulary=vocabulary,
        )
        return left, right


class _MongeElkanGridCodec:
    """``(ids_left, ids_right, grid)`` — the unique-token SW grid."""

    def encode(self, value) -> dict:
        ids_left, ids_right, grid = value
        return {
            "grid": grid,
            **_encode_ragged("left_ids", [row[:, None] for row in ids_left]),
            **_encode_ragged("right_ids", [row[:, None] for row in ids_right]),
        }

    def decode(self, arrays):
        ids_left = [
            np.ascontiguousarray(part[:, 0])
            for part in _decode_ragged("left_ids", arrays)
        ]
        ids_right = [
            np.ascontiguousarray(part[:, 0])
            for part in _decode_ragged("right_ids", arrays)
        ]
        return ids_left, ids_right, arrays["grid"]


class _CandidateSetCodec:
    """:class:`~repro.pipeline.blocking.CandidateSet` — blocking output."""

    def encode(self, value) -> dict:
        stats_keys = np.asarray([k for k, _ in value.stats], dtype=np.str_)
        stats_values = np.asarray(
            [v for _, v in value.stats], dtype=np.int64
        )
        return {
            "shape": np.asarray([value.n_left, value.n_right], dtype=np.int64),
            "scheme": np.asarray([value.scheme], dtype=np.str_),
            "left": np.asarray(value.left, dtype=np.int64),
            "right": np.asarray(value.right, dtype=np.int64),
            "stats_keys": stats_keys,
            "stats_values": stats_values,
        }

    def decode(self, arrays):
        from repro.pipeline.blocking import CandidateSet

        stats = tuple(
            (str(key), int(count))
            for key, count in zip(arrays["stats_keys"], arrays["stats_values"])
        )
        return CandidateSet(
            n_left=int(arrays["shape"][0]),
            n_right=int(arrays["shape"][1]),
            scheme=str(arrays["scheme"][0]),
            left=arrays["left"].astype(np.intp),
            right=arrays["right"].astype(np.intp),
            stats=stats,
        )


class _ScoreShardCodec:
    """``(left, right, values)`` — one shard's spilled raw edges.

    Stored uncompressed (``compress = False``): shard spills are
    written once and read back immediately by the merge, so the
    deflate pass would cost more than the disk bytes it saves, and an
    uncompressed npz member can be extracted as a view by
    ``np.load(..., mmap_mode="r")``.
    """

    compress = False

    def encode(self, value) -> dict:
        left, right, values = value
        return {
            "left": np.asarray(left, dtype=np.int64),
            "right": np.asarray(right, dtype=np.int64),
            "values": np.asarray(values, dtype=np.float64),
        }

    def decode(self, arrays):
        return arrays["left"], arrays["right"], arrays["values"]


#: Artifact kind (the first element of an ``ArtifactCache`` key) ->
#: codec.  Only these kinds persist; everything else — cheap derived
#: state, live model objects — stays in-memory per run.
STORE_KINDS = {
    "entity_graphs": _CsrPairCodec(),
    "graph_ratio": _ArrayCodec(),
    "graph_common": _ArrayCodec(),
    "vector_model": _VectorModelPairCodec(),
    "token_embeddings": _RaggedPairCodec(),
    "text_embeddings": _ArrayPairCodec(),
    "string_unique_encoded": _EncodingPairCodec(),
    "string_unique_tokens": _CsrPairCodec(),
    "string_token_grid": _MongeElkanGridCodec(),
    "candidate_set": _CandidateSetCodec(),
    "score_shard": _ScoreShardCodec(),
}


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreEntry:
    """One committed store entry, as reported by :meth:`ArtifactStore.entries`."""

    key: str
    kind: str
    dataset: str
    params: tuple
    nbytes: int
    last_used: float
    created: float
    schema_version: int
    repro_version: str

    @property
    def stale(self) -> bool:
        """True when the entry's version stamps no longer match."""
        return (
            self.schema_version != SCHEMA_VERSION
            or self.repro_version != _repro_version()
        )


class ArtifactStore:
    """Persistent cross-run artifact store rooted at a directory.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    size_budget:
        Optional byte budget (int or ``"500K"``/``"64M"``/``"2G"``)
        enforced by LRU eviction after every committed write.
    read_tier:
        Optional shared read-only tier (a directory or another
        :class:`ArtifactStore`) consulted on local misses.  Tier hits
        never modify the tier or the local root; writes always go to
        ``root``.
    """

    def __init__(
        self,
        root: str | Path,
        size_budget: str | int | None = None,
        read_tier: "str | Path | ArtifactStore | None" = None,
    ) -> None:
        self.root = Path(root)
        self.size_budget = parse_size_budget(size_budget)
        if read_tier is None or isinstance(read_tier, ArtifactStore):
            self.read_tier = read_tier
        else:
            self.read_tier = ArtifactStore(read_tier)
        # Running byte estimate for the post-write budget trigger;
        # None = unknown (resolved by one directory scan on demand).
        self._tracked_bytes: int | None = None

    # ------------------------------------------------------------ keys
    def entry_key(self, dataset_key: tuple, cache_key: tuple) -> str:
        """Content hash of ``(dataset identity, kind, params)``."""
        kind, params = cache_key[0], list(cache_key[1:])
        payload = json.dumps(
            {"dataset": list(dataset_key), "kind": kind, "params": params},
            sort_keys=True,
        )
        import hashlib

        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=16
        ).hexdigest()

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.root / f"{key}.npz", self.root / f"{key}.json"

    # ------------------------------------------------------------ load
    def load(self, dataset_key: tuple, cache_key: tuple):
        """The stored artifact, or ``None`` on miss.

        In the local root, a corrupted payload or a version-stamp
        mismatch deletes the entry and reports a miss — the caller
        rebuilds and the rebuild overwrites the dead entry.  A local
        miss then consults the read-only tier (when configured), where
        the same conditions are a plain miss: the tier is never
        touched, in any way, by a load.
        """
        kind = cache_key[0]
        codec = STORE_KINDS.get(kind)
        if codec is None:
            return None
        key = self.entry_key(dataset_key, cache_key)
        value = self._load_entry(codec, key, mutate=True)
        if value is None and self.read_tier is not None:
            value = self.read_tier._load_entry(codec, key, mutate=False)
        return value

    def _load_entry(self, codec, key: str, mutate: bool):
        """One directory's half of :meth:`load`.

        ``mutate=False`` is the read-only-tier discipline: no recency
        ``utime``, and stale or corrupt entries are left in place (the
        directory may not be writable, and it is not ours to clean).
        """
        payload_path, manifest_path = self._paths(key)
        try:
            manifest = json.loads(manifest_path.read_text())
        except OSError:
            return None  # not committed (or mid-commit) — never delete
        except json.JSONDecodeError:
            # Manifest writes are atomic, so a present-but-unparseable
            # manifest is corruption (not an in-flight commit): a
            # wedged entry that save() would refuse forever.
            if mutate:
                self._quarantine(key)
            return None
        if (
            manifest.get("schema_version") != SCHEMA_VERSION
            or manifest.get("repro_version") != _repro_version()
        ):
            if mutate:
                self._remove(key)
            return None
        try:
            with np.load(payload_path, allow_pickle=False) as bundle:
                value = codec.decode(bundle)
        except Exception:
            # Truncated/undecodable payload, or a manifest whose
            # payload vanished: corruption, not staleness — move the
            # entry aside so the rebuild recommits cleanly and the
            # bad bytes are never read again.
            if mutate:
                self._quarantine(key)
            return None
        if mutate:
            now = time.time()
            try:
                os.utime(manifest_path, (now, now))  # LRU recency
            except OSError:
                pass
        return value

    # ------------------------------------------------------------ save
    def save(self, dataset_key: tuple, cache_key: tuple, value) -> bool:
        """Commit ``value`` under its content key; atomic, write-once.

        Returns ``False`` without writing when the entry already
        exists (the concurrent-writer "loser discards" path) or when
        the kind has no codec.
        """
        kind = cache_key[0]
        codec = STORE_KINDS.get(kind)
        if codec is None:
            return False
        key = self.entry_key(dataset_key, cache_key)
        payload_path, manifest_path = self._paths(key)
        if manifest_path.exists():
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        arrays = codec.encode(value)
        compress = getattr(codec, "compress", True)
        self._atomic_write_npz(payload_path, arrays, compress=compress)
        manifest = {
            "schema_version": SCHEMA_VERSION,
            "repro_version": _repro_version(),
            "dataset": list(dataset_key),
            "kind": kind,
            "params": list(cache_key[1:]),
            "nbytes": payload_path.stat().st_size,
            "created": time.time(),
        }
        self._atomic_write_text(manifest_path, json.dumps(manifest))
        if self.size_budget is not None:
            # Amortized enforcement: track the byte total incrementally
            # (one directory scan to seed it) and run the full gc scan
            # only when the estimate crosses the budget — not after
            # every write.  Concurrent writers can make the estimate
            # stale; that only delays a trigger, never skips one for
            # this store's own writes.
            entry_bytes = manifest["nbytes"] + manifest_path.stat().st_size
            if self._tracked_bytes is None:
                self._tracked_bytes = self.total_bytes()
            else:
                self._tracked_bytes += entry_bytes
            if self._tracked_bytes > self.size_budget:
                self.gc(self.size_budget)
                self._tracked_bytes = None  # rescan lazily next time
        return True

    def _tmp_path(self, target: Path) -> Path:
        return target.with_name(
            f"{target.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )

    def _atomic_write_npz(
        self, target: Path, arrays: dict, compress: bool = True
    ) -> None:
        tmp = self._tmp_path(target)
        writer = np.savez_compressed if compress else np.savez
        try:
            with open(tmp, "wb") as handle:
                writer(handle, **arrays)
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)

    def _atomic_write_text(self, target: Path, text: str) -> None:
        tmp = self._tmp_path(target)
        try:
            tmp.write_text(text)
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)

    # ------------------------------------------------------ quarantine
    @property
    def quarantine_root(self) -> Path:
        return self.root / _QUARANTINE_DIR

    def _quarantine(self, key: str) -> bool:
        """Move a corrupt entry aside; ``True`` when it left the root.

        The manifest moves first (uncommitting the entry, so a
        concurrent reader can never see a quarantined payload behind a
        live manifest).  A same-key re-corruption overwrites the
        previous quarantined files — one corpse per key is plenty.
        Falls back to plain removal when the quarantine directory
        cannot be created (e.g. a read-only root reached via a bug):
        the store must never retry-loop on bad bytes.
        """
        payload_path, manifest_path = self._paths(key)
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return self._remove(key)
        moved = False
        for path in (manifest_path, payload_path):
            try:
                if path.exists():
                    os.replace(path, self.quarantine_root / path.name)
                    moved = True
            except OSError:
                # Cross-device or permission trouble: delete instead
                # of leaving the corrupt file live.
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
        return moved

    def quarantined(self) -> list[Path]:
        """Quarantined files, oldest first."""
        if not self.quarantine_root.is_dir():
            return []
        return sorted(
            (p for p in self.quarantine_root.iterdir() if p.is_file()),
            key=lambda p: p.name,
        )

    def quarantine_counts(self) -> tuple[int, int]:
        """``(entry count, total bytes)`` of the quarantine corner.

        Entries are counted by distinct key (one manifest + payload
        pair counts once).
        """
        files = self.quarantined()
        nbytes = 0
        keys = set()
        for path in files:
            keys.add(path.stem)
            try:
                nbytes += path.stat().st_size
            except OSError:
                pass
        return len(keys), nbytes

    # ------------------------------------------------------ maintenance
    def entries(self) -> list[StoreEntry]:
        """All committed entries, most recently used first."""
        found = []
        for manifest_path in sorted(self.root.glob("*.json")):
            key = manifest_path.stem
            payload_path = self.root / f"{key}.npz"
            try:
                manifest = json.loads(manifest_path.read_text())
                stat = manifest_path.stat()
                payload_bytes = payload_path.stat().st_size
            except (OSError, json.JSONDecodeError):
                continue
            found.append(
                StoreEntry(
                    key=key,
                    kind=manifest.get("kind", "?"),
                    dataset=str((manifest.get("dataset") or ["?"])[0]),
                    params=tuple(manifest.get("params", ())),
                    nbytes=payload_bytes + stat.st_size,
                    last_used=stat.st_mtime,
                    created=manifest.get("created", stat.st_mtime),
                    schema_version=manifest.get("schema_version", -1),
                    repro_version=manifest.get("repro_version", "?"),
                )
            )
        found.sort(key=lambda entry: entry.last_used, reverse=True)
        return found

    def total_bytes(self) -> int:
        """Total committed payload + manifest bytes."""
        return sum(entry.nbytes for entry in self.entries())

    def gc(self, size_budget: str | int | None = None) -> list[StoreEntry]:
        """Evict stale entries, then LRU entries beyond the budget.

        Returns the evicted entries.  With no budget (and none set on
        the store), only stale entries and abandoned uncommitted files
        go.
        """
        budget = parse_size_budget(size_budget)
        if budget is None:
            budget = self.size_budget
        evicted = []
        kept_bytes = 0
        evicting = False
        for entry in self.entries():  # most recently used first
            # Strict LRU: once one entry overflows the budget, every
            # colder entry goes too — a colder entry must never
            # survive a hotter one's eviction just because it is
            # smaller.
            over = budget is not None and (
                evicting or kept_bytes + entry.nbytes > budget
            )
            if entry.stale or over:
                evicting = evicting or over
                if self._remove(entry.key):
                    evicted.append(entry)
            else:
                kept_bytes += entry.nbytes
        self._sweep_uncommitted()
        return evicted

    def purge(self) -> int:
        """Delete every committed entry; returns the count.

        Abandoned uncommitted files (strays older than the grace
        period) are swept too — younger in-flight writes are left for
        their writer — and the quarantine corner is emptied.
        """
        count = 0
        for entry in self.entries():
            if self._remove(entry.key):
                count += 1
        self._sweep_uncommitted()
        for path in self.quarantined():
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        return count

    def _sweep_uncommitted(self) -> None:
        """Remove abandoned temp files and manifest-less payloads.

        Both are uncommitted state — a crashed writer's leftovers —
        but a *live* writer's files look exactly the same, so only
        files past the grace period are swept (a commit takes
        milliseconds, the grace period is an hour).
        """
        deadline = time.time() - _STRAY_GRACE_SECONDS
        for stray in self.root.glob("*.tmp-*"):
            try:
                if stray.stat().st_mtime < deadline:
                    stray.unlink(missing_ok=True)
            except OSError:
                pass
        for manifest_path in self.root.glob("*.json"):
            # A committed manifest that no longer parses is a wedged
            # entry (entries() cannot even list it); reclaim it and
            # its payload once past the grace period.
            try:
                if manifest_path.stat().st_mtime >= deadline:
                    continue
                json.loads(manifest_path.read_text())
            except json.JSONDecodeError:
                self._remove(manifest_path.stem)
            except OSError:
                pass
        for payload in self.root.glob("*.npz"):
            try:
                orphaned = not payload.with_suffix(".json").exists()
                if orphaned and payload.stat().st_mtime < deadline:
                    payload.unlink(missing_ok=True)
            except OSError:
                pass
        for corpse in self.quarantined():
            # Quarantined files are kept for inspection, but only for
            # the grace period — gc bounds the corner's growth.
            try:
                if corpse.stat().st_mtime < deadline:
                    corpse.unlink(missing_ok=True)
            except OSError:
                pass

    def _remove(self, key: str) -> bool:
        """Best-effort entry removal; ``True`` when it disappeared.

        Deletion can fail on a store the process cannot write to
        (e.g. a shared read-only tier); callers treat that as "entry
        stays" — the store must never kill a run over cleanup.
        """
        payload_path, manifest_path = self._paths(key)
        try:
            manifest_path.unlink(missing_ok=True)  # uncommit first
            payload_path.unlink(missing_ok=True)
        except OSError:
            return False
        return True
