"""Fault-tolerant execution layer: resilient fan-out + run journal.

Every long multi-process job in the stack — corpus generation, the
matching sweeps, the dirty-ER sweeps, the CLI sweep command and the
corpus-cache write path — fans work out over a pool.  Before this
module each of those sites assumed workers never hang, crash or return
garbage, and an interrupted run lost all completed work.
:class:`ResilientPool` is the one shared runner they all sit on now;
it adds, without changing any result:

* **per-task deadlines** (:attr:`RetryPolicy.deadline_seconds`): a
  task observed running past its deadline is abandoned together with
  its (possibly wedged) pool, the pool is respawned, and the task is
  retried like any other failure;
* **bounded retries with exponential backoff + jitter**: a failed
  task is resubmitted up to :attr:`RetryPolicy.max_retries` times,
  waiting ``backoff_seconds * backoff_multiplier**(attempt-1)``
  (scaled by a deterministic, seeded jitter) between attempts;
* **broken-pool recovery**: a :class:`BrokenProcessPool` (a worker
  OOM-killed or crashed hard) respawns the pool and resubmits only
  the unfinished tasks — completed results are never recomputed;
* **graceful degradation**: after
  :attr:`RetryPolicy.max_pool_failures` pool deaths the remaining
  tasks run *inline, serially, in the parent* (with a warning), so a
  run always completes when the tasks themselves can;
* **journaling**: with a :class:`RunJournal` attached, every
  completed task's result is committed to disk (atomic temp+rename,
  the same discipline as :class:`~repro.pipeline.store.ArtifactStore`)
  the moment it lands, and a later run over the same journal skips
  the finished tasks entirely — resumed results are bit-identical to
  an uninterrupted run because the per-task outputs round-trip
  exactly (``repro corpus|sweep|experiments|dirty-er --resume``).

Failure reporting
-----------------
A task that exhausts its retries does not take the run down silently:
pending (not yet started) tasks are cancelled, already-running tasks
are drained (their results still journal), and a single
:class:`ResilienceError` is raised naming every failed task key, so
the caller knows exactly which graph / sweep cell died.

Fault injection
---------------
The task wrapper consults :mod:`repro.testing.faults` before running
the payload, so the deterministic, environment-driven injectors (kill
the worker, delay past the deadline, raise) exercise every recovery
path above from the real process topology.  With no faults configured
the hook is a single dictionary lookup.

Determinism
-----------
Results are assembled on the caller's task order, retries re-run pure
functions, and the jitter RNG is seeded per pool — so for any worker
count, any interleaving of failures and any resume point, a run that
completes returns exactly what a serial, failure-free run returns.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import time
import uuid
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "JournalCodec",
    "ResilienceError",
    "ResilientPool",
    "RetryPolicy",
    "RunJournal",
    "Task",
    "TaskFailure",
    "default_journal_dir",
]

#: Version of the on-disk journal entry format; bump to invalidate
#: every existing journal entry on first contact.
JOURNAL_VERSION = 1

_ENTRY_MARKER = "_entry.json"


def default_journal_dir() -> Path:
    """Journal root under the cache directory (``REPRO_CACHE``)."""
    return Path(os.environ.get("REPRO_CACHE", ".repro_cache")) / "journal"


@dataclass(frozen=True)
class RetryPolicy:
    """Failure-handling knobs of a :class:`ResilientPool`.

    The defaults are documented in ``docs/RESILIENCE.md`` (the doc is
    drift-checked against this class by ``tests/test_docs.py``).
    """

    #: Retries per task after the first attempt (attempts = retries+1).
    max_retries: int = 2
    #: Base backoff before the first retry.
    backoff_seconds: float = 0.05
    #: Backoff growth factor per further retry.
    backoff_multiplier: float = 2.0
    #: Jitter fraction: each wait is scaled by ``1 + jitter * u`` with
    #: ``u`` drawn from the pool's seeded RNG (deterministic per run).
    backoff_jitter: float = 0.25
    #: Per-task wall-clock deadline, measured from the moment the task
    #: is observed running in a worker.  ``None`` disables deadlines.
    deadline_seconds: float | None = None
    #: Pool deaths tolerated before degrading to inline serial
    #: execution in the parent.
    max_pool_failures: int = 3
    #: Completion/deadline poll interval of the pooled driver.
    poll_seconds: float = 0.05

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Wait before retry ``attempt`` (1-based), jittered."""
        base = self.backoff_seconds * (
            self.backoff_multiplier ** max(attempt - 1, 0)
        )
        return base * (1.0 + self.backoff_jitter * rng.random())


DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class Task:
    """One unit of fan-out work.

    ``key`` identifies the task for journaling, retry bookkeeping and
    failure reporting; it must be unique within a run and stable
    across runs (resume matches on it).  ``fn`` must be a module-level
    callable (process pools pickle it by reference).
    """

    key: str
    fn: Callable
    args: tuple = ()


@dataclass(frozen=True)
class TaskFailure:
    """One permanently failed task, as reported by :class:`ResilienceError`."""

    key: str
    attempts: int
    error: str
    kind: str  # "error" | "timeout" | "pool"


class ResilienceError(RuntimeError):
    """Raised when tasks fail permanently; names every failed key."""

    def __init__(
        self,
        failures: list[TaskFailure],
        cancelled: list[str],
        completed: int,
    ) -> None:
        self.failures = list(failures)
        self.cancelled = list(cancelled)
        self.completed = completed
        lines = [
            f"{len(failures)} task(s) failed permanently "
            f"({completed} completed, {len(cancelled)} cancelled):"
        ]
        lines += [
            f"  - {f.key}: {f.kind} after {f.attempts} attempt(s): {f.error}"
            for f in failures
        ]
        if cancelled:
            lines.append(f"  cancelled: {', '.join(sorted(cancelled))}")
        super().__init__("\n".join(lines))


# ----------------------------------------------------------------------
# Run journal
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JournalCodec:
    """How one task result is written to / read from an entry directory."""

    write: Callable[[Any, Path], None]
    read: Callable[[Path], Any]


class RunJournal:
    """Content-keyed record of a run's completed tasks.

    One directory per run (``<root>/<run-id>/``), one subdirectory per
    completed task.  Commits follow the
    :class:`~repro.pipeline.store.ArtifactStore` discipline: the entry
    is staged in a temp directory, its ``_entry.json`` marker (which
    stamps the task key and :data:`JOURNAL_VERSION`) is written last,
    and one atomic ``os.replace`` publishes the whole directory —
    a crash mid-commit leaves only an invisible temp dir, never a
    half-entry.  Commits are write-once: a racing loser discards.

    The journal holds *results*, not progress: an entry is only ever
    written after its task finished, so everything a resumed run loads
    is exactly what the interrupted run computed.
    """

    def __init__(self, root: str | Path, run_key: str) -> None:
        self.root = Path(root)
        self.run_key = run_key
        import hashlib

        digest = hashlib.blake2b(
            run_key.encode("utf-8"), digest_size=8
        ).hexdigest()
        slug = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in run_key
        )[:48]
        self.dir = self.root / f"{slug}-{digest}"

    def _entry_dir(self, task_key: str) -> Path:
        import hashlib

        digest = hashlib.blake2b(
            task_key.encode("utf-8"), digest_size=8
        ).hexdigest()
        return self.dir / digest

    # ------------------------------------------------------------ read
    def lookup(self, task_key: str) -> Path | None:
        """The committed entry directory for ``task_key``, or ``None``.

        A corrupt or foreign-version marker is treated as a miss and
        the dead entry is removed (the task simply re-runs).
        """
        entry = self._entry_dir(task_key)
        marker = entry / _ENTRY_MARKER
        try:
            meta = json.loads(marker.read_text())
        except OSError:
            return None
        except json.JSONDecodeError:
            shutil.rmtree(entry, ignore_errors=True)
            return None
        if (
            meta.get("version") != JOURNAL_VERSION
            or meta.get("task") != task_key
        ):
            shutil.rmtree(entry, ignore_errors=True)
            return None
        return entry

    def completed_keys(self) -> set[str]:
        """Task keys with a committed entry."""
        keys = set()
        if not self.dir.is_dir():
            return keys
        for marker in self.dir.glob(f"*/{_ENTRY_MARKER}"):
            try:
                meta = json.loads(marker.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if meta.get("version") == JOURNAL_VERSION and "task" in meta:
                keys.add(meta["task"])
        return keys

    # ----------------------------------------------------------- write
    def commit(
        self, task_key: str, write: Callable[[Path], None]
    ) -> bool:
        """Atomically publish one task's entry; write-once.

        ``write`` receives the staging directory and writes the entry
        files into it.  Returns ``False`` when an entry already exists
        (the racing-loser path) or the commit could not land.
        """
        final = self._entry_dir(task_key)
        if (final / _ENTRY_MARKER).exists():
            return False
        tmp = self.dir / f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        try:
            tmp.mkdir(parents=True, exist_ok=True)
            write(tmp)
            (tmp / _ENTRY_MARKER).write_text(
                json.dumps(
                    {
                        "version": JOURNAL_VERSION,
                        "task": task_key,
                        "created": time.time(),
                    }
                )
            )
            os.replace(tmp, final)
            return True
        except OSError:
            return False
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def clear(self) -> None:
        """Drop the run's journal entirely (fresh start / clean finish)."""
        shutil.rmtree(self.dir, ignore_errors=True)


# ----------------------------------------------------------------------
# Task wrapper (runs inside the worker; fault-injection hook)
# ----------------------------------------------------------------------
def _run_task(key: str, attempt: int, fn: Callable, args: tuple):
    """Execute one task attempt; module-level so process pools can
    pickle it.  The fault hook is a no-op unless ``REPRO_FAULTS`` is
    set (see :mod:`repro.testing.faults`)."""
    from repro.testing.faults import maybe_inject

    maybe_inject(key, attempt)
    return fn(*args)


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
@dataclass
class _RunState:
    """Mutable bookkeeping of one :meth:`ResilientPool.run` call."""

    remaining: dict[str, Task]
    attempts: dict[str, int]
    results: dict[str, Any]
    failures: list[TaskFailure] = field(default_factory=list)
    cancelled: list[str] = field(default_factory=list)
    not_before: dict[str, float] = field(default_factory=dict)


class ResilientPool:
    """Shared fault-tolerant runner for every fan-out in the stack.

    Parameters
    ----------
    workers:
        Pool size.  ``<= 1`` (or a single task) runs inline in the
        parent — same retry/journal semantics, no pool.
    kind:
        ``"process"`` (default) or ``"thread"``.  Thread pools cannot
        break like process pools, and a thread past its deadline
        cannot be killed — the pool is abandoned to a fresh one and
        the hung thread finishes in the background.
    policy:
        The :class:`RetryPolicy`; ``None`` uses the defaults.
    journal / codec:
        Attach a :class:`RunJournal` plus the :class:`JournalCodec`
        that (de)serializes one task result.  Completed tasks commit
        as they land; :meth:`run` preloads committed entries and skips
        their tasks.
    """

    def __init__(
        self,
        workers: int,
        kind: str = "process",
        policy: RetryPolicy | None = None,
        journal: RunJournal | None = None,
        codec: JournalCodec | None = None,
        label: str = "pool",
    ) -> None:
        if kind not in ("process", "thread"):
            raise ValueError(f"unknown pool kind: {kind!r}")
        if journal is not None and codec is None:
            raise ValueError("a journal needs a codec")
        self.workers = max(int(workers), 0)
        self.kind = kind
        self.policy = policy if policy is not None else DEFAULT_RETRY_POLICY
        self.journal = journal
        self.codec = codec
        self.label = label
        # Deterministic jitter: seeded per pool, consumed in retry order.
        self._rng = random.Random(0x5EED)

    # ------------------------------------------------------------- run
    def run(
        self,
        tasks: list[Task],
        on_result: Callable[[str, Any], None] | None = None,
    ) -> dict[str, Any]:
        """Execute every task; return ``{task key: result}``.

        ``on_result`` fires in the parent as each task *finishes*
        (journal hits are preloaded silently — they already ran).
        Raises :class:`ResilienceError` when any task fails
        permanently; everything completed up to that point is
        journaled, so a rerun resumes instead of recomputing.
        """
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate task keys")
        state = _RunState(remaining={}, attempts={}, results={})
        for task in tasks:
            value = self._journal_load(task.key)
            if value is not _MISS:
                state.results[task.key] = value
            else:
                state.remaining[task.key] = task
                state.attempts[task.key] = 0

        use_pool = self.workers > 1 and len(state.remaining) > 1
        if use_pool:
            self._run_pooled(state, on_result)
        if state.remaining and not state.failures:
            self._run_serial(state, on_result)
        if state.failures:
            state.cancelled.extend(
                key
                for key in state.remaining
                if key not in state.cancelled
            )
            raise ResilienceError(
                state.failures, state.cancelled, len(state.results)
            )
        return {task.key: state.results[task.key] for task in tasks}

    # ------------------------------------------------------ journaling
    def _journal_load(self, key: str):
        if self.journal is None:
            return _MISS
        entry = self.journal.lookup(key)
        if entry is None:
            return _MISS
        try:
            return self.codec.read(entry)
        except Exception:
            # A journal entry that no longer decodes is a miss: drop
            # it and recompute (never crash a run over its own cache).
            shutil.rmtree(entry, ignore_errors=True)
            return _MISS

    def _complete(
        self,
        key: str,
        value,
        state: _RunState,
        on_result: Callable[[str, Any], None] | None,
    ) -> None:
        state.results[key] = value
        state.remaining.pop(key, None)
        if self.journal is not None:
            try:
                self.journal.commit(
                    key, lambda path: self.codec.write(value, path)
                )
            except OSError:  # pragma: no cover - disk-full style
                warnings.warn(
                    f"[{self.label}] journal commit failed for {key!r}; "
                    "the run continues un-journaled",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if on_result is not None:
            on_result(key, value)

    def _record_failure(
        self, state: _RunState, key: str, error: str, kind: str
    ) -> None:
        """One failed attempt; escalates to permanent after retries."""
        state.attempts[key] += 1
        if state.attempts[key] > self.policy.max_retries:
            state.failures.append(
                TaskFailure(
                    key=key,
                    attempts=state.attempts[key],
                    error=error,
                    kind=kind,
                )
            )
            state.remaining.pop(key, None)
        else:
            state.not_before[key] = time.monotonic() + self.policy.backoff(
                state.attempts[key], self._rng
            )

    # ---------------------------------------------------------- serial
    def _run_serial(
        self,
        state: _RunState,
        on_result: Callable[[str, Any], None] | None,
    ) -> None:
        """Inline execution with the same retry/journal semantics.

        Deadlines cannot be enforced here — there is no second thread
        of control to observe a hang — which is the accepted cost of
        the always-completes degradation path.
        """
        for key, task in list(state.remaining.items()):
            if state.failures:
                state.cancelled.append(key)
                state.remaining.pop(key, None)
                continue
            while True:
                try:
                    value = _run_task(
                        key, state.attempts[key], task.fn, task.args
                    )
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    self._record_failure(state, key, repr(error), "error")
                    if key not in state.remaining:
                        break
                    time.sleep(
                        max(
                            state.not_before.get(key, 0.0)
                            - time.monotonic(),
                            0.0,
                        )
                    )
                    continue
                self._complete(key, value, state, on_result)
                break

    # ---------------------------------------------------------- pooled
    def _make_executor(self):
        if self.kind == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(max_workers=self.workers)

    def _run_pooled(
        self,
        state: _RunState,
        on_result: Callable[[str, Any], None] | None,
    ) -> None:
        """Pool driver: submit, poll, retry, respawn, degrade.

        Exits with ``state.remaining`` empty (all done), non-empty
        with failures recorded (permanent failure: pending cancelled,
        running drained), or non-empty without failures (degradation:
        the caller finishes inline).
        """
        policy = self.policy
        pool_failures = 0
        while state.remaining and not state.failures:
            if pool_failures >= policy.max_pool_failures:
                warnings.warn(
                    f"[{self.label}] worker pool failed "
                    f"{pool_failures} time(s); finishing the remaining "
                    f"{len(state.remaining)} task(s) inline serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return  # graceful degradation: caller runs serially
            executor = self._make_executor()
            futures: dict[Future, str] = {}
            running_since: dict[str, float] = {}
            submitted: set[str] = set()
            broken_keys: set[str] = set()
            broken = False
            try:
                while (
                    not state.failures
                    and not broken
                    and (futures or any(
                        key not in submitted for key in state.remaining
                    ))
                ):
                    now = time.monotonic()
                    for key, task in list(state.remaining.items()):
                        if key in submitted:
                            continue
                        if state.not_before.get(key, 0.0) > now:
                            continue
                        try:
                            future = executor.submit(
                                _run_task,
                                key,
                                state.attempts[key],
                                task.fn,
                                task.args,
                            )
                        except (BrokenProcessPool, RuntimeError):
                            broken = True
                            break
                        futures[future] = key
                        submitted.add(key)
                    if broken:
                        break
                    if futures:
                        done, _ = wait(
                            set(futures),
                            timeout=policy.poll_seconds,
                            return_when=FIRST_COMPLETED,
                        )
                    else:
                        done = set()
                        time.sleep(policy.poll_seconds)
                    for future in done:
                        key = futures.pop(future)
                        running_since.pop(key, None)
                        submitted.discard(key)
                        try:
                            value = future.result()
                        except BrokenProcessPool:
                            broken = True
                            broken_keys.add(key)
                            continue
                        except Exception as error:
                            self._record_failure(
                                state, key, repr(error), "error"
                            )
                            continue
                        self._complete(key, value, state, on_result)
                    if broken:
                        break
                    if policy.deadline_seconds is not None:
                        now = time.monotonic()
                        timed_out = []
                        for future, key in futures.items():
                            if not future.running():
                                continue
                            started = running_since.setdefault(key, now)
                            if now - started > policy.deadline_seconds:
                                timed_out.append(key)
                        if timed_out:
                            # The workers holding these tasks may be
                            # wedged: abandon the whole pool (the
                            # survivors' unfinished tasks resubmit on
                            # the fresh one at no attempt cost).
                            for key in timed_out:
                                self._record_failure(
                                    state,
                                    key,
                                    f"deadline of "
                                    f"{policy.deadline_seconds:.3g}s "
                                    "exceeded",
                                    "timeout",
                                )
                            break
                if broken:
                    # Every unfinished submitted task is charged one
                    # attempt: the culprit cannot be told apart from
                    # its pool-mates post-mortem, and charging all of
                    # them keeps a deterministic crasher from
                    # respawn-looping forever.
                    pool_failures += 1
                    for key in submitted | broken_keys:
                        if key in state.remaining:
                            self._record_failure(
                                state, key, "worker pool broke", "pool"
                            )
                            state.not_before.pop(key, None)
                if state.failures:
                    self._drain(state, futures, on_result)
            finally:
                executor.shutdown(wait=False, cancel_futures=True)

    def _drain(
        self,
        state: _RunState,
        futures: dict[Future, str],
        on_result: Callable[[str, Any], None] | None,
    ) -> None:
        """Permanent-failure exit: cancel pending, keep running work.

        Queued futures are cancelled; already-running ones are waited
        for (bounded) so their results still land in the journal — an
        aborted run loses nothing that finished.
        """
        still_running: dict[Future, str] = {}
        for future, key in futures.items():
            if key not in state.remaining:
                continue  # already escalated (e.g. a timeout failure)
            if future.cancel():
                state.cancelled.append(key)
                state.remaining.pop(key, None)
            else:
                still_running[future] = key
        timeout = self.policy.deadline_seconds or 60.0
        done, not_done = wait(set(still_running), timeout=timeout)
        for future in done:
            key = still_running[future]
            try:
                value = future.result()
            except Exception as error:
                state.failures.append(
                    TaskFailure(
                        key=key,
                        attempts=state.attempts[key] + 1,
                        error=repr(error),
                        kind="error",
                    )
                )
                state.remaining.pop(key, None)
            else:
                self._complete(key, value, state, on_result)
        for future in not_done:
            key = still_running[future]
            state.cancelled.append(key)
            state.remaining.pop(key, None)


#: Sentinel for "no journal entry" (``None`` is a legal task result).
_MISS = object()
