"""Graph-corpus generation workbench.

Regenerates the paper's experimental input: for every dataset profile
and every similarity function of the taxonomy, the all-pairs
similarity graph.  The corpus is persisted under a cache directory
(one ``.npz`` per graph plus a JSON manifest) so the benchmark
harnesses can re-use it across runs; the cache key includes the scale,
seed and configuration, so changing any knob regenerates.

Generation runs through the shared-artifact engine of
:mod:`repro.pipeline.engine`: specs are partitioned into
artifact-sharing groups and each group computes its matrices against a
per-dataset :class:`~repro.pipeline.engine.ArtifactCache`, which
eliminates the redundant model/embedding rebuilds of the naive
per-function loop.  With an ``artifact_store`` configured
(``GraphCorpusConfig.artifact_store``, ``generate_corpus(...,
artifact_store=PATH)``, ``repro corpus --artifact-store PATH``) the
cache extends across runs: embeddings, token matrices and entity
graphs land in a persistent content-addressed
:class:`~repro.pipeline.store.ArtifactStore` keyed by the generated
dataset's identity, so corpus configs that share a dataset reuse each
other's intermediates — warm or cold, the corpus stays bit-identical.
With ``workers > 1`` the groups are distributed
over a process pool; when the corpus has too few groups to occupy a
pool, the same ``workers`` value instead sizes the thread pool of the
pairwise-kernel engine (:mod:`repro.pipeline.kernels`).  The cache
write path is sharded under the same knob: ``graph_*.npz`` files are
written by a thread pool instead of serially in the parent (file
compression releases the GIL), with the manifest written only after
every graph file landed.  In every case the result (records, order,
cache key) is identical to the serial run — parallelism only changes
wall-clock.  Every fan-out (groups and cache writes alike) runs on
the shared fault-tolerant runner of :mod:`repro.pipeline.resilience`:
failed groups retry with backoff, broken pools respawn, and with
``resume``/``journal_dir`` completed groups journal to disk so an
interrupted generation resumes bit-identically.

The paper also removes degenerate inputs ("special care was taken to
clean the experimental results from noise"); the corresponding filters
live in :mod:`repro.evaluation.filtering` and are applied at analysis
time, with the zero-evidence filter (all matching pairs at weight 0)
applied already at generation time here.

The **dirty-ER corpus mode** (:func:`generate_dirty_corpus`) runs the
same taxonomy one workload over: each dataset's union collection is
joined with itself through the ordinary engine/store stack (self-join
artifacts carry a ``+self`` dataset identity) and every matrix's
strict upper triangle becomes a
:class:`~repro.graph.unipartite.UnipartiteGraph` for the clustering
algorithms of :mod:`repro.extensions.dirty_er`.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datasets.catalog import DATASET_CODES, dataset_spec
from repro.datasets.generator import CleanCleanDataset, generate_dataset
from repro.datasets.profile import EntityCollection
from repro.graph.bipartite import SimilarityGraph
from repro.graph.io import (
    load_graph,
    load_unipartite_graph,
    save_graph,
    save_unipartite_graph,
)
from repro.graph.unipartite import (
    UnipartiteGraph,
    matrix_to_unipartite_graph,
    pairs_to_unipartite_graph,
)
from repro.pipeline.engine import SimilarityEngine, SpecGroup, group_specs
from repro.pipeline.graph_builder import matrix_to_graph, pairs_to_graph
from repro.pipeline.sharding import plan_for_dataset
from repro.pipeline.resilience import (
    JournalCodec,
    ResilientPool,
    RetryPolicy,
    RunJournal,
    Task,
    default_journal_dir,
)
from repro.pipeline.similarity_functions import (
    FAMILIES,
    enumerate_function_specs,
)
from repro.pipeline.store import ArtifactStore, dataset_store_key

__all__ = [
    "GraphCorpusConfig",
    "GraphRecord",
    "DirtyGraphRecord",
    "generate_corpus",
    "generate_dirty_corpus",
]

_MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 2
_DIRTY_MANIFEST_VERSION = 1


@dataclass(frozen=True)
class GraphCorpusConfig:
    """Configuration of one graph corpus.

    ``datasets`` / ``families`` restrict the corpus; ``scale`` and
    ``max_pairs`` feed the dataset catalog; ``seed`` drives all
    randomness.  ``schema_based_measures`` / ``ngram_models`` etc. can
    shrink the taxonomy for quick runs (``None`` = the full paper
    configuration).  ``blocking`` (a spec string for
    :func:`~repro.pipeline.blocking.parse_blocking_spec`) routes
    generation through the sparse candidate-pair path — it *changes
    the corpus* (edges outside the candidate set disappear) and is
    part of :meth:`cache_key`.  ``workers`` parallelizes generation
    over a process pool, ``artifact_store`` points generation at a
    persistent cross-run :class:`~repro.pipeline.store.ArtifactStore`
    and ``store_read_tier`` layers a shared read-only store directory
    under it (tier hits never write anywhere — see
    :mod:`repro.pipeline.store`); none of the three affects the
    produced corpus or the cache key — only wall-clock — and all are
    therefore excluded from :meth:`cache_key`.  ``max_memory`` (bytes)
    routes generation through the sharded execution tier
    (:mod:`repro.pipeline.sharding`): each dataset's row space splits
    into budget-sized shards that run as individual pool tasks and
    merge bit-identically to the unsharded corpus — like the
    worker/store knobs it bounds resources without changing results,
    so it too is excluded from :meth:`cache_key`.
    """

    datasets: tuple[str, ...] = DATASET_CODES
    families: tuple[str, ...] = FAMILIES
    scale: float | None = None
    max_pairs: int | None = None
    seed: int = 42
    schema_based_measures: tuple[str, ...] | None = None
    ngram_models: tuple[tuple[str, int], ...] | None = None
    vector_measures: tuple[str, ...] | None = None
    graph_measures: tuple[str, ...] | None = None
    semantic_models: tuple[str, ...] | None = None
    semantic_measures: tuple[str, ...] | None = None
    max_attributes: int | None = None
    blocking: str | None = None
    workers: int = 1
    artifact_store: str | None = None
    store_read_tier: str | None = None
    max_memory: int | None = None

    def cache_key(self) -> str:
        """A stable hash of every generation-relevant knob."""
        payload_dict = {
            "datasets": self.datasets,
            "families": self.families,
            "scale": self.scale,
            "max_pairs": self.max_pairs,
            "seed": self.seed,
            "sbm": self.schema_based_measures,
            "ngm": self.ngram_models,
            "vm": self.vector_measures,
            "gm": self.graph_measures,
            "sm": self.semantic_models,
            "sme": self.semantic_measures,
            "ma": self.max_attributes,
        }
        if self.blocking is not None:
            # Only present when set, so pre-blocking cache keys (and
            # their on-disk corpora) stay valid.  Canonicalized so
            # equivalent spellings share a corpus.
            from repro.pipeline.blocking import canonical_blocking

            payload_dict["blocking"] = canonical_blocking(self.blocking)
        payload = json.dumps(payload_dict, sort_keys=True, default=list)
        import hashlib

        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=8
        ).hexdigest()


@dataclass
class GraphRecord:
    """One corpus entry: the graph plus its provenance.

    ``ground_truth`` is shared by all graphs of the same dataset.
    ``build_seconds`` is the total wall-clock of the entry;
    ``artifact_seconds`` (shared models/embeddings built on a cache
    miss), ``matrix_seconds`` (the measure itself) and
    ``graph_seconds`` (matrix-to-graph conversion) attribute it per
    stage.  A warm artifact cache shows up as ``artifact_seconds == 0``.

    ``dedup_ratio`` is the fraction of cells the unique-universe kernel
    engine actually scored (``UniquePlan``/``SparsePlan.dedup_ratio``;
    1.0 for families outside the deduplicated string path) and
    ``candidate_reduction`` the dense-cells-per-candidate-pair factor
    of the blocking scheme (1.0 without blocking) — together the
    per-stage savings the progress line and runtime report surface.
    """

    graph: SimilarityGraph
    dataset: str
    family: str
    function: str
    category: str  # BLC / OSD / SCR
    ground_truth: set[tuple[int, int]]
    build_seconds: float = 0.0
    artifact_seconds: float = 0.0
    matrix_seconds: float = 0.0
    graph_seconds: float = 0.0
    dedup_ratio: float = 1.0
    candidate_reduction: float = 1.0

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges


@dataclass
class DirtyGraphRecord:
    """One dirty-ER corpus entry: a self-join graph plus provenance.

    The graph is unipartite over the *union* collection (left profiles
    first, right profiles shifted by ``n_left``); ``ground_truth``
    holds the canonical ``(u, v)`` duplicate pairs in merged ids.
    Timing fields mirror :class:`GraphRecord`.
    """

    graph: UnipartiteGraph
    dataset: str
    family: str
    function: str
    category: str  # BLC / OSD / SCR
    ground_truth: set[tuple[int, int]]
    build_seconds: float = 0.0
    artifact_seconds: float = 0.0
    matrix_seconds: float = 0.0
    graph_seconds: float = 0.0
    dedup_ratio: float = 1.0
    candidate_reduction: float = 1.0

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges


def generate_corpus(
    config: GraphCorpusConfig,
    cache_dir: str | Path | None = None,
    progress: bool = False,
    workers: int | None = None,
    artifact_store: str | Path | None = None,
    store_read_tier: str | Path | None = None,
    resume: bool = False,
    journal_dir: str | Path | None = None,
    policy: RetryPolicy | None = None,
    blocking: str | None = None,
    max_memory: int | None = None,
) -> list[GraphRecord]:
    """Generate (or load from cache) the graph corpus for ``config``.

    ``workers`` overrides ``config.workers``, ``artifact_store``
    overrides ``config.artifact_store`` and ``store_read_tier``
    overrides ``config.store_read_tier``; any combination produces
    the same corpus as a serial, store-less run.  ``blocking``
    overrides ``config.blocking`` — unlike the others it changes the
    produced corpus (and its cache key): similarity is computed only
    on the scheme's candidate pairs.  ``max_memory`` overrides
    ``config.max_memory``: generation runs through the sharded
    execution tier (shard-level pool tasks, spilled edges, parent-side
    merge) and the corpus stays bit-identical.

    Generation fans out through the shared fault-tolerant runner
    (:mod:`repro.pipeline.resilience`): failed groups retry with
    backoff, a broken pool respawns and resubmits only unfinished
    groups, and repeated pool deaths degrade to inline serial
    execution.  With ``journal_dir`` set (or ``resume=True``, which
    falls back to the default journal under ``REPRO_CACHE``), every
    completed group's records are committed to a
    :class:`~repro.pipeline.resilience.RunJournal` as they land;
    ``resume=True`` then skips journaled groups after an interruption
    and the assembled corpus is bit-identical to an uninterrupted run
    (graphs round-trip exactly through the npz codec).  The journal is
    cleared on success and on any non-resume start.
    """
    if artifact_store is not None:
        config = dataclasses.replace(
            config, artifact_store=str(artifact_store)
        )
    if store_read_tier is not None:
        config = dataclasses.replace(
            config, store_read_tier=str(store_read_tier)
        )
    if blocking is not None:
        config = dataclasses.replace(config, blocking=str(blocking))
    if max_memory is not None:
        config = dataclasses.replace(config, max_memory=int(max_memory))
    if config.blocking is not None:
        # Validate (and fail fast on) a bad spec before any generation.
        from repro.pipeline.blocking import canonical_blocking

        config = dataclasses.replace(
            config, blocking=canonical_blocking(config.blocking)
        )
    if cache_dir is not None:
        cache_dir = Path(cache_dir) / config.cache_key()
        manifest_path = cache_dir / _MANIFEST_NAME
        if manifest_path.exists():
            return _load_cached(cache_dir)

    n_workers = config.workers if workers is None else workers
    if config.max_memory is not None:
        records = _sharded_corpus_records(
            config,
            n_workers,
            progress=progress,
            resume=resume,
            journal_dir=journal_dir,
            policy=policy,
        )
        if cache_dir is not None:
            _store_cache(cache_dir, records, workers=n_workers)
        return records
    tasks = _corpus_tasks(config)
    journal = _make_run_journal(
        journal_dir, resume, f"corpus-{config.cache_key()}"
    )
    use_pool = n_workers > 1 and len(tasks) > 1
    # Serial over groups hands the workers budget to the pairwise
    # kernels instead (block-level threads; results invariant).
    threads = 1 if use_pool else max(n_workers, 1)
    runner = ResilientPool(
        n_workers if use_pool else 0,
        kind="process",
        policy=policy,
        journal=journal,
        codec=_CORPUS_JOURNAL_CODEC,
        label="corpus",
    )
    on_result = None
    if progress:
        # Stream each group as it finishes (possibly out of submission
        # order) so long parallel runs stay visible.
        def on_result(key, chunk):
            for record in chunk:
                _print_progress(record)

    chunks = runner.run(
        [
            Task(
                key=f"{index:03d}:{code}",
                fn=_group_worker,
                args=((config, code, group, threads),),
            )
            for index, (code, group) in enumerate(tasks)
        ],
        on_result=on_result,
    )
    records = [record for chunk in chunks.values() for record in chunk]

    if cache_dir is not None:
        _store_cache(cache_dir, records, workers=n_workers)
    if journal is not None:
        # The run landed (and, with a cache_dir, persisted): the
        # journal served its purpose.
        journal.clear()
    return records


def _generate(config: GraphCorpusConfig, code: str) -> CleanCleanDataset:
    return generate_dataset(
        dataset_spec(code, scale=config.scale, max_pairs=config.max_pairs),
        seed=config.seed,
    )


def _make_engine(
    config: GraphCorpusConfig, code: str, threads: int = 1
) -> SimilarityEngine:
    """An engine for one dataset, store-backed when configured."""
    store = None
    if config.artifact_store is not None:
        store = ArtifactStore(
            config.artifact_store, read_tier=config.store_read_tier
        )
    return SimilarityEngine(
        _generate(config, code),
        threads=threads,
        store=store,
        dataset_key=dataset_store_key(
            code, config.scale, config.max_pairs, config.seed
        ),
        blocking=config.blocking,
    )


def _corpus_tasks(
    config: GraphCorpusConfig,
) -> list[tuple[str, SpecGroup]]:
    """All ``(dataset code, spec group)`` units of work, in order."""
    tasks: list[tuple[str, SpecGroup]] = []
    for code in config.datasets:
        spec = dataset_spec(
            code, scale=config.scale, max_pairs=config.max_pairs
        )
        specs = enumerate_function_specs(spec, **_enumerate_kwargs(config))
        tasks.extend((code, group) for group in group_specs(specs))
    return tasks


def _enumerate_kwargs(config: GraphCorpusConfig) -> dict:
    kwargs: dict = {"families": config.families}
    if config.schema_based_measures is not None:
        kwargs["schema_based_measures"] = config.schema_based_measures
    if config.ngram_models is not None:
        kwargs["ngram_models"] = tuple(
            (unit, int(n)) for unit, n in config.ngram_models
        )
    if config.vector_measures is not None:
        kwargs["vector_measures"] = config.vector_measures
    if config.graph_measures is not None:
        kwargs["graph_measures"] = config.graph_measures
    if config.semantic_models is not None:
        kwargs["semantic_models"] = config.semantic_models
    if config.semantic_measures is not None:
        kwargs["semantic_measures"] = config.semantic_measures
    if config.max_attributes is not None:
        kwargs["max_attributes"] = config.max_attributes
    return kwargs


# Per-process memo of the last dataset/engine pair, so a pool worker
# handling consecutive groups of the same dataset regenerates nothing.
# Single-slot on purpose: it bounds worker memory to one dataset's
# artifacts regardless of how many datasets the corpus spans.
_WORKER_STATE: dict[tuple, SimilarityEngine] = {}


def _engine_memo_key(config: GraphCorpusConfig, code: str, threads: int):
    # cache_key() deliberately excludes the store/threads knobs (they
    # never change results), but the *engine object* differs with
    # them — the memo key must not conflate a store-backed engine with
    # a store-less one.
    return (
        config.cache_key(),
        code,
        threads,
        config.artifact_store,
        config.store_read_tier,
    )


def _group_worker(
    task: tuple[GraphCorpusConfig, str, SpecGroup, int],
) -> list[GraphRecord]:
    config, code, group, threads = task
    key = _engine_memo_key(config, code, threads)
    engine = _WORKER_STATE.get(key)
    if engine is None:
        # Workers share the persistent store directory (not the store
        # object): every write is atomic and write-once, so racing
        # workers building the same artifact are safe — the first
        # commit wins and the others discard (see repro.pipeline.store).
        engine = _make_engine(config, code, threads=threads)
        _WORKER_STATE.clear()
        _WORKER_STATE[key] = engine
    return _group_records(engine, group, config)


def _make_run_journal(
    journal_dir: str | Path | None, resume: bool, run_key: str
) -> RunJournal | None:
    """The corpus run journal, or ``None`` when journaling is off.

    Journaling activates when the caller names a directory or asks to
    resume (``resume`` without a directory uses the default journal
    under ``REPRO_CACHE``); a plain library call stays journal-free so
    tests and benches leave nothing behind.  A non-resume start clears
    any stale journal of the same run key first.
    """
    if journal_dir is None and not resume:
        return None
    root = (
        Path(journal_dir) if journal_dir is not None
        else default_journal_dir()
    )
    journal = RunJournal(root, run_key)
    if not resume:
        journal.clear()
    return journal


def _group_records(
    engine: SimilarityEngine,
    group: SpecGroup,
    config: GraphCorpusConfig,
) -> list[GraphRecord]:
    from repro.datasets.catalog import CATEGORY_BY_DATASET

    dataset = engine.dataset
    records: list[GraphRecord] = []
    for spec in group.specs:
        start = time.perf_counter()
        metadata = {
            "dataset": dataset.code,
            "family": spec.family,
            "function": spec.name,
        }
        dedup_ratio = 1.0
        candidate_reduction = 1.0
        if config.blocking is None:
            matrix, artifact_seconds, matrix_seconds = (
                engine.compute_timed(spec)
            )
            graph_start = time.perf_counter()
            graph = matrix_to_graph(
                matrix,
                name=f"{dataset.code}:{spec.name}",
                metadata=metadata,
            )
        else:
            pairs, artifact_seconds, matrix_seconds = (
                engine.compute_pairs_timed(spec)
            )
            graph_start = time.perf_counter()
            graph = pairs_to_graph(
                pairs.n_left,
                pairs.n_right,
                pairs.left,
                pairs.right,
                pairs.values,
                name=f"{dataset.code}:{spec.name}",
                metadata={**metadata, "blocking": engine.blocking},
            )
            candidate_reduction = engine.cache.candidate_set(
                engine.blocking
            ).reduction
        if spec.family == "schema_based_syntactic":
            attribute = spec.details["attribute"]
            if config.blocking is None:
                dedup_ratio = engine.cache.string_batch(
                    attribute
                ).plan.dedup_ratio
            else:
                dedup_ratio = engine.cache.sparse_plan(
                    attribute, engine.blocking
                ).dedup_ratio
        graph_seconds = time.perf_counter() - graph_start
        elapsed = time.perf_counter() - start
        if _all_matches_zero(graph, dataset.ground_truth):
            # The paper removes graphs "where all matching entities had
            # a zero edge weight" — they carry no signal at all.
            continue
        records.append(
            GraphRecord(
                graph=graph,
                dataset=dataset.code,
                family=spec.family,
                function=spec.name,
                category=CATEGORY_BY_DATASET[dataset.code],
                ground_truth=dataset.ground_truth,
                build_seconds=elapsed,
                artifact_seconds=artifact_seconds,
                matrix_seconds=matrix_seconds,
                graph_seconds=graph_seconds,
                dedup_ratio=dedup_ratio,
                candidate_reduction=candidate_reduction,
            )
        )
    return records


def _print_progress(record: GraphRecord) -> None:
    # Dirty records share this printer but carry no savings fields.
    extras = ""
    dedup = getattr(record, "dedup_ratio", 1.0)
    reduction = getattr(record, "candidate_reduction", 1.0)
    if dedup != 1.0:
        extras += f" dedup={dedup:.2f}"
    if reduction != 1.0:
        extras += f" reduction={reduction:.1f}x"
    print(
        f"[workbench] {record.dataset} {record.function}: "
        f"m={record.n_edges} ({record.build_seconds:.2f}s = "
        f"{record.artifact_seconds:.2f}s artifacts + "
        f"{record.matrix_seconds:.2f}s matrix + "
        f"{record.graph_seconds:.2f}s graph)" + extras
    )


def _all_matches_zero(
    graph: SimilarityGraph, ground_truth: set[tuple[int, int]]
) -> bool:
    """True when no ground-truth pair appears among the graph's edges.

    Vectorized: edges and truth pairs are folded into scalar keys
    (``left * n_right + right``) and membership is one ``np.isin`` —
    no per-graph Python set over all ``m`` edges.
    """
    if not ground_truth or graph.n_edges == 0:
        return True
    truth = np.array(sorted(ground_truth), dtype=np.int64)
    stride = np.int64(graph.n_right)
    edge_keys = graph.left * stride + graph.right
    truth_keys = truth[:, 0] * stride + truth[:, 1]
    return not bool(np.isin(truth_keys, edge_keys).any())


# ----------------------------------------------------------------------
# Sharded generation: bounded-memory corpus runs (max_memory)
# ----------------------------------------------------------------------
def _sharded_corpus_records(
    config: GraphCorpusConfig,
    n_workers: int,
    progress: bool = False,
    resume: bool = False,
    journal_dir: str | Path | None = None,
    policy: RetryPolicy | None = None,
) -> list[GraphRecord]:
    """The corpus via the sharded execution tier.

    Every ``(dataset, spec group)`` unit expands into one pool task
    per shard of the dataset's :func:`~repro.pipeline.sharding.plan_for_dataset`
    plan, so the resilient runner's retry/resume machinery applies at
    shard granularity: a killed worker repeats one shard, not a whole
    group, and with a journal each finished shard's edges persist as
    an npz spill.  The parent concatenates shard edges in range order
    and builds every graph through
    :func:`~repro.pipeline.graph_builder.pairs_to_graph` — by the
    merge-determinism rules of :mod:`repro.pipeline.sharding` the
    result is bit-identical to the unsharded corpus, whatever the
    budget, shard count or worker count.
    """
    tasks = _corpus_tasks(config)
    datasets: dict[str, CleanCleanDataset] = {}
    plans: dict = {}
    for code, _ in tasks:
        if code not in plans:
            datasets[code] = _generate(config, code)
            plans[code] = plan_for_dataset(
                datasets[code],
                memory_budget=config.max_memory,
                blocking=config.blocking,
            )
    journal = _make_run_journal(
        journal_dir, resume, f"corpus-shards-{config.cache_key()}"
    )
    pool_tasks = []
    use_pool = n_workers > 1 and sum(
        plans[code].n_shards for code, _ in tasks
    ) > 1
    threads = 1 if use_pool else max(n_workers, 1)
    for index, (code, group) in enumerate(tasks):
        for shard, (start, stop) in enumerate(plans[code].ranges()):
            pool_tasks.append(
                Task(
                    key=f"{index:03d}:{code}:s{shard:03d}",
                    fn=_shard_group_worker,
                    args=(
                        (config, code, group, threads, start, stop,
                         shard == 0),
                    ),
                )
            )
    runner = ResilientPool(
        n_workers if use_pool else 0,
        kind="process",
        policy=policy,
        journal=journal,
        codec=_SHARD_JOURNAL_CODEC,
        label="corpus-shards",
    )
    chunks = runner.run(pool_tasks)
    records: list[GraphRecord] = []
    for index, (code, group) in enumerate(tasks):
        payloads = [
            chunks[f"{index:03d}:{code}:s{shard:03d}"]
            for shard in range(plans[code].n_shards)
        ]
        records.extend(
            _merge_shard_records(
                config, group, datasets[code], plans[code], payloads,
                progress=progress,
            )
        )
    if journal is not None:
        journal.clear()
    return records


def _shard_group_worker(
    task: tuple[GraphCorpusConfig, str, SpecGroup, int, int, int, bool],
) -> dict:
    """One shard of one spec group: raw edges plus per-spec timings.

    The first shard of each group (``with_stats``) also reports the
    deterministic savings statistics (dedup ratio, candidate
    reduction) that the merged records carry — they are properties of
    the whole dataset, not of a row range.
    """
    config, code, group, threads, start, stop, with_stats = task
    key = _engine_memo_key(config, code, threads)
    engine = _WORKER_STATE.get(key)
    if engine is None:
        engine = _make_engine(config, code, threads=threads)
        _WORKER_STATE.clear()
        _WORKER_STATE[key] = engine
    results = engine.shard_scores_group(list(group.specs), start, stop)
    return {
        "specs": [
            {
                "left": left,
                "right": right,
                "values": values,
                "artifact_seconds": artifact_seconds,
                "matrix_seconds": matrix_seconds,
            }
            for (left, right, values), artifact_seconds, matrix_seconds
            in results
        ],
        "stats": (
            _group_stats(engine, group, config) if with_stats else None
        ),
    }


def _group_stats(
    engine: SimilarityEngine,
    group: SpecGroup,
    config: GraphCorpusConfig,
) -> list[dict]:
    """Per-spec ``dedup_ratio`` / ``candidate_reduction`` of a group."""
    stats = []
    for spec in group.specs:
        dedup_ratio = 1.0
        candidate_reduction = 1.0
        if config.blocking is not None:
            candidate_reduction = engine.cache.candidate_set(
                engine.blocking
            ).reduction
        if spec.family == "schema_based_syntactic":
            attribute = spec.details["attribute"]
            if config.blocking is None:
                dedup_ratio = engine.cache.string_batch(
                    attribute
                ).plan.dedup_ratio
            else:
                dedup_ratio = engine.cache.sparse_plan(
                    attribute, engine.blocking
                ).dedup_ratio
        stats.append(
            {
                "dedup_ratio": dedup_ratio,
                "candidate_reduction": candidate_reduction,
            }
        )
    return stats


def _merge_shard_records(
    config: GraphCorpusConfig,
    group: SpecGroup,
    dataset: CleanCleanDataset,
    plan,
    payloads: list[dict],
    progress: bool = False,
) -> list[GraphRecord]:
    """Merge one group's shard payloads into final :class:`GraphRecord`s.

    Mirrors :func:`_group_records` field for field: same graph names
    and metadata, same zero-evidence filter, same savings statistics —
    only the timing attribution differs (per-shard sums instead of one
    in-process measurement).
    """
    from repro.datasets.catalog import CATEGORY_BY_DATASET

    records: list[GraphRecord] = []
    stats = payloads[0]["stats"]
    for spec_index, spec in enumerate(group.specs):
        parts = [payload["specs"][spec_index] for payload in payloads]
        artifact_seconds = float(
            sum(part["artifact_seconds"] for part in parts)
        )
        matrix_seconds = float(
            sum(part["matrix_seconds"] for part in parts)
        )
        graph_start = time.perf_counter()
        metadata = {
            "dataset": dataset.code,
            "family": spec.family,
            "function": spec.name,
        }
        if config.blocking is not None:
            metadata["blocking"] = config.blocking
        graph = pairs_to_graph(
            plan.n_left,
            plan.n_right,
            np.concatenate([part["left"] for part in parts]),
            np.concatenate([part["right"] for part in parts]),
            np.concatenate([part["values"] for part in parts]),
            name=f"{dataset.code}:{spec.name}",
            metadata=metadata,
        )
        graph_seconds = time.perf_counter() - graph_start
        if _all_matches_zero(graph, dataset.ground_truth):
            continue
        record = GraphRecord(
            graph=graph,
            dataset=dataset.code,
            family=spec.family,
            function=spec.name,
            category=CATEGORY_BY_DATASET[dataset.code],
            ground_truth=dataset.ground_truth,
            build_seconds=artifact_seconds + matrix_seconds + graph_seconds,
            artifact_seconds=artifact_seconds,
            matrix_seconds=matrix_seconds,
            graph_seconds=graph_seconds,
            dedup_ratio=stats[spec_index]["dedup_ratio"],
            candidate_reduction=stats[spec_index]["candidate_reduction"],
        )
        if progress:
            _print_progress(record)
        records.append(record)
    return records


def _record_meta(record, filename: str) -> dict:
    """One record's manifest/journal entry (everything but the graph)."""
    return {
        "file": filename,
        "dataset": record.dataset,
        "family": record.family,
        "function": record.function,
        "category": record.category,
        "build_seconds": record.build_seconds,
        "artifact_seconds": record.artifact_seconds,
        "matrix_seconds": record.matrix_seconds,
        "graph_seconds": record.graph_seconds,
        "dedup_ratio": record.dedup_ratio,
        "candidate_reduction": record.candidate_reduction,
    }


def _sharded_graph_writes(
    cache_dir: Path, records, filenames, save, workers: int
) -> None:
    """Write every record's graph file, thread-sharded when asked.

    ``np.savez_compressed`` spends its time in zlib, which releases
    the GIL, so the writes thread well; the resilient runner retries a
    transiently failed write instead of crashing the whole store step.
    """
    if workers > 1 and len(records) > 1:
        writer = ResilientPool(workers, kind="thread", label="corpus-cache")
        writer.run(
            [
                Task(key=filename, fn=save, args=(record.graph,
                                                  cache_dir / filename))
                for record, filename in zip(records, filenames)
            ]
        )
    else:
        for record, filename in zip(records, filenames):
            save(record.graph, cache_dir / filename)


def _store_cache(
    cache_dir: Path, records: list[GraphRecord], workers: int = 1
) -> None:
    """Persist the corpus: sharded graph writes, then the manifest.

    Filenames follow the deterministic record order, so the graph
    files can be written in any order (and, with ``workers > 1``, by a
    thread pool).  The manifest is written only after every graph file
    landed, keeping a crashed run invisible to :func:`_load_cached`.
    """
    cache_dir.mkdir(parents=True, exist_ok=True)
    filenames = [f"graph_{index:04d}.npz" for index in range(len(records))]
    _sharded_graph_writes(cache_dir, records, filenames, save_graph, workers)
    # Ground truth is identical for every graph of a dataset; store it
    # once per dataset instead of once per graph (the v1 format's
    # per-entry copies dominated the manifest size).
    ground_truth: dict[str, list] = {}
    graphs = []
    for record, filename in zip(records, filenames):
        if record.dataset not in ground_truth:
            ground_truth[record.dataset] = sorted(record.ground_truth)
        graphs.append(_record_meta(record, filename))
    manifest = {
        "version": _MANIFEST_VERSION,
        "ground_truth": ground_truth,
        "graphs": graphs,
    }
    (cache_dir / _MANIFEST_NAME).write_text(json.dumps(manifest))


def _load_cached(cache_dir: Path) -> list[GraphRecord]:
    manifest = json.loads((cache_dir / _MANIFEST_NAME).read_text())
    if isinstance(manifest, list):
        # v1 manifests carried a full ground-truth copy per entry.
        entries = manifest
        shared_truth: dict[str, set[tuple[int, int]]] = {}
        for entry in entries:
            if entry["dataset"] not in shared_truth:
                shared_truth[entry["dataset"]] = {
                    tuple(pair) for pair in entry["ground_truth"]
                }
    else:
        entries = manifest["graphs"]
        shared_truth = {
            code: {tuple(pair) for pair in pairs}
            for code, pairs in manifest["ground_truth"].items()
        }
    records = []
    for entry in entries:
        graph = load_graph(cache_dir / entry["file"])
        records.append(
            GraphRecord(
                graph=graph,
                dataset=entry["dataset"],
                family=entry["family"],
                function=entry["function"],
                category=entry["category"],
                ground_truth=shared_truth[entry["dataset"]],
                build_seconds=entry["build_seconds"],
                artifact_seconds=entry.get("artifact_seconds", 0.0),
                matrix_seconds=entry.get("matrix_seconds", 0.0),
                graph_seconds=entry.get("graph_seconds", 0.0),
                dedup_ratio=entry.get("dedup_ratio", 1.0),
                candidate_reduction=entry.get("candidate_reduction", 1.0),
            )
        )
    return records


# ----------------------------------------------------------------------
# Run-journal codecs: one generation group's records as one entry
# ----------------------------------------------------------------------
def _write_record_chunk(chunk, path: Path, save) -> None:
    """Journal one group's records: per-record graph files plus a
    ``records.json`` (same meta/ground-truth layout as the corpus
    manifest, so the round-trip shares the manifest's bit-identity
    guarantees)."""
    ground_truth: dict[str, list] = {}
    graphs = []
    for index, record in enumerate(chunk):
        filename = f"graph_{index:03d}.npz"
        save(record.graph, path / filename)
        if record.dataset not in ground_truth:
            ground_truth[record.dataset] = sorted(record.ground_truth)
        graphs.append(_record_meta(record, filename))
    (path / "records.json").write_text(
        json.dumps({"ground_truth": ground_truth, "graphs": graphs})
    )


def _read_record_chunk(path: Path, load, cls) -> list:
    payload = json.loads((path / "records.json").read_text())
    shared_truth = {
        code: {tuple(pair) for pair in pairs}
        for code, pairs in payload["ground_truth"].items()
    }
    return [
        cls(
            graph=load(path / entry["file"]),
            dataset=entry["dataset"],
            family=entry["family"],
            function=entry["function"],
            category=entry["category"],
            ground_truth=shared_truth[entry["dataset"]],
            build_seconds=entry["build_seconds"],
            artifact_seconds=entry["artifact_seconds"],
            matrix_seconds=entry["matrix_seconds"],
            graph_seconds=entry["graph_seconds"],
            dedup_ratio=entry.get("dedup_ratio", 1.0),
            candidate_reduction=entry.get("candidate_reduction", 1.0),
        )
        for entry in payload["graphs"]
    ]


def _write_corpus_entry(chunk, path: Path) -> None:
    _write_record_chunk(chunk, path, save_graph)


def _read_corpus_entry(path: Path) -> list[GraphRecord]:
    return _read_record_chunk(path, load_graph, GraphRecord)


def _write_dirty_entry(chunk, path: Path) -> None:
    _write_record_chunk(chunk, path, save_unipartite_graph)


def _read_dirty_entry(path: Path) -> list[DirtyGraphRecord]:
    return _read_record_chunk(path, load_unipartite_graph, DirtyGraphRecord)


def _write_shard_entry(payload: dict, path: Path) -> None:
    """Journal one shard task: an npz edge spill plus a ``shard.json``
    with the timings and (on the stats shard) savings statistics.  The
    arrays round-trip bit-exactly through the uncompressed npz, so a
    resumed run merges the same corpus as an uninterrupted one."""
    arrays = {}
    meta = {"specs": [], "stats": payload["stats"]}
    for index, spec in enumerate(payload["specs"]):
        arrays[f"left_{index}"] = np.asarray(spec["left"], dtype=np.int64)
        arrays[f"right_{index}"] = np.asarray(spec["right"], dtype=np.int64)
        arrays[f"values_{index}"] = np.asarray(
            spec["values"], dtype=np.float64
        )
        meta["specs"].append(
            {
                "artifact_seconds": spec["artifact_seconds"],
                "matrix_seconds": spec["matrix_seconds"],
            }
        )
    np.savez(path / "edges.npz", **arrays)
    (path / "shard.json").write_text(json.dumps(meta))


def _read_shard_entry(path: Path) -> dict:
    meta = json.loads((path / "shard.json").read_text())
    with np.load(path / "edges.npz") as arrays:
        specs = [
            {
                "left": arrays[f"left_{index}"],
                "right": arrays[f"right_{index}"],
                "values": arrays[f"values_{index}"],
                **entry,
            }
            for index, entry in enumerate(meta["specs"])
        ]
    return {"specs": specs, "stats": meta["stats"]}


_CORPUS_JOURNAL_CODEC = JournalCodec(
    write=_write_corpus_entry, read=_read_corpus_entry
)
_DIRTY_JOURNAL_CODEC = JournalCodec(
    write=_write_dirty_entry, read=_read_dirty_entry
)
_SHARD_JOURNAL_CODEC = JournalCodec(
    write=_write_shard_entry, read=_read_shard_entry
)


# ======================================================================
# Dirty-ER corpus mode: self-join similarity graphs
# ======================================================================
def _self_join_dataset(dataset: CleanCleanDataset) -> CleanCleanDataset:
    """The dirty-ER view of a Clean-Clean dataset: the union collection
    joined with itself.

    Both "sides" are the same union collection (left profiles first,
    right profiles shifted by ``n_left``), so the similarity engine —
    artifact cache, kernel engine, persistent store and all — computes
    the full self-join matrix without knowing it is a self join.  The
    merged ground truth is the original cross-collection duplicate set
    in merged ids (always canonical: ``i < n_left <= n_left + j``).
    """
    import dataclasses as _dataclasses

    n_left = len(dataset.left)
    union = EntityCollection(
        f"{dataset.code}-union",
        list(dataset.left.profiles) + list(dataset.right.profiles),
    )
    truth = {(i, n_left + j) for i, j in dataset.ground_truth}
    spec = _dataclasses.replace(
        dataset.spec,
        code=_self_join_code(dataset.code),
        n_left=len(union),
        n_right=len(union),
        n_duplicates=len(truth),
    )
    return CleanCleanDataset(
        spec=spec, left=union, right=union, ground_truth=truth
    )


def _self_join_code(code: str) -> str:
    """Store/dataset identity of the self-join view — distinct from the
    bipartite dataset, so their artifacts never share a store key."""
    return f"{code}+self"


def _make_dirty_engine(
    config: GraphCorpusConfig, code: str, threads: int = 1
) -> SimilarityEngine:
    """An engine over the self-join dataset, store-backed when configured."""
    store = None
    if config.artifact_store is not None:
        store = ArtifactStore(
            config.artifact_store, read_tier=config.store_read_tier
        )
    return SimilarityEngine(
        _self_join_dataset(_generate(config, code)),
        threads=threads,
        store=store,
        dataset_key=dataset_store_key(
            _self_join_code(code), config.scale, config.max_pairs, config.seed
        ),
        blocking=config.blocking,
    )


def generate_dirty_corpus(
    config: GraphCorpusConfig,
    cache_dir: str | Path | None = None,
    progress: bool = False,
    workers: int | None = None,
    artifact_store: str | Path | None = None,
    store_read_tier: str | Path | None = None,
    resume: bool = False,
    journal_dir: str | Path | None = None,
    policy: RetryPolicy | None = None,
    blocking: str | None = None,
) -> list[DirtyGraphRecord]:
    """Generate (or load from cache) the dirty-ER self-join corpus.

    Mirrors :func:`generate_corpus` one workload over: the same spec
    taxonomy is evaluated on the *union* collection joined with
    itself, and each matrix's strict upper triangle becomes a
    :class:`~repro.graph.unipartite.UnipartiteGraph` for the
    clustering algorithms of :mod:`repro.extensions.dirty_er`.
    ``workers`` and ``artifact_store`` behave exactly as in
    :func:`generate_corpus`: wall-clock only, never results.
    ``resume`` / ``journal_dir`` / ``policy`` are the resilience knobs
    of :func:`generate_corpus`, under the ``dirty-`` run key.
    ``blocking`` mirrors the clean-clean semantics over the self join:
    candidates are generated union-against-union and only upper-triangle
    (``u < v``) candidate pairs become edges, so the scheme changes the
    corpus (and its cache key) exactly as in :func:`generate_corpus`.
    The ``max_memory`` shard tier is a bipartite-corpus feature; a
    config carrying one is rejected here.
    """
    if config.max_memory is not None:
        raise ValueError(
            "max_memory sharding is not supported for the dirty-ER "
            "self-join corpus yet; drop the budget or run the "
            "bipartite corpus"
        )
    if artifact_store is not None:
        config = dataclasses.replace(
            config, artifact_store=str(artifact_store)
        )
    if store_read_tier is not None:
        config = dataclasses.replace(
            config, store_read_tier=str(store_read_tier)
        )
    if blocking is not None:
        config = dataclasses.replace(config, blocking=str(blocking))
    if config.blocking is not None:
        from repro.pipeline.blocking import canonical_blocking

        config = dataclasses.replace(
            config, blocking=canonical_blocking(config.blocking)
        )
    if cache_dir is not None:
        cache_dir = Path(cache_dir) / f"dirty_{config.cache_key()}"
        manifest_path = cache_dir / _MANIFEST_NAME
        if manifest_path.exists():
            return _load_dirty_cached(cache_dir)

    n_workers = config.workers if workers is None else workers
    tasks = _corpus_tasks(config)
    journal = _make_run_journal(
        journal_dir, resume, f"dirty-{config.cache_key()}"
    )
    use_pool = n_workers > 1 and len(tasks) > 1
    threads = 1 if use_pool else max(n_workers, 1)
    runner = ResilientPool(
        n_workers if use_pool else 0,
        kind="process",
        policy=policy,
        journal=journal,
        codec=_DIRTY_JOURNAL_CODEC,
        label="dirty-corpus",
    )
    on_result = None
    if progress:

        def on_result(key, chunk):
            for record in chunk:
                _print_progress(record)

    chunks = runner.run(
        [
            Task(
                key=f"{index:03d}:{code}",
                fn=_dirty_group_worker,
                args=((config, code, group, threads),),
            )
            for index, (code, group) in enumerate(tasks)
        ],
        on_result=on_result,
    )
    records = [record for chunk in chunks.values() for record in chunk]

    if cache_dir is not None:
        _store_dirty_cache(cache_dir, records, workers=n_workers)
    if journal is not None:
        journal.clear()
    return records


def _dirty_group_worker(
    task: tuple[GraphCorpusConfig, str, SpecGroup, int],
) -> list[DirtyGraphRecord]:
    config, code, group, threads = task
    key = _engine_memo_key(config, _self_join_code(code), threads)
    engine = _WORKER_STATE.get(key)
    if engine is None:
        engine = _make_dirty_engine(config, code, threads=threads)
        _WORKER_STATE.clear()
        _WORKER_STATE[key] = engine
    return _dirty_group_records(engine, group, code)


def _dirty_group_records(
    engine: SimilarityEngine,
    group: SpecGroup,
    base_code: str,
) -> list[DirtyGraphRecord]:
    from repro.datasets.catalog import CATEGORY_BY_DATASET

    dataset = engine.dataset
    records: list[DirtyGraphRecord] = []
    for spec in group.specs:
        start = time.perf_counter()
        metadata = {
            "dataset": dataset.code,
            "family": spec.family,
            "function": spec.name,
        }
        dedup_ratio = 1.0
        candidate_reduction = 1.0
        if engine.blocking is None:
            matrix, artifact_seconds, matrix_seconds = (
                engine.compute_timed(spec)
            )
            graph_start = time.perf_counter()
            graph = matrix_to_unipartite_graph(
                matrix,
                name=f"{dataset.code}:{spec.name}",
                metadata=metadata,
            )
        else:
            # The clean-clean semantics over the self join: candidates
            # come from the union collection joined with itself and
            # only the strict upper triangle survives (the diagonal
            # and mirrored duplicates drop in pairs_to_unipartite_graph).
            pairs, artifact_seconds, matrix_seconds = (
                engine.compute_pairs_timed(spec)
            )
            graph_start = time.perf_counter()
            graph = pairs_to_unipartite_graph(
                len(dataset.left),
                pairs.left,
                pairs.right,
                pairs.values,
                name=f"{dataset.code}:{spec.name}",
                metadata={**metadata, "blocking": engine.blocking},
            )
            candidate_reduction = engine.cache.candidate_set(
                engine.blocking
            ).reduction
        if spec.family == "schema_based_syntactic":
            attribute = spec.details["attribute"]
            if engine.blocking is None:
                dedup_ratio = engine.cache.string_batch(
                    attribute
                ).plan.dedup_ratio
            else:
                dedup_ratio = engine.cache.sparse_plan(
                    attribute, engine.blocking
                ).dedup_ratio
        graph_seconds = time.perf_counter() - graph_start
        elapsed = time.perf_counter() - start
        if _all_dirty_matches_zero(graph, dataset.ground_truth):
            continue
        records.append(
            DirtyGraphRecord(
                graph=graph,
                dataset=dataset.code,
                family=spec.family,
                function=spec.name,
                category=CATEGORY_BY_DATASET[base_code],
                ground_truth=dataset.ground_truth,
                build_seconds=elapsed,
                artifact_seconds=artifact_seconds,
                matrix_seconds=matrix_seconds,
                graph_seconds=graph_seconds,
                dedup_ratio=dedup_ratio,
                candidate_reduction=candidate_reduction,
            )
        )
    return records


def _all_dirty_matches_zero(
    graph: UnipartiteGraph, ground_truth: set[tuple[int, int]]
) -> bool:
    """Dirty counterpart of :func:`_all_matches_zero` (merged-id pairs)."""
    if not ground_truth or graph.n_edges == 0:
        return True
    truth = np.array(sorted(ground_truth), dtype=np.int64)
    stride = np.int64(graph.n_nodes)
    edge_keys = graph.u * stride + graph.v
    truth_keys = truth[:, 0] * stride + truth[:, 1]
    return not bool(np.isin(truth_keys, edge_keys).any())


def _store_dirty_cache(
    cache_dir: Path, records: list[DirtyGraphRecord], workers: int = 1
) -> None:
    """Persist the dirty corpus; same layout discipline as
    :func:`_store_cache` (sharded graph writes, manifest last)."""
    cache_dir.mkdir(parents=True, exist_ok=True)
    filenames = [f"graph_{index:04d}.npz" for index in range(len(records))]
    _sharded_graph_writes(
        cache_dir, records, filenames, save_unipartite_graph, workers
    )
    ground_truth: dict[str, list] = {}
    graphs = []
    for record, filename in zip(records, filenames):
        if record.dataset not in ground_truth:
            ground_truth[record.dataset] = sorted(record.ground_truth)
        graphs.append(_record_meta(record, filename))
    manifest = {
        "version": _DIRTY_MANIFEST_VERSION,
        "kind": "dirty",
        "ground_truth": ground_truth,
        "graphs": graphs,
    }
    (cache_dir / _MANIFEST_NAME).write_text(json.dumps(manifest))


def _load_dirty_cached(cache_dir: Path) -> list[DirtyGraphRecord]:
    manifest = json.loads((cache_dir / _MANIFEST_NAME).read_text())
    shared_truth = {
        code: {tuple(pair) for pair in pairs}
        for code, pairs in manifest["ground_truth"].items()
    }
    records = []
    for entry in manifest["graphs"]:
        graph = load_unipartite_graph(cache_dir / entry["file"])
        records.append(
            DirtyGraphRecord(
                graph=graph,
                dataset=entry["dataset"],
                family=entry["family"],
                function=entry["function"],
                category=entry["category"],
                ground_truth=shared_truth[entry["dataset"]],
                build_seconds=entry["build_seconds"],
                artifact_seconds=entry.get("artifact_seconds", 0.0),
                matrix_seconds=entry.get("matrix_seconds", 0.0),
                graph_seconds=entry.get("graph_seconds", 0.0),
                dedup_ratio=entry.get("dedup_ratio", 1.0),
                candidate_reduction=entry.get("candidate_reduction", 1.0),
            )
        )
    return records
