"""Graph-corpus generation workbench.

Regenerates the paper's experimental input: for every dataset profile
and every similarity function of the taxonomy, the all-pairs
similarity graph.  The corpus is persisted under a cache directory
(one ``.npz`` per graph plus a JSON manifest) so the benchmark
harnesses can re-use it across runs; the cache key includes the scale,
seed and configuration, so changing any knob regenerates.

The paper also removes degenerate inputs ("special care was taken to
clean the experimental results from noise"); the corresponding filters
live in :mod:`repro.evaluation.filtering` and are applied at analysis
time, with the zero-evidence filter (all matching pairs at weight 0)
applied already at generation time here.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.datasets.catalog import DATASET_CODES, dataset_spec
from repro.datasets.generator import CleanCleanDataset, generate_dataset
from repro.graph.bipartite import SimilarityGraph
from repro.graph.io import load_graph, save_graph
from repro.pipeline.graph_builder import matrix_to_graph
from repro.pipeline.similarity_functions import (
    FAMILIES,
    compute_similarity_matrix,
    enumerate_functions,
)

__all__ = ["GraphCorpusConfig", "GraphRecord", "generate_corpus"]

_MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class GraphCorpusConfig:
    """Configuration of one graph corpus.

    ``datasets`` / ``families`` restrict the corpus; ``scale`` and
    ``max_pairs`` feed the dataset catalog; ``seed`` drives all
    randomness.  ``schema_based_measures`` / ``ngram_models`` etc. can
    shrink the taxonomy for quick runs (``None`` = the full paper
    configuration).
    """

    datasets: tuple[str, ...] = DATASET_CODES
    families: tuple[str, ...] = FAMILIES
    scale: float | None = None
    max_pairs: int | None = None
    seed: int = 42
    schema_based_measures: tuple[str, ...] | None = None
    ngram_models: tuple[tuple[str, int], ...] | None = None
    vector_measures: tuple[str, ...] | None = None
    graph_measures: tuple[str, ...] | None = None
    semantic_models: tuple[str, ...] | None = None
    semantic_measures: tuple[str, ...] | None = None
    max_attributes: int | None = None

    def cache_key(self) -> str:
        """A stable hash of every generation-relevant knob."""
        payload = json.dumps(
            {
                "datasets": self.datasets,
                "families": self.families,
                "scale": self.scale,
                "max_pairs": self.max_pairs,
                "seed": self.seed,
                "sbm": self.schema_based_measures,
                "ngm": self.ngram_models,
                "vm": self.vector_measures,
                "gm": self.graph_measures,
                "sm": self.semantic_models,
                "sme": self.semantic_measures,
                "ma": self.max_attributes,
            },
            sort_keys=True,
            default=list,
        )
        import hashlib

        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=8
        ).hexdigest()


@dataclass
class GraphRecord:
    """One corpus entry: the graph plus its provenance.

    ``ground_truth`` is shared by all graphs of the same dataset.
    """

    graph: SimilarityGraph
    dataset: str
    family: str
    function: str
    category: str  # BLC / OSD / SCR
    ground_truth: set[tuple[int, int]]
    build_seconds: float = 0.0

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges


def generate_corpus(
    config: GraphCorpusConfig,
    cache_dir: str | Path | None = None,
    progress: bool = False,
) -> list[GraphRecord]:
    """Generate (or load from cache) the graph corpus for ``config``."""
    if cache_dir is not None:
        cache_dir = Path(cache_dir) / config.cache_key()
        manifest_path = cache_dir / _MANIFEST_NAME
        if manifest_path.exists():
            return _load_cached(cache_dir)

    records: list[GraphRecord] = []
    for code in config.datasets:
        dataset = generate_dataset(
            dataset_spec(code, scale=config.scale, max_pairs=config.max_pairs),
            seed=config.seed,
        )
        records.extend(_dataset_records(dataset, config, progress))

    if cache_dir is not None:
        _store_cache(cache_dir, records)
    return records


def _enumerate_kwargs(config: GraphCorpusConfig) -> dict:
    kwargs: dict = {"families": config.families}
    if config.schema_based_measures is not None:
        kwargs["schema_based_measures"] = config.schema_based_measures
    if config.ngram_models is not None:
        kwargs["ngram_models"] = tuple(
            (unit, int(n)) for unit, n in config.ngram_models
        )
    if config.vector_measures is not None:
        kwargs["vector_measures"] = config.vector_measures
    if config.graph_measures is not None:
        kwargs["graph_measures"] = config.graph_measures
    if config.semantic_models is not None:
        kwargs["semantic_models"] = config.semantic_models
    if config.semantic_measures is not None:
        kwargs["semantic_measures"] = config.semantic_measures
    if config.max_attributes is not None:
        kwargs["max_attributes"] = config.max_attributes
    return kwargs


def _dataset_records(
    dataset: CleanCleanDataset,
    config: GraphCorpusConfig,
    progress: bool,
) -> list[GraphRecord]:
    from repro.datasets.catalog import CATEGORY_BY_DATASET

    records: list[GraphRecord] = []
    specs = enumerate_functions(dataset, **_enumerate_kwargs(config))
    for spec in specs:
        start = time.perf_counter()
        matrix = compute_similarity_matrix(dataset, spec)
        graph = matrix_to_graph(
            matrix,
            name=f"{dataset.code}:{spec.name}",
            metadata={
                "dataset": dataset.code,
                "family": spec.family,
                "function": spec.name,
            },
        )
        elapsed = time.perf_counter() - start
        if _all_matches_zero(graph, dataset.ground_truth):
            # The paper removes graphs "where all matching entities had
            # a zero edge weight" — they carry no signal at all.
            continue
        records.append(
            GraphRecord(
                graph=graph,
                dataset=dataset.code,
                family=spec.family,
                function=spec.name,
                category=CATEGORY_BY_DATASET[dataset.code],
                ground_truth=dataset.ground_truth,
                build_seconds=elapsed,
            )
        )
        if progress:
            print(
                f"[workbench] {dataset.code} {spec.name}: "
                f"m={graph.n_edges} ({elapsed:.2f}s)"
            )
    return records


def _all_matches_zero(
    graph: SimilarityGraph, ground_truth: set[tuple[int, int]]
) -> bool:
    edges = set(zip(graph.left.tolist(), graph.right.tolist()))
    return all(pair not in edges for pair in ground_truth)


def _store_cache(cache_dir: Path, records: list[GraphRecord]) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    manifest = []
    for index, record in enumerate(records):
        filename = f"graph_{index:04d}.npz"
        save_graph(record.graph, cache_dir / filename)
        manifest.append(
            {
                "file": filename,
                "dataset": record.dataset,
                "family": record.family,
                "function": record.function,
                "category": record.category,
                "ground_truth": sorted(record.ground_truth),
                "build_seconds": record.build_seconds,
            }
        )
    (cache_dir / _MANIFEST_NAME).write_text(json.dumps(manifest))


def _load_cached(cache_dir: Path) -> list[GraphRecord]:
    manifest = json.loads((cache_dir / _MANIFEST_NAME).read_text())
    records = []
    for entry in manifest:
        graph = load_graph(cache_dir / entry["file"])
        records.append(
            GraphRecord(
                graph=graph,
                dataset=entry["dataset"],
                family=entry["family"],
                function=entry["function"],
                category=entry["category"],
                ground_truth={tuple(pair) for pair in entry["ground_truth"]},
                build_seconds=entry["build_seconds"],
            )
        )
    return records
