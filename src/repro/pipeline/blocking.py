"""Candidate-generation (blocking) schemes for the similarity pipeline.

The corpus engine scores the full ``n x m`` cross product by default,
exactly as in the paper's protocol.  This module provides the optional
stage in front of it: three composable blocking schemes, each turning
the two entity collections into a deterministic, seed-stable
:class:`CandidateSet` — a sorted COO list of record pairs worth
scoring — so the sparse scoring path
(:class:`~repro.pipeline.kernels.SparsePlan` +
:func:`~repro.pipeline.batched_strings.schema_based_pairs`) never
materializes the dense grid.

Schemes (composable with ``+``, union semantics):

``tokens``
    Token / q-gram inverted-index blocking.  Records sharing at least
    one surviving token become candidates.  Tokens whose document
    frequency exceeds ``max_df`` (fraction of all records) are dropped
    as stop tokens before the join — deterministic pruning, no
    sampling.  ``q=0`` blocks on word tokens, ``q>=2`` on padded
    character q-grams.

``prefix``
    Prefix filtering with admissible upper bounds for the token-set
    Jaccard similarity at threshold ``t``.  Each left record indexes
    only its ``|x| - ceil(t*|x|) + 1`` globally rarest tokens; right
    records probe with all of theirs.  If ``J(x, y) >= t`` then the
    (integer) overlap is at least ``ceil(t*|x|)``, so one shared token
    must land in the left prefix — the pair cannot be pruned.  A
    second admissible bound, ``min(|x|,|y|) / max(|x|,|y|) >= t``,
    discards length-incompatible survivors.

``minhash``
    MinHash-LSH banding.  Token sets are hashed with stable blake2b
    digests, permuted by seeded wrap-around multiply-add hashing
    (``perms`` permutations), and records whose signatures collide in
    any of ``bands`` bands become candidates.  Fully reproducible for
    a fixed ``seed``; no run-to-run randomness.

Specs are strings — ``"tokens:max_df=0.2+minhash:bands=8,seed=7"`` —
parsed by :func:`parse_blocking_spec` and canonicalized by
:func:`canonical_blocking` so equivalent spellings share cache and
:class:`~repro.pipeline.store.ArtifactStore` entries.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

from repro.textsim.tokenize import character_ngrams, tokens

__all__ = [
    "BlockingIndex",
    "CandidateSet",
    "SchemeSpec",
    "build_candidate_set",
    "build_blocking_index",
    "canonical_blocking",
    "parse_blocking_spec",
]

# Defaults per scheme; also the authoritative list of known parameters.
_SCHEME_DEFAULTS: dict[str, dict[str, float | int]] = {
    "tokens": {"max_df": 0.5, "q": 0},
    "prefix": {"threshold": 0.4},
    "minhash": {"bands": 16, "perms": 64, "seed": 42},
}

_INT_PARAMS = {"q", "bands", "perms", "seed"}

# Admissibility epsilon: thresholds only ever get *more* permissive,
# never less, so float rounding can not prune a qualifying pair.
_EPS = 1e-9

_MIX = np.uint64(0x9E3779B97F4A7C15)


@dataclass(frozen=True)
class SchemeSpec:
    """One parsed blocking scheme with fully-resolved parameters."""

    name: str
    params: tuple[tuple[str, float | int], ...]

    def param(self, key: str) -> float | int:
        return dict(self.params)[key]

    @property
    def canonical(self) -> str:
        parts = ",".join(f"{k}={v:g}" for k, v in self.params)
        return f"{self.name}:{parts}" if parts else self.name


def parse_blocking_spec(text: str) -> tuple[SchemeSpec, ...]:
    """Parse ``scheme[:k=v,...][+scheme...]`` into resolved specs.

    Unknown schemes or parameters raise :class:`ValueError`; omitted
    parameters take the documented defaults.  The returned tuple is
    sorted by canonical form (union is commutative) and de-duplicated.
    """
    if not isinstance(text, str) or not text.strip():
        raise ValueError("blocking spec must be a non-empty string")
    specs = []
    for chunk in text.split("+"):
        chunk = chunk.strip()
        if not chunk:
            raise ValueError(f"empty scheme in blocking spec {text!r}")
        name, _, tail = chunk.partition(":")
        name = name.strip().lower()
        if name not in _SCHEME_DEFAULTS:
            known = ", ".join(sorted(_SCHEME_DEFAULTS))
            raise ValueError(
                f"unknown blocking scheme {name!r} (known: {known})"
            )
        params = dict(_SCHEME_DEFAULTS[name])
        if tail.strip():
            for pair in tail.split(","):
                key, sep, value = pair.partition("=")
                key = key.strip().lower()
                if not sep or key not in params:
                    known = ", ".join(sorted(params))
                    raise ValueError(
                        f"bad parameter {pair.strip()!r} for scheme "
                        f"{name!r} (known: {known})"
                    )
                try:
                    params[key] = (
                        int(value) if key in _INT_PARAMS else float(value)
                    )
                except ValueError:
                    raise ValueError(
                        f"non-numeric value {value.strip()!r} for "
                        f"{name}:{key}"
                    ) from None
        _validate_params(name, params)
        specs.append(
            SchemeSpec(name, tuple(sorted(params.items())))
        )
    unique = sorted(set(specs), key=lambda spec: spec.canonical)
    return tuple(unique)


def _validate_params(name: str, params: dict[str, float | int]) -> None:
    if name == "tokens":
        if not 0.0 < params["max_df"] <= 1.0:
            raise ValueError("tokens:max_df must be in (0, 1]")
        if params["q"] < 0 or params["q"] == 1:
            raise ValueError("tokens:q must be 0 (words) or >= 2")
    elif name == "prefix":
        if not 0.0 < params["threshold"] <= 1.0:
            raise ValueError("prefix:threshold must be in (0, 1]")
    elif name == "minhash":
        if params["perms"] < 1 or params["bands"] < 1:
            raise ValueError("minhash:perms and minhash:bands must be >= 1")
        if params["perms"] % params["bands"]:
            raise ValueError(
                "minhash:perms must be divisible by minhash:bands"
            )


def canonical_blocking(text: str) -> str:
    """The canonical spelling of a blocking spec string."""
    return "+".join(spec.canonical for spec in parse_blocking_spec(text))


@dataclass(frozen=True)
class CandidateSet:
    """A deterministic sorted-COO list of candidate record pairs.

    ``left``/``right`` are parallel ``intp`` arrays sorted
    lexicographically by ``(left, right)`` with no duplicates, so two
    builds of the same spec over the same collections compare equal
    array-for-array.  ``stats`` records per-scheme raw pair counts
    (before union/dedup) for inspection and reports.
    """

    n_left: int
    n_right: int
    scheme: str
    left: np.ndarray = field(compare=False)
    right: np.ndarray = field(compare=False)
    stats: tuple[tuple[str, int], ...] = ()

    @property
    def n_pairs(self) -> int:
        return int(self.left.shape[0])

    @property
    def reduction(self) -> float:
        """Dense cells per retained candidate pair (higher is better)."""
        total = self.n_left * self.n_right
        if self.n_pairs == 0:
            return float(total) if total else 1.0
        return total / self.n_pairs

    def recall(self, ground_truth: set[tuple[int, int]]) -> float:
        """Fraction of ground-truth pairs retained (1.0 when empty)."""
        if not ground_truth:
            return 1.0
        truth = np.asarray(sorted(ground_truth), dtype=np.int64)
        stride = np.int64(self.n_right)
        folded_truth = truth[:, 0] * stride + truth[:, 1]
        folded = self.left.astype(np.int64) * stride + self.right
        hits = np.isin(folded_truth, folded).sum()
        return float(hits) / len(ground_truth)

    def union(self, other: "CandidateSet") -> "CandidateSet":
        if (self.n_left, self.n_right) != (other.n_left, other.n_right):
            raise ValueError("candidate sets cover different collections")
        left = np.concatenate([self.left, other.left])
        right = np.concatenate([self.right, other.right])
        left, right = _dedupe_pairs(left, right, self.n_right)
        return CandidateSet(
            n_left=self.n_left,
            n_right=self.n_right,
            scheme=f"{self.scheme}+{other.scheme}",
            left=left,
            right=right,
            stats=self.stats + other.stats,
        )


def build_candidate_set(
    lefts: list[str], rights: list[str], spec: str
) -> CandidateSet:
    """Build the candidate set for ``spec`` over schema-agnostic texts."""
    specs = parse_blocking_spec(spec)
    n_left, n_right = len(lefts), len(rights)
    parts: list[tuple[np.ndarray, np.ndarray]] = []
    stats: list[tuple[str, int]] = []
    for scheme in specs:
        if scheme.name == "tokens":
            pair = _token_pairs(lefts, rights, scheme)
        elif scheme.name == "prefix":
            pair = _prefix_pairs(lefts, rights, scheme)
        else:
            pair = _minhash_pairs(lefts, rights, scheme)
        stats.append((f"{scheme.canonical}:pairs", int(pair[0].shape[0])))
        parts.append(pair)
    left = np.concatenate([p[0] for p in parts])
    right = np.concatenate([p[1] for p in parts])
    left, right = _dedupe_pairs(left, right, n_right)
    return CandidateSet(
        n_left=n_left,
        n_right=n_right,
        scheme="+".join(s.canonical for s in specs),
        left=left,
        right=right,
        stats=tuple(stats),
    )


# ----------------------------------------------------------------------
# shared machinery
# ----------------------------------------------------------------------


def _dedupe_pairs(
    left: np.ndarray, right: np.ndarray, n_right: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sort pairs lexicographically and drop duplicates."""
    if left.shape[0] == 0:
        empty = np.zeros(0, dtype=np.intp)
        return empty, empty.copy()
    folded = left.astype(np.int64) * np.int64(max(n_right, 1)) + right
    folded = np.unique(folded)
    left, right = np.divmod(folded, np.int64(max(n_right, 1)))
    return left.astype(np.intp), right.astype(np.intp)


def _record_tokens(texts: list[str], q: int) -> list[list[str]]:
    """Sorted distinct blocking keys per record."""
    if q:
        return [
            sorted(set(character_ngrams(text, q))) if text else []
            for text in texts
        ]
    return [sorted(set(tokens(text))) for text in texts]


def _vocabulary_ids(
    left_tokens: list[list[str]], right_tokens: list[list[str]]
) -> tuple[list[str], list[np.ndarray], list[np.ndarray]]:
    """First-occurrence token vocabulary + per-record id arrays."""
    vocabulary: dict[str, int] = {}
    sides = []
    for token_lists in (left_tokens, right_tokens):
        ids = []
        for record in token_lists:
            ids.append(
                np.asarray(
                    [
                        vocabulary.setdefault(token, len(vocabulary))
                        for token in record
                    ],
                    dtype=np.int64,
                )
            )
        sides.append(ids)
    return list(vocabulary), sides[0], sides[1]


def _flatten_ids(
    per_record: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-record id arrays with parallel record indices."""
    lengths = np.asarray([ids.shape[0] for ids in per_record], dtype=np.int64)
    if lengths.sum() == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    flat = np.concatenate([ids for ids in per_record if ids.shape[0]])
    records = np.repeat(np.arange(len(per_record), dtype=np.int64), lengths)
    return flat, records


def _join_postings(
    left_keys: np.ndarray,
    left_records: np.ndarray,
    right_keys: np.ndarray,
    right_records: np.ndarray,
    n_keys: int,
) -> tuple[np.ndarray, np.ndarray]:
    """All (left record, right record) pairs sharing a key.

    Inputs are parallel ``(key id, record)`` arrays per side.  Returns
    raw pairs with duplicates; callers dedupe.  Fully vectorized: each
    left entry is repeated once per right posting of its key, and the
    matching right entries are gathered with a grouped arange.
    """
    empty = np.zeros(0, dtype=np.int64)
    if left_keys.shape[0] == 0 or right_keys.shape[0] == 0:
        return empty, empty.copy()
    order = np.argsort(right_keys, kind="stable")
    right_keys = right_keys[order]
    right_records = right_records[order]
    right_counts = np.bincount(right_keys, minlength=n_keys)
    right_starts = np.concatenate(
        [[0], np.cumsum(right_counts)[:-1]]
    ).astype(np.int64)
    lengths = right_counts[left_keys]
    total = int(lengths.sum())
    if total == 0:
        return empty, empty.copy()
    pair_left = np.repeat(left_records, lengths)
    base = np.repeat(right_starts[left_keys], lengths)
    starts = np.cumsum(lengths) - lengths
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
    pair_right = right_records[base + offsets]
    return pair_left, pair_right


# ----------------------------------------------------------------------
# scheme: tokens (inverted index)
# ----------------------------------------------------------------------


def _token_pairs(
    lefts: list[str], rights: list[str], scheme: SchemeSpec
) -> tuple[np.ndarray, np.ndarray]:
    q = int(scheme.param("q"))
    max_df = float(scheme.param("max_df"))
    left_tokens = _record_tokens(lefts, q)
    right_tokens = _record_tokens(rights, q)
    vocabulary, left_ids, right_ids = _vocabulary_ids(
        left_tokens, right_tokens
    )
    if not vocabulary:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    flat_left, rec_left = _flatten_ids(left_ids)
    flat_right, rec_right = _flatten_ids(right_ids)
    df = np.bincount(
        np.concatenate([flat_left, flat_right]), minlength=len(vocabulary)
    )
    limit = max_df * (len(lefts) + len(rights)) + _EPS
    keep = df <= limit
    left_mask = keep[flat_left]
    right_mask = keep[flat_right]
    return _join_postings(
        flat_left[left_mask],
        rec_left[left_mask],
        flat_right[right_mask],
        rec_right[right_mask],
        len(vocabulary),
    )


# ----------------------------------------------------------------------
# scheme: prefix (admissible prefix filtering for token Jaccard)
# ----------------------------------------------------------------------


def _prefix_pairs(
    lefts: list[str], rights: list[str], scheme: SchemeSpec
) -> tuple[np.ndarray, np.ndarray]:
    threshold = float(scheme.param("threshold"))
    left_tokens = _record_tokens(lefts, 0)
    right_tokens = _record_tokens(rights, 0)
    vocabulary, left_ids, right_ids = _vocabulary_ids(
        left_tokens, right_tokens
    )
    empty = np.zeros(0, dtype=np.int64)
    if not vocabulary:
        return empty, empty.copy()
    flat_left, _ = _flatten_ids(left_ids)
    flat_right, _ = _flatten_ids(right_ids)
    df = np.bincount(
        np.concatenate([flat_left, flat_right]), minlength=len(vocabulary)
    )
    # Global rarity order: rarest-first, ties by token text so the
    # order (and hence the candidate set) is fully deterministic.
    order = sorted(range(len(vocabulary)), key=lambda i: (df[i], vocabulary[i]))
    rank = np.zeros(len(vocabulary), dtype=np.int64)
    rank[np.asarray(order, dtype=np.int64)] = np.arange(
        len(vocabulary), dtype=np.int64
    )
    prefix_ids = []
    for ids in left_ids:
        size = ids.shape[0]
        if size == 0:
            prefix_ids.append(ids)
            continue
        # J(x, y) >= t implies integer overlap >= ceil(t*|x|); the
        # epsilon only ever lengthens the prefix (more permissive).
        required = max(int(math.ceil(threshold * size - _EPS)), 1)
        count = size - required + 1
        by_rarity = ids[np.argsort(rank[ids], kind="stable")]
        prefix_ids.append(by_rarity[:count])
    probe_left, rec_left = _flatten_ids(prefix_ids)
    probe_right, rec_right = _flatten_ids(right_ids)
    pair_left, pair_right = _join_postings(
        probe_left, rec_left, probe_right, rec_right, len(vocabulary)
    )
    if pair_left.shape[0] == 0:
        return pair_left, pair_right
    sizes_left = np.asarray(
        [ids.shape[0] for ids in left_ids], dtype=np.int64
    )
    sizes_right = np.asarray(
        [ids.shape[0] for ids in right_ids], dtype=np.int64
    )
    size_x = sizes_left[pair_left]
    size_y = sizes_right[pair_right]
    # Length bound: J <= min/max, so min < t*max cannot reach t.
    keep = np.minimum(size_x, size_y) >= (
        threshold * np.maximum(size_x, size_y) - _EPS
    )
    return pair_left[keep], pair_right[keep]


# ----------------------------------------------------------------------
# scheme: minhash (LSH banding)
# ----------------------------------------------------------------------


def _token_hash(token: str) -> int:
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def _minhash_pairs(
    lefts: list[str], rights: list[str], scheme: SchemeSpec
) -> tuple[np.ndarray, np.ndarray]:
    perms = int(scheme.param("perms"))
    bands = int(scheme.param("bands"))
    seed = int(scheme.param("seed"))
    rows = perms // bands
    left_tokens = _record_tokens(lefts, 0)
    right_tokens = _record_tokens(rights, 0)
    vocabulary, left_ids, right_ids = _vocabulary_ids(
        left_tokens, right_tokens
    )
    empty = np.zeros(0, dtype=np.int64)
    if not vocabulary:
        return empty, empty.copy()
    hashes = np.asarray(
        [_token_hash(token) for token in vocabulary], dtype=np.uint64
    )
    rng = np.random.default_rng(seed)
    high = np.iinfo(np.uint64).max
    mul = rng.integers(1, high, size=perms, dtype=np.uint64) | np.uint64(1)
    add = rng.integers(0, high, size=perms, dtype=np.uint64)
    signatures = []
    keeps = []
    for ids in (left_ids, right_ids):
        flat, _ = _flatten_ids(ids)
        lengths = np.asarray([a.shape[0] for a in ids], dtype=np.int64)
        keep = lengths > 0
        keeps.append(keep)
        if not keep.any():
            signatures.append(np.zeros((0, perms), dtype=np.uint64))
            continue
        offsets = np.concatenate([[0], np.cumsum(lengths[keep])[:-1]])
        values = hashes[flat]
        signature = np.empty((int(keep.sum()), perms), dtype=np.uint64)
        for p in range(perms):
            # Wrap-around multiply-add hashing: deterministic and
            # seed-stable; uint64 overflow is the intended mixing.
            permuted = mul[p] * values + add[p]
            signature[:, p] = np.minimum.reduceat(permuted, offsets)
        signatures.append(signature)
    sig_left, sig_right = signatures
    keep_left, keep_right = keeps
    rec_left = np.flatnonzero(keep_left).astype(np.int64)
    rec_right = np.flatnonzero(keep_right).astype(np.int64)
    if sig_left.shape[0] == 0 or sig_right.shape[0] == 0:
        return empty, empty.copy()
    pairs_left = [empty]
    pairs_right = [empty]
    for band in range(bands):
        chunk = slice(band * rows, (band + 1) * rows)
        key_left = _fold_band(sig_left[:, chunk])
        key_right = _fold_band(sig_right[:, chunk])
        buckets, inverse = np.unique(
            np.concatenate([key_left, key_right]), return_inverse=True
        )
        inv_left = inverse[: key_left.shape[0]]
        inv_right = inverse[key_left.shape[0]:]
        pair_left, pair_right = _join_postings(
            inv_left, rec_left, inv_right, rec_right, buckets.shape[0]
        )
        pairs_left.append(pair_left)
        pairs_right.append(pair_right)
    return np.concatenate(pairs_left), np.concatenate(pairs_right)


def _fold_band(rows_chunk: np.ndarray) -> np.ndarray:
    """Fold a band's signature rows into one bucket key per record."""
    key = rows_chunk[:, 0].copy()
    for column in range(1, rows_chunk.shape[1]):
        key = (key * _MIX) ^ rows_chunk[:, column]
    return key


# ----------------------------------------------------------------------
# Query-time probing (the index half of the index/query split)
# ----------------------------------------------------------------------
#
# The batch path above joins two *whole collections*; a serving layer
# instead indexes one frozen collection once and probes it with single
# records at query time.  :class:`BlockingIndex` freezes everything the
# batch build derives from the corpus — document frequencies, stop-
# token limits, rarity ranks, minhash permutations and the right-side
# posting lists — so that for every record of the left collection it
# was built over, ``probe(lefts[i])`` returns **exactly** the row-``i``
# candidates of ``build_candidate_set(lefts, rights, spec)``
# (``tests/pipeline/test_blocking.py`` asserts the equivalence per
# scheme and for composite specs).  Novel query records reuse the
# frozen statistics — the standard serving convention (IDF frozen at
# index build); an unseen token is treated as a rarest (df = 1) token,
# which is what a batch containing the query would compute, and can
# never surface a candidate anyway unless it appears in the indexed
# collection.


class _TokenProbe:
    """Query-time half of the ``tokens`` inverted-index scheme."""

    def __init__(
        self, lefts: list[str], rights: list[str], scheme: SchemeSpec
    ) -> None:
        self._q = int(scheme.param("q"))
        max_df = float(scheme.param("max_df"))
        left_tokens = _record_tokens(lefts, self._q)
        right_tokens = _record_tokens(rights, self._q)
        df: dict[str, int] = {}
        for record in (*left_tokens, *right_tokens):
            for token in record:
                df[token] = df.get(token, 0) + 1
        limit = max_df * (len(lefts) + len(rights)) + _EPS
        postings: dict[str, list[int]] = {}
        for j, record in enumerate(right_tokens):
            for token in record:
                if df[token] <= limit:
                    postings.setdefault(token, []).append(j)
        self._postings = {
            token: np.asarray(ids, dtype=np.int64)
            for token, ids in postings.items()
        }
        self._df = df
        self._limit = limit

    def ingest(self, texts: list[str], start_id: int) -> None:
        """Index new records under the frozen stop-token statistics.

        An unseen token gets the serving-convention ``df = 1`` (it is
        never a stop token), so ingested records are discoverable
        through exactly the tokens a batch containing them would keep.
        """
        for offset, record in enumerate(_record_tokens(texts, self._q)):
            rid = np.asarray([start_id + offset], dtype=np.int64)
            for token in record:
                if self._df.get(token, 1) > self._limit:
                    continue
                existing = self._postings.get(token)
                self._postings[token] = (
                    rid
                    if existing is None
                    else np.concatenate([existing, rid])
                )

    def _keys(self, text: str) -> list[str]:
        if self._q:
            return sorted(set(character_ngrams(text, self._q))) if text else []
        return sorted(set(tokens(text)))

    def probe(self, text: str) -> np.ndarray:
        parts = [
            self._postings[token]
            for token in self._keys(text)
            if token in self._postings
        ]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)


class _PrefixProbe:
    """Query-time half of the ``prefix`` filtering scheme.

    The query plays the *left* role of the batch join: only its
    ``|x| - ceil(t*|x|) + 1`` rarest tokens (frozen global rarity,
    ties by token text) probe the index, and the index holds postings
    for **all** tokens of the indexed records, exactly as the batch
    build lets right records probe with all of theirs.
    """

    def __init__(
        self, lefts: list[str], rights: list[str], scheme: SchemeSpec
    ) -> None:
        self._threshold = float(scheme.param("threshold"))
        left_tokens = _record_tokens(lefts, 0)
        right_tokens = _record_tokens(rights, 0)
        df: dict[str, int] = {}
        for record in (*left_tokens, *right_tokens):
            for token in record:
                df[token] = df.get(token, 0) + 1
        self._df = df
        postings: dict[str, list[int]] = {}
        for j, record in enumerate(right_tokens):
            for token in record:
                postings.setdefault(token, []).append(j)
        self._postings = {
            token: np.asarray(ids, dtype=np.int64)
            for token, ids in postings.items()
        }
        self._sizes = np.asarray(
            [len(record) for record in right_tokens], dtype=np.int64
        )

    def ingest(self, texts: list[str], start_id: int) -> None:
        """Index new records; the rarity ranks stay frozen.

        Indexed records post *all* their tokens (the batch convention
        for the right side), so only the query-side prefix depends on
        the frozen document frequencies.
        """
        sizes = []
        for offset, record in enumerate(_record_tokens(texts, 0)):
            rid = np.asarray([start_id + offset], dtype=np.int64)
            sizes.append(len(record))
            for token in record:
                existing = self._postings.get(token)
                self._postings[token] = (
                    rid
                    if existing is None
                    else np.concatenate([existing, rid])
                )
        self._sizes = np.concatenate(
            [self._sizes, np.asarray(sizes, dtype=np.int64)]
        )

    def probe(self, text: str) -> np.ndarray:
        query = sorted(set(tokens(text)))
        size = len(query)
        empty = np.zeros(0, dtype=np.int64)
        if size == 0:
            return empty
        required = max(int(math.ceil(self._threshold * size - _EPS)), 1)
        count = size - required + 1
        # Frozen rarity order; an unseen token gets df = 1 (its own
        # occurrence in a batch containing this query), keeping the
        # order identical to the batch rank for in-corpus tokens.
        prefix = sorted(query, key=lambda t: (self._df.get(t, 1), t))[:count]
        parts = [
            self._postings[token]
            for token in prefix
            if token in self._postings
        ]
        if not parts:
            return empty
        candidates = np.concatenate(parts)
        sizes = self._sizes[candidates]
        keep = np.minimum(size, sizes) >= (
            self._threshold * np.maximum(size, sizes) - _EPS
        )
        return candidates[keep]


class _MinhashProbe:
    """Query-time half of the ``minhash`` LSH-banding scheme.

    Banding collisions are pairwise — a query and an indexed record
    collide iff their signatures agree on some band, independent of
    every other record — so the frozen per-band bucket tables
    reproduce the batch candidates exactly for any query.
    """

    def __init__(self, rights: list[str], scheme: SchemeSpec) -> None:
        perms = int(scheme.param("perms"))
        bands = int(scheme.param("bands"))
        seed = int(scheme.param("seed"))
        self._rows = perms // bands
        self._bands = bands
        rng = np.random.default_rng(seed)
        high = np.iinfo(np.uint64).max
        self._mul = (
            rng.integers(1, high, size=perms, dtype=np.uint64) | np.uint64(1)
        )
        self._add = rng.integers(0, high, size=perms, dtype=np.uint64)
        self._buckets: list[dict[int, np.ndarray]] = []
        raw: list[dict[int, list[int]]] = [{} for _ in range(bands)]
        for j, text in enumerate(rights):
            signature = self._signature(text)
            if signature is None:
                continue
            for band, key in enumerate(self._band_keys(signature)):
                raw[band].setdefault(int(key), []).append(j)
        for table in raw:
            self._buckets.append(
                {
                    key: np.asarray(ids, dtype=np.int64)
                    for key, ids in table.items()
                }
            )

    def _signature(self, text: str) -> np.ndarray | None:
        record = sorted(set(tokens(text)))
        if not record:
            return None  # token-less records never enter a band
        values = np.asarray(
            [_token_hash(token) for token in record], dtype=np.uint64
        )
        # Wrap-around multiply-add hashing, exactly as the batch pass;
        # the min over a record's permuted hashes is order-invariant.
        permuted = self._mul[:, None] * values[None, :] + self._add[:, None]
        return permuted.min(axis=1)

    def _band_keys(self, signature: np.ndarray) -> np.ndarray:
        chunks = signature.reshape(self._bands, self._rows)
        return _fold_band(chunks)

    def ingest(self, texts: list[str], start_id: int) -> None:
        """Index new records; the minhash permutations stay frozen.

        Banding collisions are pairwise, so post-ingest probes are
        *exactly* the batch candidates over the grown collection.
        """
        for offset, text in enumerate(texts):
            signature = self._signature(text)
            if signature is None:
                continue
            rid = np.asarray([start_id + offset], dtype=np.int64)
            for band, key in enumerate(self._band_keys(signature)):
                table = self._buckets[band]
                existing = table.get(int(key))
                table[int(key)] = (
                    rid
                    if existing is None
                    else np.concatenate([existing, rid])
                )

    def probe(self, text: str) -> np.ndarray:
        signature = self._signature(text)
        empty = np.zeros(0, dtype=np.int64)
        if signature is None:
            return empty
        parts = []
        for band, key in enumerate(self._band_keys(signature)):
            ids = self._buckets[band].get(int(key))
            if ids is not None:
                parts.append(ids)
        if not parts:
            return empty
        return np.concatenate(parts)


@dataclass(frozen=True)
class BlockingIndex:
    """Frozen query-time blocking index over one indexed collection.

    Built once from the two collections of a dataset (corpus
    statistics freeze at build time), probed many times with single
    records.  :meth:`probe` returns the sorted, de-duplicated indexed-
    side record ids a blocking spec retains for the query — for any
    record of the left collection the index was built over, exactly
    the corresponding :class:`CandidateSet` row of the batch build.
    """

    n_indexed: int
    scheme: str
    _probes: tuple = field(compare=False, repr=False)

    @classmethod
    def build(
        cls, lefts: list[str], rights: list[str], spec: str
    ) -> "BlockingIndex":
        specs = parse_blocking_spec(spec)
        probes = []
        for scheme in specs:
            if scheme.name == "tokens":
                probes.append(_TokenProbe(lefts, rights, scheme))
            elif scheme.name == "prefix":
                probes.append(_PrefixProbe(lefts, rights, scheme))
            else:
                probes.append(_MinhashProbe(rights, scheme))
        return cls(
            n_indexed=len(rights),
            scheme="+".join(s.canonical for s in specs),
            _probes=tuple(probes),
        )

    def probe(self, text: str) -> np.ndarray:
        """Sorted unique indexed-record ids retained for ``text``."""
        parts = [probe.probe(text) for probe in self._probes]
        merged = np.concatenate(parts) if parts else np.zeros(0, np.int64)
        return np.unique(merged)

    def ingest(self, texts: list[str]) -> np.ndarray:
        """Index new records in place; returns their assigned ids.

        The build-time corpus statistics (document frequencies, stop
        limits, rarity ranks, minhash permutations) stay frozen — only
        the posting lists grow, so existing candidates never change
        and every probe stays deterministic.  Statistics-free schemes
        (``minhash``, and ``tokens`` with no stop tokens in play)
        probe *exactly* like a batch build over the grown collection;
        the df-dependent schemes probe like a batch that reuses the
        build-time frequencies — the same serving convention novel
        query records already get.
        """
        texts = list(texts)
        start = self.n_indexed
        for probe in self._probes:
            probe.ingest(texts, start)
        object.__setattr__(self, "n_indexed", start + len(texts))
        return np.arange(start, start + len(texts), dtype=np.int64)


def build_blocking_index(
    lefts: list[str], rights: list[str], spec: str
) -> BlockingIndex:
    """Build the query-time :class:`BlockingIndex` for ``spec``."""
    return BlockingIndex.build(lefts, rights, spec)
