"""Out-of-core sharded execution: bounded-memory scoring over row shards.

The dense engine paths materialize one ``n_left x n_right`` float64
matrix per similarity function — the single largest allocation of a
corpus run, and the reason datasets beyond RAM are untouchable even
when blocking makes the *pair* count tiny.  This module splits the
(post-blocking) candidate space into independent **row-range shards**:

* :class:`ShardPlanner` sizes shards to a ``memory_budget`` from the
  record counts, the unique-value statistics of the texts and the
  candidate density of the blocking scheme (dense density when no
  blocking is configured).  Plans are pure functions of their inputs —
  the same dataset and budget always produce the same boundaries.
* :class:`ShardRun` streams each shard through
  :meth:`~repro.pipeline.engine.SimilarityEngine.shard_scores`, spills
  the shard's raw positive edges to an npz file (read back with
  ``np.load(..., mmap_mode="r")`` — npz members extract lazily on
  access, so the merge never holds more than one shard plus the final
  edge arrays), and merges the spills into a
  :class:`~repro.graph.bipartite.SimilarityGraph`.

Merge determinism rules
-----------------------
The merged graph is **bit-identical to the unsharded path and
invariant to the shard count** because of three invariants:

1. Shards cover disjoint, consecutive row ranges, and each shard emits
   its edges in exactly the order the full-matrix construction would —
   row-major nonzero order on the dense path, candidate order under
   blocking — so concatenating shards in range order reproduces the
   unsharded edge stream.
2. Every shard evaluates only *whole* blocks of the absolute row-chunk
   grid (:func:`~repro.pipeline.kernels.row_chunk_size`, a function of
   the dataset shape alone) and slices the rows it owns, so every BLAS
   gemm has the same operands and shape as in the unsharded chunked
   pass — shard boundaries are free to land on any row.
3. Edges spill **raw** (unclipped) scores; clipping and min-max
   normalization run once, over the merged stream, through the same
   :func:`~repro.pipeline.graph_builder.pairs_to_graph` the blocking
   layer uses.

When the engine carries an :class:`~repro.pipeline.store.ArtifactStore`
each shard's edges are also committed under the ``score_shard``
artifact kind (keyed by spec, blocking and row range), so interrupted
or repeated runs load finished shards instead of rescoring them.
"""

from __future__ import annotations

import hashlib
import json
import math
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.pipeline.graph_builder import pairs_to_graph
from repro.pipeline.kernels import row_chunk_size
from repro.pipeline.similarity_functions import SimilarityFunctionSpec

__all__ = [
    "ShardPlan",
    "ShardPlanner",
    "ShardRun",
    "plan_for_dataset",
    "score_shard_key",
]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic split of ``n_left`` rows into range shards.

    ``boundaries`` holds the ascending shard start rows (the first is
    always ``0``); shard ``i`` covers ``[boundaries[i], boundaries[i+1])``
    with the last shard ending at ``n_left``.  ``chunk`` records the
    dataset's absolute row-chunk grid size and ``bytes_per_row`` the
    planner's spill estimate — both informational; execution derives
    the grid from the dataset shape again.
    """

    n_left: int
    n_right: int
    chunk: int
    boundaries: tuple[int, ...]
    memory_budget: int | None = None
    bytes_per_row: int = 0

    @property
    def n_shards(self) -> int:
        return len(self.boundaries)

    def ranges(self) -> list[tuple[int, int]]:
        """``(start, stop)`` row ranges, in merge order."""
        stops = (*self.boundaries[1:], self.n_left)
        return list(zip(self.boundaries, stops))

    def describe(self) -> str:
        """Human-readable plan summary for ``repro shard plan``."""
        rows = max(
            (stop - start for start, stop in self.ranges()), default=0
        )
        budget = (
            f"{self.memory_budget / 1e6:.1f} MB"
            if self.memory_budget is not None
            else "none"
        )
        lines = [
            f"{self.n_shards} shard(s) x <= {rows} rows over "
            f"{self.n_left} x {self.n_right} cells",
            f"budget {budget}, est. {self.bytes_per_row} spill "
            f"bytes/row, chunk grid {self.chunk} rows "
            f"(~{self.chunk * max(self.n_right, 1) * 8 / 1e6:.1f} MB "
            "per dense block)",
        ]
        for index, (start, stop) in enumerate(self.ranges()):
            est = (stop - start) * self.bytes_per_row
            lines.append(
                f"  shard {index}: rows [{start}, {stop}) "
                f"(~{est / 1e6:.1f} MB est. spill)"
            )
        return "\n".join(lines)


class ShardPlanner:
    """Sizes row-range shards to a memory budget.

    The estimate charges each shard for its accumulated spill edges
    (``EDGE_BYTES`` per expected positive cell — candidate density
    under blocking, full width without) and reserves a fixed overhead
    for the transient per-chunk state: one dense block of the chunk
    grid plus the unique-value scratch of the string kernels.  All
    inputs are dataset statistics, so planning is deterministic.
    """

    #: Spilled bytes per edge: two int64 indices plus one float64 score.
    EDGE_BYTES = 24
    #: Bytes per dense matrix cell (float64).
    CELL_BYTES = 8
    #: Scratch bytes charged per unique left value of a chunk (encoded
    #: code points + token index slots of a transient string batch).
    UNIQUE_BYTES = 256

    @staticmethod
    def plan(
        n_left: int,
        n_right: int,
        memory_budget: int | None = None,
        *,
        candidates_per_row: float | None = None,
        unique_fraction: float = 1.0,
        n_shards: int | None = None,
    ) -> ShardPlan:
        """A :class:`ShardPlan` for an ``n_left x n_right`` space.

        ``n_shards`` forces an explicit shard count (used by the
        invariance tests and benchmarks); otherwise the count follows
        from ``memory_budget``, and no budget means one shard.
        """
        n_left = max(int(n_left), 0)
        n_right = max(int(n_right), 0)
        chunk = row_chunk_size(n_right)
        edges_per_row = (
            float(n_right)
            if candidates_per_row is None
            else max(float(candidates_per_row), 0.0)
        )
        row_bytes = max(
            int(math.ceil(edges_per_row * ShardPlanner.EDGE_BYTES)), 1
        )
        if n_shards is not None:
            count = max(int(n_shards), 1)
            rows = max(-(-max(n_left, 1) // count), 1)
        elif memory_budget is None:
            rows = max(n_left, 1)
        else:
            overhead = chunk * max(n_right, 1) * ShardPlanner.CELL_BYTES
            overhead += int(
                chunk * min(max(unique_fraction, 0.0), 1.0)
                * ShardPlanner.UNIQUE_BYTES
            )
            rows = max((int(memory_budget) - overhead) // row_bytes, 1)
            if rows >= chunk:
                # Align full shards to the chunk grid so interior
                # shards never pay a partial boundary block.
                rows -= rows % chunk
        boundaries = tuple(range(0, max(n_left, 1), rows))
        return ShardPlan(
            n_left=n_left,
            n_right=n_right,
            chunk=chunk,
            boundaries=boundaries,
            memory_budget=(
                None if memory_budget is None else int(memory_budget)
            ),
            bytes_per_row=row_bytes,
        )


def plan_for_dataset(
    dataset,
    memory_budget: int | None = None,
    blocking: str | None = None,
    *,
    n_shards: int | None = None,
    candidates=None,
) -> ShardPlan:
    """Plan shards for a generated dataset.

    Derives the planner statistics from the dataset itself: record
    counts from the collections, the unique-value fraction from the
    schema-agnostic texts, and — when ``blocking`` is given (or a
    prebuilt ``candidates`` set is passed) — the candidate density of
    the blocking scheme.
    """
    texts_left = dataset.left.texts()
    texts_right = dataset.right.texts()
    n_left, n_right = len(texts_left), len(texts_right)
    candidates_per_row = None
    if candidates is None and blocking is not None:
        from repro.pipeline.blocking import build_candidate_set

        candidates = build_candidate_set(texts_left, texts_right, blocking)
    if candidates is not None:
        candidates_per_row = candidates.n_pairs / max(n_left, 1)
    unique_fraction = len(set(texts_left)) / max(n_left, 1)
    return ShardPlanner.plan(
        n_left,
        n_right,
        memory_budget,
        candidates_per_row=candidates_per_row,
        unique_fraction=unique_fraction,
        n_shards=n_shards,
    )


def spec_token(spec: SimilarityFunctionSpec) -> str:
    """A short stable filename token for a similarity spec."""
    payload = json.dumps(
        [spec.family, spec.details], sort_keys=True
    ).encode()
    return hashlib.blake2b(payload, digest_size=6).hexdigest()


def score_shard_key(
    spec: SimilarityFunctionSpec,
    blocking: str | None,
    start: int,
    stop: int,
) -> tuple:
    """The artifact-store cache key of one shard's spilled edges."""
    return (
        "score_shard",
        spec.family,
        json.dumps(spec.details, sort_keys=True),
        blocking or "",
        int(start),
        int(stop),
    )


class ShardRun:
    """Executes one spec shard-by-shard and merges the spilled edges."""

    def __init__(self, engine, plan: ShardPlan, spill_dir=None) -> None:
        self.engine = engine
        self.plan = plan
        self.spill_dir = spill_dir
        self._warned_save_failure = False

    def run(
        self,
        spec: SimilarityFunctionSpec,
        name: str = "",
        metadata: dict | None = None,
        normalize: bool = True,
    ):
        """The merged :class:`SimilarityGraph` of ``spec``."""
        if self.spill_dir is None:
            with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
                return self._run(Path(tmp), spec, name, metadata, normalize)
        root = Path(self.spill_dir)
        root.mkdir(parents=True, exist_ok=True)
        return self._run(root, spec, name, metadata, normalize)

    def _run(self, root, spec, name, metadata, normalize):
        token = spec_token(spec)
        paths: list[Path] = []
        sizes: list[int] = []
        for index, (start, stop) in enumerate(self.plan.ranges()):
            left, right, values = self._shard_edges(spec, start, stop)
            path = root / f"{token}_shard{index:04d}.npz"
            np.savez(path, left=left, right=right, values=values)
            sizes.append(len(values))
            paths.append(path)
            del left, right, values
        left, right, values = merge_spills(paths, sizes)
        return pairs_to_graph(
            self.plan.n_left,
            self.plan.n_right,
            left,
            right,
            values,
            name=name,
            normalize=normalize,
            metadata=metadata,
        )

    def _shard_edges(self, spec, start, stop):
        """One shard's raw edges — store-cached when a store is wired."""
        store = self.engine.cache.store
        if store is None:
            return self.engine.shard_scores(spec, start, stop)
        key = score_shard_key(spec, self.engine.blocking, start, stop)
        value = store.load(self.engine.cache.dataset_key, key)
        if value is not None:
            return value
        edges = self.engine.shard_scores(spec, start, stop)
        try:
            store.save(self.engine.cache.dataset_key, key, edges)
        except Exception as error:
            if not self._warned_save_failure:
                self._warned_save_failure = True
                warnings.warn(
                    f"artifact store write failed for {key!r} "
                    f"({error}); this shard was not persisted",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return edges


def merge_spills(
    paths: list, sizes: list[int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate spilled shard edges into preallocated arrays.

    Shards are read one at a time (npz members extract lazily on
    access), so peak merge memory is the final edge arrays plus a
    single shard — never all spills at once.
    """
    total = int(sum(sizes))
    left = np.empty(total, dtype=np.int64)
    right = np.empty(total, dtype=np.int64)
    values = np.empty(total, dtype=np.float64)
    offset = 0
    for path, size in zip(paths, sizes):
        with np.load(path, mmap_mode="r") as payload:
            left[offset : offset + size] = payload["left"]
            right[offset : offset + size] = payload["right"]
            values[offset : offset + size] = payload["values"]
        offset += size
    return left, right, values
