"""Streaming replay driver: incremental ER over a record arrival stream.

The batch dirty-ER path computes everything from a complete
collection: one candidate set, one kernel pass, one compiled graph,
one clustering call.  This module replays the *same* collection as a
deterministic insertion sequence — a seeded permutation of the record
ids, consumed in fixed-size batches — and resolves it incrementally:

* candidates come from single-record probes of the frozen
  :class:`~repro.pipeline.blocking.BlockingIndex` (built once over
  the full collection, the serving convention: corpus statistics
  freeze at build time, so probe rows equal batch candidate rows),
* scores come from per-batch sparse kernel passes over one frozen
  :class:`~repro.pipeline.batched_strings.StringBatch` (per-pair
  scores are bitwise independent of which pairs share a pass),
* the graph grows through :func:`repro.graph.incremental.insert_uni_edges`
  and the partitions through
  :class:`~repro.extensions.incremental.IncrementalClusterer`.

**Batch equivalence** is the load-bearing property: after the last
batch, the compiled edge permutation, CSR adjacency and every
partition are bit-identical to the batch path over the same records
(:func:`batch_reference`), whatever the seed or batch size.  The
compiled views are insertion-order invariant because a unipartite
graph has no duplicate edges — only the provenance ``order`` and the
raw source arrays remember arrival order.

Both paths keep raw clipped scores (``normalize=False``): a stream
cannot min-max normalize mid-flight without rescaling every edge it
already inserted whenever a new extreme arrives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.extensions.dirty_er import DIRTY_ALGORITHM_CODES
from repro.extensions.incremental import IncrementalClusterer
from repro.graph.incremental import insert_uni_edges
from repro.graph.unipartite import (
    CompiledUnipartiteGraph,
    UnipartiteGraph,
    pairs_to_unipartite_graph,
)
from repro.pipeline.batched_strings import StringBatch, schema_based_pairs
from repro.pipeline.blocking import (
    BlockingIndex,
    build_candidate_set,
    canonical_blocking,
)
from repro.pipeline.kernels import SparsePlan

__all__ = [
    "StreamResult",
    "batch_reference",
    "canonical_clusters",
    "replay_stream",
    "stream_report",
]

#: Compiled views that must match the batch compile bit-for-bit.
#: ``order`` and the source arrays are provenance — they remember
#: insertion order, which the stream legitimately changes.
COMPILED_VIEWS = (
    "u_sorted",
    "v_sorted",
    "weight_sorted",
    "weight_ascending",
    "indptr",
    "neighbors",
    "neighbor_weights",
)


def canonical_clusters(clusters) -> list[tuple[int, ...]]:
    """Order-free canonical form of a partition."""
    return sorted(tuple(sorted(cluster)) for cluster in clusters)


@dataclass
class StreamResult:
    """Everything the replay produced, plus its cost breakdown.

    ``update_seconds`` is the incremental-maintenance cost the
    streaming tier exists to bound: graph delta merges plus clusterer
    observations, excluding probing and kernel scoring (which the
    batch path pays identically).  ``rebuild_seconds`` is the cost of
    one from-scratch compile + clustering measured when the stream
    crossed ``probe_records`` records (the half-way rebuild probe) —
    ``None`` unless the probe was requested.
    """

    n_records: int
    batch_size: int
    seed: int
    measure: str
    blocking: str
    threshold: float
    algorithms: tuple[str, ...]
    arrival: np.ndarray = field(repr=False)
    compiled: CompiledUnipartiteGraph = field(repr=False)
    clusterers: dict[str, IncrementalClusterer] = field(repr=False)
    n_batches: int = 0
    n_pairs_scored: int = 0
    probe_seconds: float = 0.0
    score_seconds: float = 0.0
    update_seconds: float = 0.0
    partition_seconds: float = 0.0
    probe_records: int | None = None
    probe_update_seconds: float | None = None
    rebuild_seconds: float | None = None

    @property
    def n_edges(self) -> int:
        return self.compiled.n_edges

    def partitions(self) -> dict[str, list[tuple[int, ...]]]:
        """Canonical maintained partitions, one per algorithm."""
        start = time.perf_counter()
        out = {
            code: canonical_clusters(clusterer.partition())
            for code, clusterer in self.clusterers.items()
        }
        self.partition_seconds += time.perf_counter() - start
        return out


def batch_reference(
    texts: list[str],
    values: list[str] | None = None,
    *,
    measure: str,
    blocking: str,
) -> UnipartiteGraph:
    """The batch path the stream must reproduce bit-for-bit.

    One candidate set over the full self join, one sparse kernel
    pass, one graph build keeping the strict upper triangle of
    positive clipped scores (raw, un-normalized — see the module
    docstring).
    """
    values = list(texts) if values is None else list(values)
    candidates = build_candidate_set(
        list(texts), list(texts), canonical_blocking(blocking)
    )
    batch = StringBatch(values, values)
    plan = SparsePlan.build(batch.plan, candidates.left, candidates.right)
    scored = schema_based_pairs(values, values, measure, plan, batch)
    return pairs_to_unipartite_graph(
        len(texts),
        candidates.left,
        candidates.right,
        scored,
        name="stream-reference",
        normalize=False,
    )


def replay_stream(
    texts: list[str],
    values: list[str] | None = None,
    *,
    measure: str,
    blocking: str,
    threshold: float,
    algorithms: tuple[str, ...] = DIRTY_ALGORITHM_CODES,
    seed: int = 42,
    batch_size: int = 32,
    rebuild_probe: bool = False,
) -> StreamResult:
    """Replay ``texts`` as a seeded insertion stream and resolve it.

    Records arrive in ``np.random.default_rng(seed).permutation(n)``
    order, ``batch_size`` at a time.  An unordered pair ``{i, j}``
    (``i < j`` by record id) is a candidate iff the batch candidate
    set keeps cell ``(i, j)`` — that is, iff ``j`` survives the
    frozen-index probe of record ``i`` — and it is scored in the
    first batch where both endpoints have arrived, exactly once.

    With ``rebuild_probe=True`` the replay times one from-scratch
    compile-and-cluster of the graph-so-far when the stream crosses
    the half-way record, the denominator of the amortized-cost guard
    in ``benchmarks/bench_streaming.py``.
    """
    texts = list(texts)
    values = list(texts) if values is None else list(values)
    if len(values) != len(texts):
        raise ValueError("values must parallel texts")
    algorithms = tuple(code.upper() for code in algorithms)
    unknown = set(algorithms) - set(DIRTY_ALGORITHM_CODES)
    if unknown:
        raise ValueError(f"unknown algorithms {sorted(unknown)}")
    n = len(texts)
    blocking = canonical_blocking(blocking)
    arrival = np.random.default_rng(seed).permutation(n)

    # Frozen serving state over the full collection: corpus statistics
    # (IDF thresholds, minhash permutations, unique-value universe)
    # freeze at build time so every probe and every score matches the
    # batch build bit-for-bit regardless of arrival order.
    index = BlockingIndex.build(texts, texts, blocking)
    batch_strings = StringBatch(values, values)

    compiled = UnipartiteGraph(n, [], [], [], name="stream").compiled()
    clusterers = {
        code: IncrementalClusterer(code, compiled, threshold)
        for code in algorithms
    }
    result = StreamResult(
        n_records=n,
        batch_size=batch_size,
        seed=seed,
        measure=measure,
        blocking=blocking,
        threshold=threshold,
        algorithms=algorithms,
        arrival=arrival,
        compiled=compiled,
        clusterers=clusterers,
    )

    arrived = np.zeros(n, dtype=bool)
    # pending[j] = arrived records i < j whose candidate (i, j) waits
    # for j; consumed exactly once when j arrives.
    pending: dict[int, list[int]] = {}
    halfway = n // 2
    ingested = 0
    for at in range(0, n, batch_size):
        batch_records = arrival[at : at + batch_size].tolist()
        arrived[batch_records] = True
        ready_u: list[int] = []
        ready_v: list[int] = []
        probe_start = time.perf_counter()
        for record in batch_records:
            for partner in index.probe(texts[record]).tolist():
                if partner <= record:
                    continue
                if arrived[partner]:
                    ready_u.append(record)
                    ready_v.append(partner)
                else:
                    pending.setdefault(partner, []).append(record)
            for left in pending.pop(record, ()):
                ready_u.append(left)
                ready_v.append(record)
        result.probe_seconds += time.perf_counter() - probe_start

        if ready_u:
            score_start = time.perf_counter()
            pair_u = np.asarray(ready_u, dtype=np.intp)
            pair_v = np.asarray(ready_v, dtype=np.intp)
            plan = SparsePlan.build(batch_strings.plan, pair_u, pair_v)
            scored = schema_based_pairs(
                values, values, measure, plan, batch_strings
            )
            result.n_pairs_scored += len(scored)
            keep = scored > 0.0
            pair_u = pair_u[keep]
            pair_v = pair_v[keep]
            weights = np.clip(scored[keep], 0.0, 1.0)
            result.score_seconds += time.perf_counter() - score_start

            if len(weights):
                update_start = time.perf_counter()
                insert_uni_edges(compiled, pair_u, pair_v, weights)
                for clusterer in clusterers.values():
                    clusterer.insert(pair_u, pair_v, weights)
                result.update_seconds += (
                    time.perf_counter() - update_start
                )
        result.n_batches += 1
        ingested += len(batch_records)

        if (
            rebuild_probe
            and result.rebuild_seconds is None
            and ingested >= halfway
        ):
            result.probe_records = ingested
            result.probe_update_seconds = result.update_seconds
            result.rebuild_seconds = _time_rebuild(
                compiled, threshold, algorithms
            )
    return result


def _time_rebuild(
    compiled: CompiledUnipartiteGraph,
    threshold: float,
    algorithms: tuple[str, ...],
) -> float:
    """One from-scratch compile + clustering of the graph so far."""
    from repro.extensions.dirty_er import DirtyClusterer

    source = compiled.source
    start = time.perf_counter()
    fresh = UnipartiteGraph(
        source.n_nodes,
        np.array(source.u, copy=True),
        np.array(source.v, copy=True),
        np.array(source.weight, copy=True),
        validate=False,
    ).compiled()
    for code in algorithms:
        DirtyClusterer(code).cluster_compiled(fresh, threshold)
    return time.perf_counter() - start


def stream_report(
    result: StreamResult,
    texts: list[str],
    values: list[str] | None = None,
) -> dict:
    """Compare the replayed state against :func:`batch_reference`.

    Returns a JSON-friendly report: per-view bit-identity of the
    compiled graph, per-algorithm partition identity, and the cost
    breakdown.  The driver and the benchmark both consume it; the
    tests assert every boolean.
    """
    from repro.extensions.dirty_er import DirtyClusterer

    reference = batch_reference(
        texts, values, measure=result.measure, blocking=result.blocking
    ).compiled()
    views = {
        name: bool(
            np.array_equal(
                getattr(result.compiled, name), getattr(reference, name)
            )
        )
        for name in COMPILED_VIEWS
    }
    streamed = result.partitions()
    partitions = {
        code: streamed[code]
        == canonical_clusters(
            DirtyClusterer(code).cluster_compiled(
                reference, result.threshold
            )
        )
        for code in result.algorithms
    }
    return {
        "n_records": result.n_records,
        "batch_size": result.batch_size,
        "seed": result.seed,
        "measure": result.measure,
        "blocking": result.blocking,
        "threshold": result.threshold,
        "n_batches": result.n_batches,
        "n_pairs_scored": result.n_pairs_scored,
        "n_edges": result.n_edges,
        "n_edges_batch": reference.n_edges,
        "graph_identical": all(views.values()),
        "views": views,
        "partitions_identical": partitions,
        "probe_seconds": result.probe_seconds,
        "score_seconds": result.score_seconds,
        "update_seconds": result.update_seconds,
        "partition_seconds": result.partition_seconds,
        "probe_records": result.probe_records,
        "probe_update_seconds": result.probe_update_seconds,
        "rebuild_seconds": result.rebuild_seconds,
    }
