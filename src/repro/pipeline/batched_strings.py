"""Vectorized all-pairs schema-based string similarity.

The paper's protocol compares *every* pair of attribute values (no
blocking), which makes per-pair dynamic programming in Python the
bottleneck.  This module provides all-pairs matrix versions of the 16
schema-based measures:

* the alignment measures (Levenshtein, Damerau-Levenshtein,
  Needleman-Wunsch, LCS substring/subsequence) run one DP per *left*
  string against **all** right strings simultaneously, with numpy rows
  of shape ``(n_right, max_len)``.  The in-row dependency of the
  insert operation is resolved with the classic min-accumulate trick:
  ``row[j] = min_k<=j (cand[k] + gap*(j-k))``.
* the token measures are expressed over sparse token-count matrices,
  re-using the machinery of :mod:`repro.vectorspace`;
* q-grams distance uses sparse padded-trigram profiles;
* Jaro and Monge-Elkan iterate pairs (both are cheap per pair;
  Monge-Elkan memoizes token-level Smith-Waterman scores, which repeat
  heavily across pairs).

Convention: pairs where **either** value is empty get similarity 0 —
an absent value carries no matching evidence (the scalar measures in
:mod:`repro.textsim` keep the measure-level "both empty = identical"
convention; the graph builder needs the evidence-level one).

Every function here is differentially tested against its scalar
counterpart in ``tests/pipeline/test_batched_strings.py``.
"""

from __future__ import annotations

from collections import Counter
from functools import cached_property

import numpy as np
from scipy import sparse

from repro.textsim.character import _padded_trigrams
from repro.textsim.smith_waterman import smith_waterman_similarity
from repro.textsim.character import jaro_similarity
from repro.textsim.tokenize import tokens
from repro.vectorspace.measures import pairwise_min_sum

__all__ = [
    "StringBatch",
    "ALIGNMENT_MEASURES",
    "levenshtein_matrix",
    "damerau_levenshtein_matrix",
    "needleman_wunsch_matrix",
    "lcs_subsequence_matrix",
    "lcs_substring_matrix",
    "jaro_matrix",
    "qgrams_matrix",
    "monge_elkan_matrix",
    "token_measure_matrix",
    "TOKEN_MATRIX_MEASURES",
    "schema_based_matrix",
]


class StringBatch:
    """Shared per-``(lefts, rights)`` artifacts of the 16 measures.

    The alignment measures all consume the same encoded code-point
    matrix of the right strings; the eight token measures all consume
    the same sparse token-count matrices; Monge-Elkan consumes the
    token lists.  A batch computes each artifact lazily on first use
    and keeps it, so computing several measures over the same value
    pair (one attribute of one dataset) encodes/tokenizes only once.
    """

    def __init__(self, lefts: list[str], rights: list[str]) -> None:
        self.lefts = lefts
        self.rights = rights

    @cached_property
    def encoded_rights(self) -> tuple[np.ndarray, np.ndarray]:
        """Code-point matrix and lengths of the right strings."""
        return _encode(self.rights)

    @cached_property
    def empty_mask(self) -> np.ndarray:
        """True where either side of the pair is empty."""
        return _empty_mask(self.lefts, self.rights)

    @cached_property
    def token_lists(self) -> tuple[list[list[str]], list[list[str]]]:
        """Tokenized strings of both sides."""
        return (
            [tokens(s) for s in self.lefts],
            [tokens(s) for s in self.rights],
        )

    @cached_property
    def token_sparse(self) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """Sparse token-count matrices over a shared vocabulary."""
        lists_left, lists_right = self.token_lists
        return _profiles_to_sparse(
            [Counter(words) for words in lists_left],
            [Counter(words) for words in lists_right],
        )

    @cached_property
    def token_binary(self) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """Binary (presence) versions of :attr:`token_sparse`."""
        matrix_left, matrix_right = self.token_sparse
        binary_left = matrix_left.copy()
        binary_left.data = np.ones_like(binary_left.data)
        binary_right = matrix_right.copy()
        binary_right.data = np.ones_like(binary_right.data)
        return binary_left, binary_right

    @cached_property
    def token_sums(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(bag_left, bag_right, set_left, set_right)`` row sums."""
        matrix_left, matrix_right = self.token_sparse
        binary_left, binary_right = self.token_binary
        return (
            matrix_left.sum(axis=1).A1,
            matrix_right.sum(axis=1).A1,
            binary_left.sum(axis=1).A1,
            binary_right.sum(axis=1).A1,
        )


def _encode(strings: list[str]) -> tuple[np.ndarray, np.ndarray]:
    """Pad strings into an int32 code-point matrix plus lengths.

    Padding uses ``-1``, which never equals a real code point.
    """
    lengths = np.array([len(s) for s in strings], dtype=np.int64)
    max_len = int(lengths.max()) if len(strings) else 0
    codes = np.full((len(strings), max_len), -1, dtype=np.int32)
    for row, text in enumerate(strings):
        if text:
            codes[row, : len(text)] = np.frombuffer(
                text.encode("utf-32-le"), dtype=np.uint32
            ).astype(np.int32)
    return codes, lengths


def _empty_mask(lefts: list[str], rights: list[str]) -> np.ndarray:
    """True where either side of the pair is an empty string."""
    left_empty = np.array([not s for s in lefts], dtype=bool)
    right_empty = np.array([not s for s in rights], dtype=bool)
    return left_empty[:, None] | right_empty[None, :]


def _scan_min(row: np.ndarray, step: float) -> np.ndarray:
    """In-row propagation ``row[j] = min_k<=j (row[k] + step*(j-k))``."""
    width = row.shape[1]
    offsets = step * np.arange(width)
    shifted = np.minimum.accumulate(row - offsets, axis=1)
    return shifted + offsets


def levenshtein_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs normalized Levenshtein similarity."""
    return _edit_distance_matrix(lefts, rights, False, batch)


def damerau_levenshtein_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs normalized Damerau-Levenshtein (OSA) similarity."""
    return _edit_distance_matrix(lefts, rights, True, batch)


def _edit_distance_matrix(
    lefts: list[str],
    rights: list[str],
    transpositions: bool,
    batch: StringBatch | None = None,
) -> np.ndarray:
    if batch is None:
        batch = StringBatch(lefts, rights)
    n_left, n_right = len(lefts), len(rights)
    result = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return result
    codes, lengths = batch.encoded_rights
    max_len = codes.shape[1]
    base_row = np.arange(max_len + 1, dtype=np.float64)
    take = lengths[:, None]  # per-right-string final DP column

    for i, text in enumerate(lefts):
        if not text:
            continue
        previous = np.broadcast_to(base_row, (n_right, max_len + 1)).copy()
        prev_prev: np.ndarray | None = None
        prev_char = -2
        for step, char in enumerate(text, start=1):
            code = ord(char)
            cost = (codes != code).astype(np.float64)
            current = np.empty_like(previous)
            current[:, 0] = step
            current[:, 1:] = np.minimum(
                previous[:, :-1] + cost,  # substitute
                previous[:, 1:] + 1.0,  # delete
            )
            if transpositions and prev_prev is not None and max_len >= 2:
                swap_ok = (codes[:, :-1] == code) & (codes[:, 1:] == prev_char)
                candidate = prev_prev[:, :-2] + 1.0
                current[:, 2:] = np.where(
                    swap_ok, np.minimum(current[:, 2:], candidate),
                    current[:, 2:],
                )
            current = _scan_min(current, 1.0)  # insert propagation
            prev_prev = previous
            previous = current
            prev_char = code
        distances = np.take_along_axis(previous, take, axis=1)[:, 0]
        longest = np.maximum(len(text), lengths)
        with np.errstate(invalid="ignore", divide="ignore"):
            result[i] = np.where(longest > 0, 1.0 - distances / longest, 0.0)
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


_NW_GAP = 2.0


def needleman_wunsch_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs Needleman-Wunsch similarity (mismatch 1, gap 2)."""
    if batch is None:
        batch = StringBatch(lefts, rights)
    n_left, n_right = len(lefts), len(rights)
    result = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return result
    codes, lengths = batch.encoded_rights
    max_len = codes.shape[1]
    base_row = _NW_GAP * np.arange(max_len + 1, dtype=np.float64)
    take = lengths[:, None]

    for i, text in enumerate(lefts):
        if not text:
            continue
        previous = np.broadcast_to(base_row, (n_right, max_len + 1)).copy()
        for step, char in enumerate(text, start=1):
            cost = (codes != ord(char)).astype(np.float64)
            current = np.empty_like(previous)
            current[:, 0] = step * _NW_GAP
            current[:, 1:] = np.minimum(
                previous[:, :-1] + cost,
                previous[:, 1:] + _NW_GAP,
            )
            current = _scan_min(current, _NW_GAP)
            previous = current
        costs = np.take_along_axis(previous, take, axis=1)[:, 0]
        longest = np.maximum(len(text), lengths)
        with np.errstate(invalid="ignore", divide="ignore"):
            result[i] = np.where(
                longest > 0, 1.0 - costs / (_NW_GAP * longest), 0.0
            )
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


def lcs_subsequence_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs longest-common-subsequence similarity."""
    if batch is None:
        batch = StringBatch(lefts, rights)
    n_left, n_right = len(lefts), len(rights)
    result = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return result
    codes, lengths = batch.encoded_rights
    max_len = codes.shape[1]
    take = lengths[:, None]

    for i, text in enumerate(lefts):
        if not text:
            continue
        previous = np.zeros((n_right, max_len + 1))
        for char in text:
            eq = (codes == ord(char)).astype(np.float64)
            current = np.empty_like(previous)
            current[:, 0] = 0.0
            current[:, 1:] = np.maximum(
                previous[:, 1:], previous[:, :-1] + eq
            )
            np.maximum.accumulate(current, axis=1, out=current)
            previous = current
        lcs = np.take_along_axis(previous, take, axis=1)[:, 0]
        longest = np.maximum(len(text), lengths)
        with np.errstate(invalid="ignore", divide="ignore"):
            result[i] = np.where(longest > 0, lcs / longest, 0.0)
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


def lcs_substring_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs longest-common-substring similarity."""
    if batch is None:
        batch = StringBatch(lefts, rights)
    n_left, n_right = len(lefts), len(rights)
    result = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return result
    codes, lengths = batch.encoded_rights
    max_len = codes.shape[1]

    for i, text in enumerate(lefts):
        if not text:
            continue
        best = np.zeros(n_right)
        previous = np.zeros((n_right, max_len + 1))
        for char in text:
            eq = (codes == ord(char)).astype(np.float64)
            current = np.zeros_like(previous)
            current[:, 1:] = (previous[:, :-1] + 1.0) * eq
            np.maximum(best, current.max(axis=1), out=best)
            previous = current
        longest = np.maximum(len(text), lengths)
        with np.errstate(invalid="ignore", divide="ignore"):
            result[i] = np.where(longest > 0, best / longest, 0.0)
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


def jaro_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs Jaro similarity (per-pair; O(len) each)."""
    result = np.zeros((len(lefts), len(rights)))
    for i, a in enumerate(lefts):
        if not a:
            continue
        for j, b in enumerate(rights):
            if b:
                result[i, j] = jaro_similarity(a, b)
    return result


def qgrams_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs q-grams distance similarity via sparse profiles."""
    if batch is None:
        batch = StringBatch(lefts, rights)
    n_left, n_right = len(lefts), len(rights)
    if n_left == 0 or n_right == 0:
        return np.zeros((n_left, n_right))
    profiles_left = [_padded_trigrams(s) if s else Counter() for s in lefts]
    profiles_right = [_padded_trigrams(s) if s else Counter() for s in rights]
    matrix_left, matrix_right = _profiles_to_sparse(
        profiles_left, profiles_right
    )
    minimum = pairwise_min_sum(matrix_left, matrix_right)
    sums_left = matrix_left.sum(axis=1).A1
    sums_right = matrix_right.sum(axis=1).A1
    total = sums_left[:, None] + sums_right[None, :]
    # block distance = total - 2*min; similarity = 1 - distance/total.
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(total > 0, 2.0 * minimum / total, 0.0)
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


def monge_elkan_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs Monge-Elkan with memoized Smith-Waterman scores."""
    if batch is None:
        batch = StringBatch(lefts, rights)
    token_lists_left, token_lists_right = batch.token_lists
    cache: dict[tuple[str, str], float] = {}

    def sw(a: str, b: str) -> float:
        key = (a, b)
        value = cache.get(key)
        if value is None:
            value = smith_waterman_similarity(a, b)
            cache[key] = value
        return value

    result = np.zeros((len(lefts), len(rights)))
    for i, list_a in enumerate(token_lists_left):
        if not list_a:
            continue
        for j, list_b in enumerate(token_lists_right):
            if not list_b:
                continue
            total = 0.0
            for token_a in list_a:
                total += max(sw(token_a, token_b) for token_b in list_b)
            result[i, j] = total / len(list_a)
    return np.clip(result, 0.0, 1.0)


def _profiles_to_sparse(
    profiles_left: list[Counter], profiles_right: list[Counter]
) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
    vocabulary: dict[str, int] = {}
    for profile in profiles_left:
        for key in profile:
            vocabulary.setdefault(key, len(vocabulary))
    for profile in profiles_right:
        for key in profile:
            vocabulary.setdefault(key, len(vocabulary))

    def assemble(profiles: list[Counter]) -> sparse.csr_matrix:
        rows, cols, values = [], [], []
        for row, profile in enumerate(profiles):
            for key, count in profile.items():
                rows.append(row)
                cols.append(vocabulary[key])
                values.append(float(count))
        return sparse.csr_matrix(
            (values, (rows, cols)),
            shape=(len(profiles), len(vocabulary)),
            dtype=np.float64,
        )

    return assemble(profiles_left), assemble(profiles_right)


def token_measure_matrix(
    lefts: list[str],
    rights: list[str],
    measure: str,
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs token measure over sparse token-count vectors.

    ``measure`` is one of ``TOKEN_MATRIX_MEASURES``.
    """
    if measure not in TOKEN_MATRIX_MEASURES:
        known = ", ".join(sorted(TOKEN_MATRIX_MEASURES))
        raise KeyError(f"unknown token measure {measure!r}; known: {known}")
    if batch is None:
        batch = StringBatch(lefts, rights)
    n_left, n_right = len(lefts), len(rights)
    if n_left == 0 or n_right == 0:
        return np.zeros((n_left, n_right))
    matrix_left, matrix_right = batch.token_sparse
    binary_left, binary_right = batch.token_binary
    bag_left, bag_right, set_left, set_right = batch.token_sums

    with np.errstate(invalid="ignore", divide="ignore"):
        if measure == "cosine_tokens":
            norms_left = np.sqrt(matrix_left.multiply(matrix_left).sum(axis=1)).A1
            norms_right = np.sqrt(
                matrix_right.multiply(matrix_right).sum(axis=1)
            ).A1
            dot = np.asarray((matrix_left @ matrix_right.T).todense())
            denominator = norms_left[:, None] * norms_right[None, :]
            result = np.where(denominator > 0, dot / denominator, 0.0)
        elif measure == "euclidean_tokens":
            sq_left = matrix_left.multiply(matrix_left).sum(axis=1).A1
            sq_right = matrix_right.multiply(matrix_right).sum(axis=1).A1
            dot = np.asarray((matrix_left @ matrix_right.T).todense())
            squared = sq_left[:, None] + sq_right[None, :] - 2.0 * dot
            distance = np.sqrt(np.maximum(squared, 0.0))
            bound = np.sqrt(sq_left[:, None] + sq_right[None, :])
            result = np.where(bound > 0, 1.0 - distance / bound, 0.0)
        elif measure == "block_distance":
            minimum = pairwise_min_sum(matrix_left, matrix_right)
            total = bag_left[:, None] + bag_right[None, :]
            result = np.where(total > 0, 2.0 * minimum / total, 0.0)
        elif measure == "dice":
            intersection = np.asarray((binary_left @ binary_right.T).todense())
            total = set_left[:, None] + set_right[None, :]
            result = np.where(total > 0, 2.0 * intersection / total, 0.0)
        elif measure == "simon_white":
            minimum = pairwise_min_sum(matrix_left, matrix_right)
            total = bag_left[:, None] + bag_right[None, :]
            result = np.where(total > 0, 2.0 * minimum / total, 0.0)
        elif measure == "overlap":
            intersection = np.asarray((binary_left @ binary_right.T).todense())
            smaller = np.minimum.outer(set_left, set_right)
            result = np.where(smaller > 0, intersection / smaller, 0.0)
        elif measure == "jaccard":
            intersection = np.asarray((binary_left @ binary_right.T).todense())
            union = set_left[:, None] + set_right[None, :] - intersection
            result = np.where(union > 0, intersection / union, 0.0)
        else:  # generalized_jaccard
            minimum = pairwise_min_sum(matrix_left, matrix_right)
            maximum = bag_left[:, None] + bag_right[None, :] - minimum
            result = np.where(maximum > 0, minimum / maximum, 0.0)

    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


#: Token measures computable by :func:`token_measure_matrix`.
TOKEN_MATRIX_MEASURES = (
    "cosine_tokens",
    "euclidean_tokens",
    "block_distance",
    "dice",
    "simon_white",
    "overlap",
    "jaccard",
    "generalized_jaccard",
)

#: Measures whose DP shares the encoded right-string matrix.
ALIGNMENT_MEASURES = (
    "levenshtein",
    "damerau_levenshtein",
    "needleman_wunsch",
    "lcs_subsequence",
    "lcs_substring",
)

_MATRIX_FUNCTIONS = {
    "levenshtein": levenshtein_matrix,
    "damerau_levenshtein": damerau_levenshtein_matrix,
    "needleman_wunsch": needleman_wunsch_matrix,
    "lcs_subsequence": lcs_subsequence_matrix,
    "lcs_substring": lcs_substring_matrix,
    "jaro": jaro_matrix,
    "qgrams": qgrams_matrix,
    "monge_elkan": monge_elkan_matrix,
}


def schema_based_matrix(
    lefts: list[str],
    rights: list[str],
    measure: str,
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs matrix for any of the 16 schema-based measures.

    ``batch`` optionally shares the encoded/tokenized artifacts across
    measures computed over the same value lists.
    """
    function = _MATRIX_FUNCTIONS.get(measure)
    if function is not None:
        return function(lefts, rights, batch)
    return token_measure_matrix(lefts, rights, measure, batch)
