"""Vectorized all-pairs schema-based string similarity.

The paper's protocol compares *every* pair of attribute values (no
blocking), which makes per-pair dynamic programming in Python the
bottleneck.  This module provides all-pairs matrix versions of the 16
schema-based measures, all routed through the pairwise-kernel engine
of :mod:`repro.pipeline.kernels`:

* every measure first factors the pair grid down to *unique* value
  pairs (:class:`~repro.pipeline.kernels.UniquePlan`) and scatters the
  unique-grid result back with ``np.ix_`` — duplicated attribute
  values are computed once;
* the alignment measures (Levenshtein, Damerau-Levenshtein,
  Needleman-Wunsch, LCS substring/subsequence) run length-sorted,
  cache-blocked DPs that advance **all** left strings of a block
  against all right strings per step, optionally on a thread pool;
* Jaro runs as a batched array kernel (vectorized greedy matching +
  one transposition count from cumulative match ranks);
* Monge-Elkan computes one Smith-Waterman grid over the unique token
  vocabularies and reduces it with ``np.maximum.reduceat`` plus a
  strict left fold per token-count bucket;
* the token measures are expressed over sparse token-count matrices
  of the unique values, re-using :mod:`repro.vectorspace` machinery;
* q-grams distance uses sparse padded-trigram profiles of the unique
  values.

Convention: pairs where **either** value is empty get similarity 0 —
an absent value carries no matching evidence (the scalar measures in
:mod:`repro.textsim` keep the measure-level "both empty = identical"
convention; the graph builder needs the evidence-level one).

The pre-kernel-engine implementations are frozen as ``*_legacy``
(dispatch via :func:`schema_based_matrix_legacy`); the kernel path is
**bit-identical** to them — differential tests live in
``tests/pipeline/test_kernels.py`` and
``tests/pipeline/test_batched_strings.py``, and
``benchmarks/bench_kernel_engine.py`` guards the speedup.
"""

from __future__ import annotations

from collections import Counter
from functools import cached_property

import numpy as np
from scipy import sparse

from repro.pipeline.kernels import (
    SparsePlan,
    UniquePlan,
    edit_distance_pairs,
    edit_distance_unique,
    encode_strings,
    jaro_pairs,
    jaro_unique,
    lcs_subsequence_pairs,
    lcs_subsequence_unique,
    lcs_substring_pairs,
    lcs_substring_unique,
    monge_elkan_pairs,
    monge_elkan_unique,
    needleman_wunsch_pairs,
    needleman_wunsch_unique,
    smith_waterman_grid,
)
from repro.textsim.character import _padded_trigrams
from repro.textsim.smith_waterman import smith_waterman_similarity
from repro.textsim.character import jaro_similarity
from repro.textsim.tokenize import tokens
from repro.vectorspace.measures import pairwise_min_sum

__all__ = [
    "StringBatch",
    "ALIGNMENT_MEASURES",
    "levenshtein_matrix",
    "damerau_levenshtein_matrix",
    "needleman_wunsch_matrix",
    "lcs_subsequence_matrix",
    "lcs_substring_matrix",
    "jaro_matrix",
    "qgrams_matrix",
    "monge_elkan_matrix",
    "token_measure_matrix",
    "TOKEN_MATRIX_MEASURES",
    "schema_based_matrix",
    "schema_based_pairs",
    "jaro_matrix_legacy",
    "monge_elkan_matrix_legacy",
    "schema_based_matrix_legacy",
]


class StringBatch:
    """Shared per-``(lefts, rights)`` artifacts of the 16 measures.

    The kernel path consumes the *unique-universe* artifacts: the
    :class:`UniquePlan`, the encoded code-point matrices of the unique
    values (alignment measures and Jaro), the sparse token-count
    matrices of the unique values (token measures), the unique padded
    trigram profiles (q-grams) and the Smith-Waterman token grid
    (Monge-Elkan).  The full-universe artifacts consumed by the frozen
    ``*_legacy`` bodies remain available.  Every artifact is computed
    lazily on first use and kept, so computing several measures over
    the same value pair (one attribute of one dataset) encodes and
    tokenizes only once.
    """

    def __init__(self, lefts: list[str], rights: list[str]) -> None:
        self.lefts = lefts
        self.rights = rights

    def seed_artifact(self, name: str, value) -> None:
        """Seed the lazy artifact slot ``name`` with a precomputed value.

        Used by the persistent artifact store to hand a loaded
        artifact to the kernels: ``cached_property`` consults the
        instance ``__dict__`` first, so seeding the slot skips the
        build.  An already-computed slot is kept (the seeded value is
        that same object on the build path).  Rejects names that are
        not cached artifacts of this class, so a property rename
        cannot silently turn store hits into rebuilds.
        """
        if not isinstance(getattr(type(self), name, None), cached_property):
            raise AttributeError(
                f"StringBatch has no cached artifact {name!r}"
            )
        self.__dict__.setdefault(name, value)

    # ------------------------------------------------ unique universe
    @cached_property
    def plan(self) -> UniquePlan:
        """Unique-value execution plan shared by every measure."""
        return UniquePlan.build(self.lefts, self.rights)

    @cached_property
    def unique_left_encoding(self) -> tuple[np.ndarray, np.ndarray]:
        """Code-point matrix and lengths of the unique left values."""
        return encode_strings(self.plan.lefts)

    @cached_property
    def unique_right_encoding(self) -> tuple[np.ndarray, np.ndarray]:
        """Code-point matrix and lengths of the unique right values."""
        return encode_strings(self.plan.rights)

    @cached_property
    def unique_empty_mask(self) -> np.ndarray:
        """True where either side of the *unique* pair is empty."""
        return _empty_mask(list(self.plan.lefts), list(self.plan.rights))

    @cached_property
    def unique_empty_sides(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-side emptiness of the unique values.

        The sparse (blocked) path masks empty cells from these two 1-D
        vectors instead of materializing the dense
        :attr:`unique_empty_mask` outer product.
        """
        return (
            np.array([not s for s in self.plan.lefts], dtype=bool),
            np.array([not s for s in self.plan.rights], dtype=bool),
        )

    @cached_property
    def unique_token_lists(
        self,
    ) -> tuple[list[list[str]], list[list[str]]]:
        """Tokenized unique values of both sides."""
        return (
            [tokens(s) for s in self.plan.lefts],
            [tokens(s) for s in self.plan.rights],
        )

    @cached_property
    def unique_token_sparse(
        self,
    ) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """Sparse token-count matrices of the unique values.

        The vocabulary is built in first-occurrence order over the
        unique values, which is exactly the key order the full-list
        construction produces — row contents (and therefore the
        summation order of every sparse product) match the legacy
        path bit for bit.
        """
        lists_left, lists_right = self.unique_token_lists
        return _profiles_to_sparse(
            [Counter(words) for words in lists_left],
            [Counter(words) for words in lists_right],
        )

    @cached_property
    def unique_token_binary(
        self,
    ) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """Binary (presence) versions of :attr:`unique_token_sparse`."""
        return _binarize(*self.unique_token_sparse)

    @cached_property
    def unique_token_sums(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(bag_left, bag_right, set_left, set_right)`` row sums."""
        return _token_sums(
            *self.unique_token_sparse, *self.unique_token_binary
        )

    @cached_property
    def unique_qgram_sparse(
        self,
    ) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """Padded-trigram profile matrices of the unique values."""
        return _profiles_to_sparse(
            [_padded_trigrams(s) if s else Counter() for s in self.plan.lefts],
            [
                _padded_trigrams(s) if s else Counter()
                for s in self.plan.rights
            ],
        )

    @cached_property
    def monge_elkan_grid(
        self,
    ) -> tuple[list[np.ndarray], list[np.ndarray], np.ndarray]:
        """Per-value token-id lists plus the unique-token SW grid."""
        lists_left, lists_right = self.unique_token_lists
        vocab_left, ids_left = _token_vocabulary(lists_left)
        vocab_right, ids_right = _token_vocabulary(lists_right)
        grid = smith_waterman_grid(
            *encode_strings(vocab_left), *encode_strings(vocab_right)
        )
        return ids_left, ids_right, grid

    # ------------------------------------------- full universe (legacy)
    @cached_property
    def encoded_rights(self) -> tuple[np.ndarray, np.ndarray]:
        """Code-point matrix and lengths of all right strings."""
        return encode_strings(self.rights)

    @cached_property
    def empty_mask(self) -> np.ndarray:
        """True where either side of the pair is empty."""
        return _empty_mask(self.lefts, self.rights)

    @cached_property
    def token_lists(self) -> tuple[list[list[str]], list[list[str]]]:
        """Tokenized strings of both sides."""
        return (
            [tokens(s) for s in self.lefts],
            [tokens(s) for s in self.rights],
        )

    @cached_property
    def token_sparse(self) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """Sparse token-count matrices over a shared vocabulary."""
        lists_left, lists_right = self.token_lists
        return _profiles_to_sparse(
            [Counter(words) for words in lists_left],
            [Counter(words) for words in lists_right],
        )

    @cached_property
    def token_binary(self) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """Binary (presence) versions of :attr:`token_sparse`."""
        return _binarize(*self.token_sparse)

    @cached_property
    def token_sums(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(bag_left, bag_right, set_left, set_right)`` row sums."""
        return _token_sums(*self.token_sparse, *self.token_binary)


def _binarize(matrix_left, matrix_right):
    binary_left = matrix_left.copy()
    binary_left.data = np.ones_like(binary_left.data)
    binary_right = matrix_right.copy()
    binary_right.data = np.ones_like(binary_right.data)
    return binary_left, binary_right


def _token_sums(matrix_left, matrix_right, binary_left, binary_right):
    return (
        matrix_left.sum(axis=1).A1,
        matrix_right.sum(axis=1).A1,
        binary_left.sum(axis=1).A1,
        binary_right.sum(axis=1).A1,
    )


def _token_vocabulary(
    token_lists: list[list[str]],
) -> tuple[list[str], list[np.ndarray]]:
    """First-occurrence token vocabulary plus per-value id arrays.

    Id arrays keep duplicates in text order — the order the scalar
    Monge-Elkan fold consumes them in.
    """
    vocabulary: dict[str, int] = {}
    ids: list[np.ndarray] = []
    for words in token_lists:
        row = np.empty(len(words), dtype=np.intp)
        for position, word in enumerate(words):
            slot = vocabulary.get(word)
            if slot is None:
                slot = len(vocabulary)
                vocabulary[word] = slot
            row[position] = slot
        ids.append(row)
    return list(vocabulary), ids


# _encode is kept as an alias of the shared kernel helper: older call
# sites and tests import it from this module.
_encode = encode_strings


def _empty_mask(lefts: list[str], rights: list[str]) -> np.ndarray:
    """True where either side of the pair is an empty string."""
    left_empty = np.array([not s for s in lefts], dtype=bool)
    right_empty = np.array([not s for s in rights], dtype=bool)
    return left_empty[:, None] | right_empty[None, :]


def _scan_min(row: np.ndarray, step: float) -> np.ndarray:
    """In-row propagation ``row[j] = min_k<=j (row[k] + step*(j-k))``."""
    width = row.shape[1]
    offsets = step * np.arange(width)
    shifted = np.minimum.accumulate(row - offsets, axis=1)
    return shifted + offsets


def _resolve_batch(
    lefts: list[str], rights: list[str], batch: StringBatch | None
) -> StringBatch:
    return batch if batch is not None else StringBatch(lefts, rights)


# ----------------------------------------------------------------------
# Kernel-engine paths
# ----------------------------------------------------------------------
def levenshtein_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs normalized Levenshtein similarity."""
    batch = _resolve_batch(lefts, rights, batch)
    return batch.plan.expand(
        edit_distance_unique(
            *batch.unique_left_encoding,
            *batch.unique_right_encoding,
            transpositions=False,
        )
    )


def damerau_levenshtein_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs normalized Damerau-Levenshtein (OSA) similarity."""
    batch = _resolve_batch(lefts, rights, batch)
    return batch.plan.expand(
        edit_distance_unique(
            *batch.unique_left_encoding,
            *batch.unique_right_encoding,
            transpositions=True,
        )
    )


def needleman_wunsch_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs Needleman-Wunsch similarity (mismatch 1, gap 2)."""
    batch = _resolve_batch(lefts, rights, batch)
    return batch.plan.expand(
        needleman_wunsch_unique(
            *batch.unique_left_encoding, *batch.unique_right_encoding
        )
    )


def lcs_subsequence_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs longest-common-subsequence similarity."""
    batch = _resolve_batch(lefts, rights, batch)
    return batch.plan.expand(
        lcs_subsequence_unique(
            *batch.unique_left_encoding, *batch.unique_right_encoding
        )
    )


def lcs_substring_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs longest-common-substring similarity."""
    batch = _resolve_batch(lefts, rights, batch)
    return batch.plan.expand(
        lcs_substring_unique(
            *batch.unique_left_encoding, *batch.unique_right_encoding
        )
    )


def jaro_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs Jaro similarity (batched unique-grid kernel)."""
    batch = _resolve_batch(lefts, rights, batch)
    return batch.plan.expand(
        jaro_unique(
            *batch.unique_left_encoding, *batch.unique_right_encoding
        )
    )


def qgrams_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs q-grams distance similarity via sparse profiles."""
    batch = _resolve_batch(lefts, rights, batch)
    n_left, n_right = len(batch.lefts), len(batch.rights)
    if n_left == 0 or n_right == 0:
        return np.zeros((n_left, n_right))
    result = _qgrams_values(*batch.unique_qgram_sparse)
    result[batch.unique_empty_mask] = 0.0
    return np.clip(batch.plan.expand(result), 0.0, 1.0)


def monge_elkan_matrix(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs Monge-Elkan over the unique-token-pair SW grid."""
    batch = _resolve_batch(lefts, rights, batch)
    ids_left, ids_right, grid = batch.monge_elkan_grid
    return np.clip(
        batch.plan.expand(monge_elkan_unique(ids_left, ids_right, grid)),
        0.0,
        1.0,
    )


def token_measure_matrix(
    lefts: list[str],
    rights: list[str],
    measure: str,
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs token measure over sparse token-count vectors.

    ``measure`` is one of ``TOKEN_MATRIX_MEASURES``.
    """
    _check_token_measure(measure)
    batch = _resolve_batch(lefts, rights, batch)
    n_left, n_right = len(batch.lefts), len(batch.rights)
    if n_left == 0 or n_right == 0:
        return np.zeros((n_left, n_right))
    result = _token_measure_values(
        measure,
        *batch.unique_token_sparse,
        *batch.unique_token_binary,
        batch.unique_token_sums,
    )
    result[batch.unique_empty_mask] = 0.0
    return np.clip(batch.plan.expand(result), 0.0, 1.0)


def _check_token_measure(measure: str) -> None:
    if measure not in TOKEN_MATRIX_MEASURES:
        known = ", ".join(sorted(TOKEN_MATRIX_MEASURES))
        raise KeyError(f"unknown token measure {measure!r}; known: {known}")


# ----------------------------------------------------------------------
# Measure formulas shared by the kernel and legacy paths
# ----------------------------------------------------------------------
def _qgrams_values(matrix_left, matrix_right) -> np.ndarray:
    minimum = pairwise_min_sum(matrix_left, matrix_right)
    sums_left = matrix_left.sum(axis=1).A1
    sums_right = matrix_right.sum(axis=1).A1
    total = sums_left[:, None] + sums_right[None, :]
    # block distance = total - 2*min; similarity = 1 - distance/total.
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(total > 0, 2.0 * minimum / total, 0.0)


def _token_measure_values(
    measure: str,
    matrix_left,
    matrix_right,
    binary_left,
    binary_right,
    sums,
) -> np.ndarray:
    bag_left, bag_right, set_left, set_right = sums
    with np.errstate(invalid="ignore", divide="ignore"):
        if measure == "cosine_tokens":
            norms_left = np.sqrt(
                matrix_left.multiply(matrix_left).sum(axis=1)
            ).A1
            norms_right = np.sqrt(
                matrix_right.multiply(matrix_right).sum(axis=1)
            ).A1
            dot = np.asarray((matrix_left @ matrix_right.T).todense())
            denominator = norms_left[:, None] * norms_right[None, :]
            result = np.where(denominator > 0, dot / denominator, 0.0)
        elif measure == "euclidean_tokens":
            sq_left = matrix_left.multiply(matrix_left).sum(axis=1).A1
            sq_right = matrix_right.multiply(matrix_right).sum(axis=1).A1
            dot = np.asarray((matrix_left @ matrix_right.T).todense())
            squared = sq_left[:, None] + sq_right[None, :] - 2.0 * dot
            distance = np.sqrt(np.maximum(squared, 0.0))
            bound = np.sqrt(sq_left[:, None] + sq_right[None, :])
            result = np.where(bound > 0, 1.0 - distance / bound, 0.0)
        elif measure == "block_distance":
            minimum = pairwise_min_sum(matrix_left, matrix_right)
            total = bag_left[:, None] + bag_right[None, :]
            result = np.where(total > 0, 2.0 * minimum / total, 0.0)
        elif measure == "dice":
            intersection = np.asarray(
                (binary_left @ binary_right.T).todense()
            )
            total = set_left[:, None] + set_right[None, :]
            result = np.where(total > 0, 2.0 * intersection / total, 0.0)
        elif measure == "simon_white":
            minimum = pairwise_min_sum(matrix_left, matrix_right)
            total = bag_left[:, None] + bag_right[None, :]
            result = np.where(total > 0, 2.0 * minimum / total, 0.0)
        elif measure == "overlap":
            intersection = np.asarray(
                (binary_left @ binary_right.T).todense()
            )
            smaller = np.minimum.outer(set_left, set_right)
            result = np.where(smaller > 0, intersection / smaller, 0.0)
        elif measure == "jaccard":
            intersection = np.asarray(
                (binary_left @ binary_right.T).todense()
            )
            union = set_left[:, None] + set_right[None, :] - intersection
            result = np.where(union > 0, intersection / union, 0.0)
        else:  # generalized_jaccard
            minimum = pairwise_min_sum(matrix_left, matrix_right)
            maximum = bag_left[:, None] + bag_right[None, :] - minimum
            result = np.where(maximum > 0, minimum / maximum, 0.0)
    return result


def _profiles_to_sparse(
    profiles_left: list[Counter], profiles_right: list[Counter]
) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
    vocabulary: dict[str, int] = {}
    for profile in profiles_left:
        for key in profile:
            vocabulary.setdefault(key, len(vocabulary))
    for profile in profiles_right:
        for key in profile:
            vocabulary.setdefault(key, len(vocabulary))

    def assemble(profiles: list[Counter]) -> sparse.csr_matrix:
        rows, cols, values = [], [], []
        for row, profile in enumerate(profiles):
            for key, count in profile.items():
                rows.append(row)
                cols.append(vocabulary[key])
                values.append(float(count))
        return sparse.csr_matrix(
            (values, (rows, cols)),
            shape=(len(profiles), len(vocabulary)),
            dtype=np.float64,
        )

    return assemble(profiles_left), assemble(profiles_right)


# ----------------------------------------------------------------------
# Frozen pre-kernel-engine bodies (differential references)
# ----------------------------------------------------------------------
def _edit_distance_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    transpositions: bool,
    batch: StringBatch | None = None,
) -> np.ndarray:
    batch = _resolve_batch(lefts, rights, batch)
    n_left, n_right = len(lefts), len(rights)
    result = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return result
    codes, lengths = batch.encoded_rights
    max_len = codes.shape[1]
    base_row = np.arange(max_len + 1, dtype=np.float64)
    take = lengths[:, None]  # per-right-string final DP column

    for i, text in enumerate(lefts):
        if not text:
            continue
        previous = np.broadcast_to(base_row, (n_right, max_len + 1)).copy()
        prev_prev: np.ndarray | None = None
        prev_char = -2
        for step, char in enumerate(text, start=1):
            code = ord(char)
            cost = (codes != code).astype(np.float64)
            current = np.empty_like(previous)
            current[:, 0] = step
            current[:, 1:] = np.minimum(
                previous[:, :-1] + cost,  # substitute
                previous[:, 1:] + 1.0,  # delete
            )
            if transpositions and prev_prev is not None and max_len >= 2:
                swap_ok = (codes[:, :-1] == code) & (codes[:, 1:] == prev_char)
                candidate = prev_prev[:, :-2] + 1.0
                current[:, 2:] = np.where(
                    swap_ok, np.minimum(current[:, 2:], candidate),
                    current[:, 2:],
                )
            current = _scan_min(current, 1.0)  # insert propagation
            prev_prev = previous
            previous = current
            prev_char = code
        distances = np.take_along_axis(previous, take, axis=1)[:, 0]
        longest = np.maximum(len(text), lengths)
        with np.errstate(invalid="ignore", divide="ignore"):
            result[i] = np.where(longest > 0, 1.0 - distances / longest, 0.0)
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


def levenshtein_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Frozen per-left-row Levenshtein (pre-kernel-engine)."""
    return _edit_distance_matrix_legacy(lefts, rights, False, batch)


def damerau_levenshtein_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Frozen per-left-row Damerau-Levenshtein (pre-kernel-engine)."""
    return _edit_distance_matrix_legacy(lefts, rights, True, batch)


_NW_GAP = 2.0


def needleman_wunsch_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Frozen per-left-row Needleman-Wunsch (pre-kernel-engine)."""
    batch = _resolve_batch(lefts, rights, batch)
    n_left, n_right = len(lefts), len(rights)
    result = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return result
    codes, lengths = batch.encoded_rights
    max_len = codes.shape[1]
    base_row = _NW_GAP * np.arange(max_len + 1, dtype=np.float64)
    take = lengths[:, None]

    for i, text in enumerate(lefts):
        if not text:
            continue
        previous = np.broadcast_to(base_row, (n_right, max_len + 1)).copy()
        for step, char in enumerate(text, start=1):
            cost = (codes != ord(char)).astype(np.float64)
            current = np.empty_like(previous)
            current[:, 0] = step * _NW_GAP
            current[:, 1:] = np.minimum(
                previous[:, :-1] + cost,
                previous[:, 1:] + _NW_GAP,
            )
            current = _scan_min(current, _NW_GAP)
            previous = current
        costs = np.take_along_axis(previous, take, axis=1)[:, 0]
        longest = np.maximum(len(text), lengths)
        with np.errstate(invalid="ignore", divide="ignore"):
            result[i] = np.where(
                longest > 0, 1.0 - costs / (_NW_GAP * longest), 0.0
            )
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


def lcs_subsequence_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Frozen per-left-row LCS subsequence (pre-kernel-engine)."""
    batch = _resolve_batch(lefts, rights, batch)
    n_left, n_right = len(lefts), len(rights)
    result = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return result
    codes, lengths = batch.encoded_rights
    max_len = codes.shape[1]
    take = lengths[:, None]

    for i, text in enumerate(lefts):
        if not text:
            continue
        previous = np.zeros((n_right, max_len + 1))
        for char in text:
            eq = (codes == ord(char)).astype(np.float64)
            current = np.empty_like(previous)
            current[:, 0] = 0.0
            current[:, 1:] = np.maximum(
                previous[:, 1:], previous[:, :-1] + eq
            )
            np.maximum.accumulate(current, axis=1, out=current)
            previous = current
        lcs = np.take_along_axis(previous, take, axis=1)[:, 0]
        longest = np.maximum(len(text), lengths)
        with np.errstate(invalid="ignore", divide="ignore"):
            result[i] = np.where(longest > 0, lcs / longest, 0.0)
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


def lcs_substring_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Frozen per-left-row LCS substring (pre-kernel-engine)."""
    batch = _resolve_batch(lefts, rights, batch)
    n_left, n_right = len(lefts), len(rights)
    result = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return result
    codes, lengths = batch.encoded_rights
    max_len = codes.shape[1]

    for i, text in enumerate(lefts):
        if not text:
            continue
        best = np.zeros(n_right)
        previous = np.zeros((n_right, max_len + 1))
        for char in text:
            eq = (codes == ord(char)).astype(np.float64)
            current = np.zeros_like(previous)
            current[:, 1:] = (previous[:, :-1] + 1.0) * eq
            np.maximum(best, current.max(axis=1), out=best)
            previous = current
        longest = np.maximum(len(text), lengths)
        with np.errstate(invalid="ignore", divide="ignore"):
            result[i] = np.where(longest > 0, best / longest, 0.0)
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


def jaro_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Frozen per-pair scalar Jaro loop (pre-kernel-engine)."""
    result = np.zeros((len(lefts), len(rights)))
    for i, a in enumerate(lefts):
        if not a:
            continue
        for j, b in enumerate(rights):
            if b:
                result[i, j] = jaro_similarity(a, b)
    return result


def qgrams_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Frozen full-universe q-grams distance (pre-kernel-engine)."""
    batch = _resolve_batch(lefts, rights, batch)
    n_left, n_right = len(lefts), len(rights)
    if n_left == 0 or n_right == 0:
        return np.zeros((n_left, n_right))
    matrix_left, matrix_right = _profiles_to_sparse(
        [_padded_trigrams(s) if s else Counter() for s in lefts],
        [_padded_trigrams(s) if s else Counter() for s in rights],
    )
    result = _qgrams_values(matrix_left, matrix_right)
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


def monge_elkan_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Frozen per-pair Monge-Elkan with memoized SW scores."""
    batch = _resolve_batch(lefts, rights, batch)
    token_lists_left, token_lists_right = batch.token_lists
    cache: dict[tuple[str, str], float] = {}

    def sw(a: str, b: str) -> float:
        key = (a, b)
        value = cache.get(key)
        if value is None:
            value = smith_waterman_similarity(a, b)
            cache[key] = value
        return value

    result = np.zeros((len(lefts), len(rights)))
    for i, list_a in enumerate(token_lists_left):
        if not list_a:
            continue
        for j, list_b in enumerate(token_lists_right):
            if not list_b:
                continue
            total = 0.0
            for token_a in list_a:
                total += max(sw(token_a, token_b) for token_b in list_b)
            result[i, j] = total / len(list_a)
    return np.clip(result, 0.0, 1.0)


def token_measure_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    measure: str,
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Frozen full-universe token measures (pre-kernel-engine)."""
    _check_token_measure(measure)
    batch = _resolve_batch(lefts, rights, batch)
    n_left, n_right = len(lefts), len(rights)
    if n_left == 0 or n_right == 0:
        return np.zeros((n_left, n_right))
    result = _token_measure_values(
        measure,
        *batch.token_sparse,
        *batch.token_binary,
        batch.token_sums,
    )
    result[batch.empty_mask] = 0.0
    return np.clip(result, 0.0, 1.0)


#: Token measures computable by :func:`token_measure_matrix`.
TOKEN_MATRIX_MEASURES = (
    "cosine_tokens",
    "euclidean_tokens",
    "block_distance",
    "dice",
    "simon_white",
    "overlap",
    "jaccard",
    "generalized_jaccard",
)

#: Measures whose DP shares the encoded code-point matrices.
ALIGNMENT_MEASURES = (
    "levenshtein",
    "damerau_levenshtein",
    "needleman_wunsch",
    "lcs_subsequence",
    "lcs_substring",
)

_MATRIX_FUNCTIONS = {
    "levenshtein": levenshtein_matrix,
    "damerau_levenshtein": damerau_levenshtein_matrix,
    "needleman_wunsch": needleman_wunsch_matrix,
    "lcs_subsequence": lcs_subsequence_matrix,
    "lcs_substring": lcs_substring_matrix,
    "jaro": jaro_matrix,
    "qgrams": qgrams_matrix,
    "monge_elkan": monge_elkan_matrix,
}

_LEGACY_MATRIX_FUNCTIONS = {
    "levenshtein": levenshtein_matrix_legacy,
    "damerau_levenshtein": damerau_levenshtein_matrix_legacy,
    "needleman_wunsch": needleman_wunsch_matrix_legacy,
    "lcs_subsequence": lcs_subsequence_matrix_legacy,
    "lcs_substring": lcs_substring_matrix_legacy,
    "jaro": jaro_matrix_legacy,
    "qgrams": qgrams_matrix_legacy,
    "monge_elkan": monge_elkan_matrix_legacy,
}


def schema_based_matrix(
    lefts: list[str],
    rights: list[str],
    measure: str,
    batch: StringBatch | None = None,
) -> np.ndarray:
    """All-pairs matrix for any of the 16 schema-based measures.

    ``batch`` optionally shares the encoded/tokenized artifacts across
    measures computed over the same value lists.
    """
    function = _MATRIX_FUNCTIONS.get(measure)
    if function is not None:
        return function(lefts, rights, batch)
    return token_measure_matrix(lefts, rights, measure, batch)


# ----------------------------------------------------------------------
# Sparse (candidate-cell) scoring path
# ----------------------------------------------------------------------
def schema_based_pairs(
    lefts: list[str],
    rights: list[str],
    measure: str,
    sparse_plan: SparsePlan,
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Per-candidate-pair values of a schema-based measure.

    Only the deduplicated candidate cells of ``sparse_plan`` are
    scored; the dense grid is never materialized.  For every retained
    pair ``k``, the returned value is **bitwise equal** to
    ``schema_based_matrix(lefts, rights, measure, batch)[pair_left[k],
    pair_right[k]]``: the alignment/Jaro cells run the same integer DP
    restricted to candidate cells, the token/q-gram cells re-derive
    the same exactly-representable integer sums by row gather, and
    Monge-Elkan folds the shared Smith-Waterman grid in the same
    position order (``tests/pipeline/test_blocking.py`` asserts the
    equality property, ``benchmarks/bench_blocking.py`` guards it).
    """
    batch = _resolve_batch(lefts, rights, batch)
    if sparse_plan.n_pairs == 0:
        return np.zeros(0)
    ci, cj = sparse_plan.cell_left, sparse_plan.cell_right
    if measure in ("levenshtein", "damerau_levenshtein"):
        cells = edit_distance_pairs(
            *batch.unique_left_encoding,
            *batch.unique_right_encoding,
            ci,
            cj,
            transpositions=(measure == "damerau_levenshtein"),
        )
    elif measure == "needleman_wunsch":
        cells = needleman_wunsch_pairs(
            *batch.unique_left_encoding,
            *batch.unique_right_encoding,
            ci,
            cj,
        )
    elif measure == "lcs_subsequence":
        cells = lcs_subsequence_pairs(
            *batch.unique_left_encoding,
            *batch.unique_right_encoding,
            ci,
            cj,
        )
    elif measure == "lcs_substring":
        cells = lcs_substring_pairs(
            *batch.unique_left_encoding,
            *batch.unique_right_encoding,
            ci,
            cj,
        )
    elif measure == "jaro":
        cells = jaro_pairs(
            *batch.unique_left_encoding,
            *batch.unique_right_encoding,
            ci,
            cj,
        )
    elif measure == "qgrams":
        cells = _qgram_pair_values(batch, ci, cj)
    elif measure == "monge_elkan":
        ids_left, ids_right, grid = batch.monge_elkan_grid
        cells = np.clip(
            monge_elkan_pairs(ids_left, ids_right, grid, ci, cj), 0.0, 1.0
        )
    else:
        _check_token_measure(measure)
        cells = _token_pair_values(measure, batch, ci, cj)
    return sparse_plan.scatter(cells)


def _zero_empty_cells(
    values: np.ndarray,
    batch: StringBatch,
    cell_left: np.ndarray,
    cell_right: np.ndarray,
) -> None:
    """Candidate-cell restriction of the empty-value convention."""
    left_empty, right_empty = batch.unique_empty_sides
    values[left_empty[cell_left] | right_empty[cell_right]] = 0.0


def _qgram_pair_values(
    batch: StringBatch, cell_left: np.ndarray, cell_right: np.ndarray
) -> np.ndarray:
    """Candidate-cell q-grams values via gathered profile rows.

    Profile counts are small non-negative integers, so every min-sum
    and total is exactly representable — the row-gathered sums equal
    the dense :func:`_qgrams_values` cells bit for bit.
    """
    matrix_left, matrix_right = batch.unique_qgram_sparse
    gathered_left = matrix_left[cell_left]
    gathered_right = matrix_right[cell_right]
    minimum = np.asarray(
        gathered_left.minimum(gathered_right).sum(axis=1)
    ).ravel()
    sums_left = matrix_left.sum(axis=1).A1
    sums_right = matrix_right.sum(axis=1).A1
    total = sums_left[cell_left] + sums_right[cell_right]
    with np.errstate(invalid="ignore", divide="ignore"):
        values = np.where(total > 0, 2.0 * minimum / total, 0.0)
    _zero_empty_cells(values, batch, cell_left, cell_right)
    return np.clip(values, 0.0, 1.0)


def _token_pair_values(
    measure: str,
    batch: StringBatch,
    cell_left: np.ndarray,
    cell_right: np.ndarray,
) -> np.ndarray:
    """Candidate-cell token-measure values via gathered count rows.

    All intermediates (dots, intersections, min-sums, squared norms)
    are integer-valued float64 below 2^53, hence exact however they
    are summed — the per-cell formulas then perform the same scalar
    IEEE operations as :func:`_token_measure_values`.
    """
    matrix_left, matrix_right = batch.unique_token_sparse
    binary_left, binary_right = batch.unique_token_binary
    bag_left, bag_right, set_left, set_right = batch.unique_token_sums
    gathered_left = matrix_left[cell_left]
    gathered_right = matrix_right[cell_right]

    def dot_rows() -> np.ndarray:
        return np.asarray(
            gathered_left.multiply(gathered_right).sum(axis=1)
        ).ravel()

    def intersection_rows() -> np.ndarray:
        return np.asarray(
            binary_left[cell_left]
            .multiply(binary_right[cell_right])
            .sum(axis=1)
        ).ravel()

    def min_sum_rows() -> np.ndarray:
        return np.asarray(
            gathered_left.minimum(gathered_right).sum(axis=1)
        ).ravel()

    with np.errstate(invalid="ignore", divide="ignore"):
        if measure == "cosine_tokens":
            norms_left = np.sqrt(
                matrix_left.multiply(matrix_left).sum(axis=1)
            ).A1
            norms_right = np.sqrt(
                matrix_right.multiply(matrix_right).sum(axis=1)
            ).A1
            denominator = norms_left[cell_left] * norms_right[cell_right]
            values = np.where(
                denominator > 0, dot_rows() / denominator, 0.0
            )
        elif measure == "euclidean_tokens":
            sq_left = matrix_left.multiply(matrix_left).sum(axis=1).A1
            sq_right = matrix_right.multiply(matrix_right).sum(axis=1).A1
            squared = (
                sq_left[cell_left] + sq_right[cell_right] - 2.0 * dot_rows()
            )
            distance = np.sqrt(np.maximum(squared, 0.0))
            bound = np.sqrt(sq_left[cell_left] + sq_right[cell_right])
            values = np.where(bound > 0, 1.0 - distance / bound, 0.0)
        elif measure in ("block_distance", "simon_white"):
            minimum = min_sum_rows()
            total = bag_left[cell_left] + bag_right[cell_right]
            values = np.where(total > 0, 2.0 * minimum / total, 0.0)
        elif measure == "dice":
            intersection = intersection_rows()
            total = set_left[cell_left] + set_right[cell_right]
            values = np.where(total > 0, 2.0 * intersection / total, 0.0)
        elif measure == "overlap":
            intersection = intersection_rows()
            smaller = np.minimum(set_left[cell_left], set_right[cell_right])
            values = np.where(smaller > 0, intersection / smaller, 0.0)
        elif measure == "jaccard":
            intersection = intersection_rows()
            union = (
                set_left[cell_left] + set_right[cell_right] - intersection
            )
            values = np.where(union > 0, intersection / union, 0.0)
        else:  # generalized_jaccard
            minimum = min_sum_rows()
            maximum = bag_left[cell_left] + bag_right[cell_right] - minimum
            values = np.where(maximum > 0, minimum / maximum, 0.0)
    _zero_empty_cells(values, batch, cell_left, cell_right)
    return np.clip(values, 0.0, 1.0)


def schema_based_matrix_legacy(
    lefts: list[str],
    rights: list[str],
    measure: str,
    batch: StringBatch | None = None,
) -> np.ndarray:
    """Frozen pre-kernel-engine dispatch of the 16 measures.

    Kept as the differential-testing and benchmarking reference: the
    kernel path of :func:`schema_based_matrix` must reproduce it bit
    for bit (``benchmarks/bench_kernel_engine.py`` enforces both the
    equality and the speedup floor).
    """
    function = _LEGACY_MATRIX_FUNCTIONS.get(measure)
    if function is not None:
        return function(lefts, rights, batch)
    return token_measure_matrix_legacy(lefts, rights, measure, batch)
