"""Deduplicated, blocked, thread-parallel pairwise-kernel engine.

The similarity families compute all-pairs ``lefts x rights`` matrices.
Real clean-clean datasets repeat attribute values heavily, and the
per-pair Python loops of the string kernels dominate corpus generation
once models and embeddings are cached.  This module is the execution
layer those kernels route through:

* :class:`UniquePlan` factors the ``lefts x rights`` product down to
  the grid of *unique* values (first-occurrence order, so derived
  vocabularies match the non-deduplicated construction exactly) and
  scatters results back with ``np.ix_`` — every duplicated value pair
  is computed once.
* :func:`row_blocks` / :func:`run_blocks` tile the unique grid into
  cache-sized row blocks and execute them on a thread pool (the numpy
  kernels release the GIL).  Each block writes a disjoint row range of
  a preallocated output, so assembly is deterministic and the result
  is **invariant under the thread count** — the pool size comes from
  the same ``workers`` knob that drives process-level parallelism
  (:func:`kernel_threads` / :func:`get_kernel_threads`).
* The kernels themselves are *batched across left strings*: blocks are
  length-sorted and each DP step advances every left string of the
  block against every right string simultaneously (3-D arrays), so the
  per-row Python overhead of the former one-left-at-a-time loops is
  amortized over the whole block.

Bit-identity is the design constraint, not a best effort: every kernel
performs the same IEEE operations in the same order as the frozen
``*_legacy`` body it replaces (differential tests in
``tests/pipeline/test_kernels.py`` assert exact equality, and
``benchmarks/bench_kernel_engine.py`` guards both the >= 3x speedup
and the bitwise match).  The Smith-Waterman grid relies on all DP
values being small multiples of 0.5 (dyadic rationals), which makes
the offset-based scan propagation exact; the edit-distance DPs operate
on exactly representable small integers.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ROW_CHUNK_CELLS",
    "UniquePlan",
    "SparsePlan",
    "kernel_threads",
    "get_kernel_threads",
    "row_chunk_size",
    "row_blocks",
    "run_blocks",
    "encode_strings",
    "edit_distance_unique",
    "needleman_wunsch_unique",
    "lcs_subsequence_unique",
    "lcs_substring_unique",
    "jaro_unique",
    "smith_waterman_grid",
    "monge_elkan_unique",
    "edit_distance_pairs",
    "needleman_wunsch_pairs",
    "lcs_subsequence_pairs",
    "lcs_substring_pairs",
    "jaro_pairs",
    "monge_elkan_pairs",
]


# ----------------------------------------------------------------------
# Row chunking
# ----------------------------------------------------------------------
#: Cells per dense row chunk of the incremental scoring paths (~8 MB of
#: float64).  The chunk size is a function of the dataset *shape* only —
#: never of a memory budget or shard count — so shard boundaries always
#: land on chunk multiples and every chunked/sharded pass performs the
#: exact same per-block operations as the full dense pass.
ROW_CHUNK_CELLS = 1 << 20


def row_chunk_size(n_right: int) -> int:
    """Rows per dense chunk against ``n_right`` columns.

    Deterministic in the dataset shape alone, which is what makes the
    sharded paths bit-identical to the unsharded ones: any row range
    aligned to a multiple of this size decomposes into the same chunk
    blocks the full pass would compute.
    """
    return max(1, ROW_CHUNK_CELLS // max(int(n_right), 1))


# ----------------------------------------------------------------------
# Thread knob
# ----------------------------------------------------------------------
#: Kernel thread count of the current process; 1 = serial.  Process
#: workers keep the default (they already saturate the cores), the
#: serial corpus path raises it via :func:`kernel_threads`.
_KERNEL_THREADS = 1


def get_kernel_threads() -> int:
    """The thread count kernels use when none is passed explicitly."""
    return _KERNEL_THREADS


@contextmanager
def kernel_threads(n: int):
    """Context manager scoping the kernel thread pool size.

    Results are invariant under ``n`` by construction (disjoint block
    writes); only wall-clock changes.
    """
    global _KERNEL_THREADS
    previous = _KERNEL_THREADS
    _KERNEL_THREADS = max(int(n), 1)
    try:
        yield
    finally:
        _KERNEL_THREADS = previous


# ----------------------------------------------------------------------
# Unique-value execution plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UniquePlan:
    """Factorization of ``lefts x rights`` into the unique-value grid.

    ``lefts`` / ``rights`` hold the distinct values in **first
    occurrence order** — the order in which a non-deduplicated pass
    would first see them — so vocabulary-building kernels produce the
    same vocabularies (and the same summation orders) as the legacy
    full-list path.  ``left_inverse[i]`` maps original row ``i`` to its
    unique row; ``left_index[u]`` maps unique row ``u`` back to the
    first original row holding that value.
    """

    lefts: tuple[str, ...]
    rights: tuple[str, ...]
    left_inverse: np.ndarray = field(compare=False)
    right_inverse: np.ndarray = field(compare=False)
    left_index: np.ndarray = field(compare=False)
    right_index: np.ndarray = field(compare=False)

    @classmethod
    def build(cls, lefts: list[str], rights: list[str]) -> "UniquePlan":
        unique_left, inverse_left, index_left = _first_occurrence(lefts)
        unique_right, inverse_right, index_right = _first_occurrence(rights)
        return cls(
            lefts=tuple(unique_left),
            rights=tuple(unique_right),
            left_inverse=inverse_left,
            right_inverse=inverse_right,
            left_index=index_left,
            right_index=index_right,
        )

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the full (non-deduplicated) matrix."""
        return len(self.left_inverse), len(self.right_inverse)

    @property
    def unique_shape(self) -> tuple[int, int]:
        """Shape of the unique-value grid."""
        return len(self.lefts), len(self.rights)

    @property
    def dedup_ratio(self) -> float:
        """Unique cells per full cell — 1.0 means nothing repeats."""
        full = self.shape[0] * self.shape[1]
        if full == 0:
            return 1.0
        return (self.unique_shape[0] * self.unique_shape[1]) / full

    def expand(self, unique_matrix: np.ndarray) -> np.ndarray:
        """Scatter a unique-grid matrix back to the full pair grid."""
        if 0 in self.shape:
            return np.zeros(self.shape)
        return unique_matrix[np.ix_(self.left_inverse, self.right_inverse)]


def _first_occurrence(
    values: list[str],
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Unique values in first-occurrence order plus inverse/index maps."""
    positions: dict[str, int] = {}
    first: list[int] = []
    inverse = np.empty(len(values), dtype=np.intp)
    for i, value in enumerate(values):
        slot = positions.get(value)
        if slot is None:
            slot = len(positions)
            positions[value] = slot
            first.append(i)
        inverse[i] = slot
    return list(positions), inverse, np.asarray(first, dtype=np.intp)


@dataclass(frozen=True)
class SparsePlan:
    """Candidate-cell execution plan — the sparse sibling of
    :class:`UniquePlan`.

    Candidate record pairs (from a blocking scheme) are mapped through
    the :class:`UniquePlan` inverses onto the unique-value grid and
    deduplicated: each distinct ``(unique left, unique right)`` cell is
    scored once by the ``*_pairs`` kernels, then :meth:`scatter` maps
    per-cell values back to per-pair values.  Sharing the
    :class:`UniquePlan` universe means the sparse path consumes the
    exact same cached artifacts (encodings, token matrices, SW grids)
    as the dense path — and therefore the exact same inputs cell for
    cell, which is what makes the bit-identity guarantee composable.
    """

    plan: UniquePlan
    pair_left: np.ndarray = field(compare=False)
    pair_right: np.ndarray = field(compare=False)
    cell_left: np.ndarray = field(compare=False)
    cell_right: np.ndarray = field(compare=False)
    pair_to_cell: np.ndarray = field(compare=False)

    @classmethod
    def build(
        cls,
        plan: UniquePlan,
        pair_left: np.ndarray,
        pair_right: np.ndarray,
    ) -> "SparsePlan":
        pair_left = np.asarray(pair_left, dtype=np.intp)
        pair_right = np.asarray(pair_right, dtype=np.intp)
        stride = np.int64(max(len(plan.rights), 1))
        folded = (
            plan.left_inverse[pair_left].astype(np.int64) * stride
            + plan.right_inverse[pair_right]
        )
        cells, inverse = np.unique(folded, return_inverse=True)
        cell_left, cell_right = np.divmod(cells, stride)
        return cls(
            plan=plan,
            pair_left=pair_left,
            pair_right=pair_right,
            cell_left=cell_left.astype(np.intp),
            cell_right=cell_right.astype(np.intp),
            pair_to_cell=inverse.astype(np.intp),
        )

    @property
    def n_pairs(self) -> int:
        return int(self.pair_left.shape[0])

    @property
    def n_cells(self) -> int:
        return int(self.cell_left.shape[0])

    @property
    def dedup_ratio(self) -> float:
        """Scored cells per candidate pair — 1.0 means nothing repeats."""
        if self.n_pairs == 0:
            return 1.0
        return self.n_cells / self.n_pairs

    def scatter(self, cell_values: np.ndarray) -> np.ndarray:
        """Per-pair values from per-cell values (pure gather — exact)."""
        return cell_values[self.pair_to_cell]


# ----------------------------------------------------------------------
# Block scheduler
# ----------------------------------------------------------------------
#: Target cells (rows x padded right width) per DP block: ~0.5M float64
#: cells keep the handful of live DP slabs inside the L2/L3 cache.
_TARGET_BLOCK_CELLS = 1 << 19


def row_blocks(
    n_rows: int,
    row_weight: int,
    threads: int | None = None,
    target_cells: int = _TARGET_BLOCK_CELLS,
) -> list[tuple[int, int]]:
    """Contiguous row ranges tiling ``n_rows``.

    ``row_weight`` is the cost of one row (e.g. ``n_right * max_len``);
    blocks are sized so ``rows * row_weight`` stays near
    ``target_cells``.  With ``threads > 1`` blocks are additionally
    capped so the pool gets at least a few blocks per thread for load
    balancing.
    """
    if n_rows <= 0:
        return []
    threads = get_kernel_threads() if threads is None else max(threads, 1)
    per_block = max(1, target_cells // max(row_weight, 1))
    if threads > 1:
        balanced = -(-n_rows // (threads * 4))
        per_block = max(1, min(per_block, balanced))
    return [
        (start, min(start + per_block, n_rows))
        for start in range(0, n_rows, per_block)
    ]


def run_blocks(
    blocks: list[tuple[int, int]],
    kernel,
    threads: int | None = None,
) -> None:
    """Execute ``kernel(start, stop)`` for every block.

    Serial when ``threads <= 1`` or there is a single block; otherwise
    on a thread pool.  Kernels write disjoint output rows, so the
    result never depends on scheduling.
    """
    threads = get_kernel_threads() if threads is None else max(threads, 1)
    if threads <= 1 or len(blocks) <= 1:
        for start, stop in blocks:
            kernel(start, stop)
        return
    with ThreadPoolExecutor(max_workers=threads) as pool:
        futures = [pool.submit(kernel, start, stop) for start, stop in blocks]
        for future in futures:
            future.result()


# ----------------------------------------------------------------------
# Shared encoding helpers
# ----------------------------------------------------------------------
def encode_strings(strings: tuple[str, ...] | list[str]):
    """Pad strings into an int32 code-point matrix plus lengths.

    Padding uses ``-1``, which never equals a real code point — padded
    steps of the batched kernels are therefore self-masking.
    """
    lengths = np.array([len(s) for s in strings], dtype=np.int64)
    max_len = int(lengths.max()) if len(strings) else 0
    codes = np.full((len(strings), max_len), -1, dtype=np.int32)
    for row, text in enumerate(strings):
        if text:
            codes[row, : len(text)] = np.frombuffer(
                text.encode("utf-32-le"), dtype=np.uint32
            ).astype(np.int32)
    return codes, lengths


def _scan_min_inplace(rows: np.ndarray, offsets: np.ndarray) -> None:
    """``row[j] = min_k<=j (row[k] + step*(j-k))`` along the last axis.

    ``offsets`` is ``step * arange(width)`` in the rows' dtype; the
    scan runs fully in place.  On the exactly-representable integer
    (and dyadic) DP values the offset trick is exact, so this matches
    the scalar insert/gap propagation bit for bit.
    """
    np.subtract(rows, offsets, out=rows)
    np.minimum.accumulate(rows, axis=-1, out=rows)
    np.add(rows, offsets, out=rows)


def _scan_max_inplace(rows: np.ndarray, offsets: np.ndarray) -> None:
    """``row[j] = max_k<=j (row[k] + step*(j-k))`` along the last axis."""
    np.subtract(rows, offsets, out=rows)
    np.maximum.accumulate(rows, axis=-1, out=rows)
    np.add(rows, offsets, out=rows)


def _length_sorted_rows(lengths: np.ndarray) -> np.ndarray:
    """Non-empty row indices, longest first.

    Descending order gives each block a shrinking *prefix* of active
    rows as its DP steps pass the shorter strings, and packs strings of
    similar length together so padding waste stays small.
    """
    nonempty = np.flatnonzero(lengths > 0)
    order = np.argsort(-lengths[nonempty], kind="stable")
    return nonempty[order]


def _finished_segment(lens: np.ndarray, step: int) -> tuple[int, int]:
    """``[start, stop)`` of rows with exactly ``len == step``.

    ``lens`` is descending, so the rows finishing at this step form a
    contiguous segment ending at the active-prefix boundary.
    """
    start = int(np.searchsorted(-lens, -step, side="left"))
    stop = int(np.searchsorted(-lens, -step, side="right"))
    return start, stop


# ----------------------------------------------------------------------
# Alignment kernels (unique grid, blocked, batched across lefts)
# ----------------------------------------------------------------------
def edit_distance_unique(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    transpositions: bool,
    threads: int | None = None,
) -> np.ndarray:
    """Unique-grid normalized (Damerau-)Levenshtein similarity.

    Each block runs one DP whose step ``i`` advances *every* left
    string of the block against every right string; rows whose string
    ends at step ``i`` extract their distances and drop out of the
    active prefix.  All DP values are small integers, so the state
    lives in preallocated int32 slabs (half the traffic of float64,
    no per-step allocations) and converts to float only at extraction
    — bit-identical to the float64 legacy DP.
    """
    n_left, n_right = left_codes.shape[0], right_codes.shape[0]
    out = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return out
    max_len = right_codes.shape[1]
    base_row = np.arange(max_len + 1, dtype=np.int32)
    offsets = np.arange(max_len + 1, dtype=np.int32)
    take = np.broadcast_to(right_lengths[None, :, None], (1, n_right, 1))
    rows = _length_sorted_rows(left_lengths)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[ids]
        codes_a = left_codes[ids]
        shape = (len(ids), n_right, max_len + 1)
        previous = np.broadcast_to(base_row, shape).copy()
        current = np.empty(shape, dtype=np.int32)
        scratch = np.empty(shape, dtype=np.int32)
        older = np.empty(shape, dtype=np.int32) if transpositions else None
        cost = np.empty((len(ids), n_right, max_len), dtype=bool)
        if transpositions and max_len >= 2:
            swap_ok = np.empty((len(ids), n_right, max_len - 1), dtype=bool)
            swap_prev = np.empty_like(swap_ok)
        else:
            swap_ok = swap_prev = None
        prev_prev: np.ndarray | None = None
        prev_ca: np.ndarray | None = None
        for step in range(1, int(lens[0]) + 1):
            n_active = int(np.searchsorted(-lens, -step, side="right"))
            prev = previous[:n_active]
            cur = current[:n_active]
            tmp = scratch[:n_active]
            ca = codes_a[:n_active, step - 1]
            np.not_equal(
                right_codes[None, :, :],
                ca[:, None, None],
                out=cost[:n_active],
            )
            np.add(prev[..., :-1], cost[:n_active], out=cur[..., 1:])
            np.add(prev[..., 1:], 1, out=tmp[..., 1:])
            np.minimum(cur[..., 1:], tmp[..., 1:], out=cur[..., 1:])
            cur[..., 0] = step
            if transpositions and prev_prev is not None and max_len >= 2:
                ok = swap_ok[:n_active]
                np.equal(
                    right_codes[None, :, :-1], ca[:, None, None], out=ok
                )
                np.equal(
                    right_codes[None, :, 1:],
                    prev_ca[:n_active, None, None],
                    out=swap_prev[:n_active],
                )
                ok &= swap_prev[:n_active]
                candidate = tmp[..., 2:]
                np.add(prev_prev[:n_active, :, :-2], 1, out=candidate)
                np.minimum(cur[..., 2:], candidate, out=candidate)
                np.copyto(cur[..., 2:], candidate, where=ok)
            _scan_min_inplace(cur, offsets)  # insert propagation
            if transpositions:
                previous, current, older = current, older, previous
                prev_prev = older
            else:
                previous, current = current, previous
            prev_ca = ca
            first, last = _finished_segment(lens, step)
            if first < last:
                distances = np.take_along_axis(
                    previous[first:last], take, axis=2
                )[..., 0]
                longest = np.maximum(step, right_lengths)
                with np.errstate(invalid="ignore", divide="ignore"):
                    out[ids[first:last]] = np.where(
                        longest > 0, 1.0 - distances / longest, 0.0
                    )

    weight = n_right * (max_len + 1)
    run_blocks(row_blocks(len(rows), weight, threads), block, threads)
    _mask_empty(out, left_lengths, right_lengths)
    return np.clip(out, 0.0, 1.0)


_NW_GAP = 2.0


def needleman_wunsch_unique(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    threads: int | None = None,
) -> np.ndarray:
    """Unique-grid Needleman-Wunsch similarity (mismatch 1, gap 2)."""
    n_left, n_right = left_codes.shape[0], right_codes.shape[0]
    out = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return out
    max_len = right_codes.shape[1]
    gap = int(_NW_GAP)
    base_row = gap * np.arange(max_len + 1, dtype=np.int32)
    offsets = gap * np.arange(max_len + 1, dtype=np.int32)
    take = np.broadcast_to(right_lengths[None, :, None], (1, n_right, 1))
    rows = _length_sorted_rows(left_lengths)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[ids]
        codes_a = left_codes[ids]
        shape = (len(ids), n_right, max_len + 1)
        previous = np.broadcast_to(base_row, shape).copy()
        current = np.empty(shape, dtype=np.int32)
        scratch = np.empty(shape, dtype=np.int32)
        cost = np.empty((len(ids), n_right, max_len), dtype=bool)
        for step in range(1, int(lens[0]) + 1):
            n_active = int(np.searchsorted(-lens, -step, side="right"))
            prev = previous[:n_active]
            cur = current[:n_active]
            tmp = scratch[:n_active]
            ca = codes_a[:n_active, step - 1]
            np.not_equal(
                right_codes[None, :, :],
                ca[:, None, None],
                out=cost[:n_active],
            )
            np.add(prev[..., :-1], cost[:n_active], out=cur[..., 1:])
            np.add(prev[..., 1:], gap, out=tmp[..., 1:])
            np.minimum(cur[..., 1:], tmp[..., 1:], out=cur[..., 1:])
            cur[..., 0] = step * gap
            _scan_min_inplace(cur, offsets)
            previous, current = current, previous
            first, last = _finished_segment(lens, step)
            if first < last:
                costs = np.take_along_axis(
                    previous[first:last], take, axis=2
                )[..., 0]
                longest = np.maximum(step, right_lengths)
                with np.errstate(invalid="ignore", divide="ignore"):
                    out[ids[first:last]] = np.where(
                        longest > 0,
                        1.0 - costs / (_NW_GAP * longest),
                        0.0,
                    )

    weight = n_right * (max_len + 1)
    run_blocks(row_blocks(len(rows), weight, threads), block, threads)
    _mask_empty(out, left_lengths, right_lengths)
    return np.clip(out, 0.0, 1.0)


def lcs_subsequence_unique(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    threads: int | None = None,
) -> np.ndarray:
    """Unique-grid longest-common-subsequence similarity."""
    n_left, n_right = left_codes.shape[0], right_codes.shape[0]
    out = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return out
    max_len = right_codes.shape[1]
    take = np.broadcast_to(right_lengths[None, :, None], (1, n_right, 1))
    rows = _length_sorted_rows(left_lengths)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[ids]
        codes_a = left_codes[ids]
        shape = (len(ids), n_right, max_len + 1)
        previous = np.zeros(shape, dtype=np.int32)
        current = np.empty(shape, dtype=np.int32)
        eq = np.empty((len(ids), n_right, max_len), dtype=bool)
        for step in range(1, int(lens[0]) + 1):
            n_active = int(np.searchsorted(-lens, -step, side="right"))
            prev = previous[:n_active]
            cur = current[:n_active]
            ca = codes_a[:n_active, step - 1]
            np.equal(
                right_codes[None, :, :], ca[:, None, None], out=eq[:n_active]
            )
            np.add(prev[..., :-1], eq[:n_active], out=cur[..., 1:])
            np.maximum(prev[..., 1:], cur[..., 1:], out=cur[..., 1:])
            cur[..., 0] = 0
            np.maximum.accumulate(cur, axis=-1, out=cur)
            previous, current = current, previous
            first, last = _finished_segment(lens, step)
            if first < last:
                lcs = np.take_along_axis(
                    previous[first:last], take, axis=2
                )[..., 0]
                longest = np.maximum(step, right_lengths)
                with np.errstate(invalid="ignore", divide="ignore"):
                    out[ids[first:last]] = np.where(
                        longest > 0, lcs / longest, 0.0
                    )

    weight = n_right * (max_len + 1)
    run_blocks(row_blocks(len(rows), weight, threads), block, threads)
    _mask_empty(out, left_lengths, right_lengths)
    return np.clip(out, 0.0, 1.0)


def lcs_substring_unique(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    threads: int | None = None,
) -> np.ndarray:
    """Unique-grid longest-common-substring similarity."""
    n_left, n_right = left_codes.shape[0], right_codes.shape[0]
    out = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return out
    max_len = right_codes.shape[1]
    rows = _length_sorted_rows(left_lengths)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[ids]
        codes_a = left_codes[ids]
        shape = (len(ids), n_right, max_len + 1)
        best = np.zeros((len(ids), n_right), dtype=np.int32)
        previous = np.zeros(shape, dtype=np.int32)
        current = np.empty(shape, dtype=np.int32)
        eq = np.empty((len(ids), n_right, max_len), dtype=bool)
        for step in range(1, int(lens[0]) + 1):
            n_active = int(np.searchsorted(-lens, -step, side="right"))
            prev = previous[:n_active]
            cur = current[:n_active]
            ca = codes_a[:n_active, step - 1]
            np.equal(
                right_codes[None, :, :], ca[:, None, None], out=eq[:n_active]
            )
            np.add(prev[..., :-1], 1, out=cur[..., 1:])
            np.multiply(cur[..., 1:], eq[:n_active], out=cur[..., 1:])
            cur[..., 0] = 0
            np.maximum(
                best[:n_active],
                cur.max(axis=-1),
                out=best[:n_active],
            )
            previous, current = current, previous
            first, last = _finished_segment(lens, step)
            if first < last:
                longest = np.maximum(step, right_lengths)
                with np.errstate(invalid="ignore", divide="ignore"):
                    out[ids[first:last]] = np.where(
                        longest > 0, best[first:last] / longest, 0.0
                    )

    weight = n_right * (max_len + 1)
    run_blocks(row_blocks(len(rows), weight, threads), block, threads)
    _mask_empty(out, left_lengths, right_lengths)
    return np.clip(out, 0.0, 1.0)


def _mask_empty(
    out: np.ndarray, left_lengths: np.ndarray, right_lengths: np.ndarray
) -> None:
    """Zero rows/columns of empty strings (the builder convention)."""
    out[left_lengths == 0, :] = 0.0
    out[:, right_lengths == 0] = 0.0


# ----------------------------------------------------------------------
# Jaro (length-sorted blocks, per-pair windows)
# ----------------------------------------------------------------------
def jaro_unique(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    threads: int | None = None,
) -> np.ndarray:
    """Unique-grid Jaro similarity as a batched array kernel.

    The greedy common-character matching is inherently sequential in
    the *left* string's characters, but each of those steps is a pure
    array operation over every ``(left, right)`` pair of the block:
    first-unflagged-match selection via ``argmax`` over the per-pair
    match window, then one vectorized transposition count from the
    cumulative match ranks.
    """
    n_left, n_right = left_codes.shape[0], right_codes.shape[0]
    out = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return out
    max_right = right_codes.shape[1]
    cols = np.arange(max_right)
    rows = _length_sorted_rows(left_lengths)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[ids]
        codes_a = left_codes[ids]
        n_block = len(ids)
        la = lens[:, None]
        lb = right_lengths[None, :]
        window = np.maximum(np.maximum(la, lb) // 2 - 1, 0)
        # Per-pair window bounds at step 0; both shift by one per step.
        low = 0 - window
        high = window.copy()
        # Unflagged-position tracking keeps candidate filtering to one
        # in-place ``&=`` per step; right-side padding positions stay
        # True forever but never match (the active-prefix slicing keeps
        # the -1 pad out of the left side, and a real code never equals
        # the pad).
        unflagged = np.ones((n_block, n_right, max_right), dtype=bool)
        matched = np.zeros((n_block, n_right, int(lens[0])), dtype=bool)
        cand = np.empty((n_block, n_right, max_right), dtype=bool)
        winbuf = np.empty_like(cand)
        cols3 = cols[None, None, :]
        for i in range(int(lens[0])):
            n_active = int(np.searchsorted(-lens, -(i + 1), side="right"))
            ca = codes_a[:n_active, i]
            step_cand = cand[:n_active]
            step_win = winbuf[:n_active]
            np.equal(
                right_codes[None, :, :], ca[:, None, None], out=step_cand
            )
            step_cand &= unflagged[:n_active]
            np.greater_equal(cols3, low[:n_active, :, None], out=step_win)
            step_cand &= step_win
            np.less_equal(cols3, high[:n_active, :, None], out=step_win)
            step_cand &= step_win
            has = step_cand.any(axis=-1)
            if has.any():
                first_j = np.argmax(step_cand, axis=-1)
                ai, bi = np.nonzero(has)
                unflagged[ai, bi, first_j[ai, bi]] = False
                matched[ai, bi, i] = True
            low += 1
            high += 1
        b_flag = ~unflagged
        common = b_flag.sum(axis=-1)
        transpositions = _jaro_transpositions(
            codes_a, right_codes, matched, b_flag, common
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            sims = np.where(
                common > 0,
                (
                    common / la
                    + common / lb
                    + (common - transpositions) / np.maximum(common, 1)
                )
                / 3.0,
                0.0,
            )
        out[ids] = sims

    weight = n_right * max(max_right, 1)
    run_blocks(row_blocks(len(rows), weight, threads), block, threads)
    _mask_empty(out, left_lengths, right_lengths)
    return out


def _jaro_transpositions(
    codes_a: np.ndarray,
    codes_b: np.ndarray,
    matched: np.ndarray,
    b_flag: np.ndarray,
    common: np.ndarray,
) -> np.ndarray:
    """Half the positions where the matched sequences disagree.

    The k-th matched left character (in left order) is lined up against
    the k-th flagged right character (in right order) by scattering
    both along their cumulative match ranks.
    """
    n_block, n_right = common.shape
    max_common = int(common.max()) if common.size else 0
    if max_common == 0:
        return np.zeros((n_block, n_right), dtype=np.int64)
    rank_a = np.cumsum(matched, axis=-1) - 1
    rank_b = np.cumsum(b_flag, axis=-1) - 1
    seq_a = np.full((n_block, n_right, max_common), -1, dtype=np.int32)
    seq_b = np.full((n_block, n_right, max_common), -2, dtype=np.int32)
    ai, bi, ci = np.nonzero(matched)
    seq_a[ai, bi, rank_a[ai, bi, ci]] = codes_a[ai, ci]
    ai, bi, cj = np.nonzero(b_flag)
    seq_b[ai, bi, rank_b[ai, bi, cj]] = codes_b[bi, cj]
    return ((seq_a != seq_b) & (seq_a != -1)).sum(axis=-1) // 2


# ----------------------------------------------------------------------
# Smith-Waterman token grid + Monge-Elkan assembly
# ----------------------------------------------------------------------
_SW_MATCH = 1.0
_SW_MISMATCH = -2.0
_SW_GAP = -0.5

def smith_waterman_grid(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    threads: int | None = None,
) -> np.ndarray:
    """All-pairs Smith-Waterman similarity of two token vocabularies.

    Every DP value is a small multiple of 0.5, so the whole DP runs on
    doubled int32 scores (match +2, mismatch -4, gap -1); halving at
    extraction is exact (dyadic), and the offset-based max scan used
    for the in-row gap propagation is exact on integers — the grid is
    bit-identical to the scalar
    :func:`repro.textsim.smith_waterman.smith_waterman_similarity`.
    """
    n_left, n_right = left_codes.shape[0], right_codes.shape[0]
    out = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return out
    max_len = right_codes.shape[1]
    match2, mismatch2, gap2 = (
        int(2 * _SW_MATCH),
        int(2 * _SW_MISMATCH),
        int(2 * _SW_GAP),
    )
    offsets = gap2 * np.arange(max_len + 1, dtype=np.int32)
    rows = _length_sorted_rows(left_lengths)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[ids]
        codes_a = left_codes[ids]
        shape = (len(ids), n_right, max_len + 1)
        best = np.zeros((len(ids), n_right), dtype=np.int32)
        previous = np.zeros(shape, dtype=np.int32)
        current = np.empty(shape, dtype=np.int32)
        scratch = np.empty(shape, dtype=np.int32)
        substitution = np.empty(
            (len(ids), n_right, max_len), dtype=np.int32
        )
        for step in range(1, int(lens[0]) + 1):
            n_active = int(np.searchsorted(-lens, -step, side="right"))
            prev = previous[:n_active]
            cur = current[:n_active]
            tmp = scratch[:n_active]
            ca = codes_a[:n_active, step - 1]
            sub = substitution[:n_active]
            np.copyto(sub, mismatch2)
            np.copyto(
                sub,
                match2,
                where=right_codes[None, :, :] == ca[:, None, None],
            )
            np.add(prev[..., :-1], sub, out=cur[..., 1:])
            np.add(prev[..., 1:], gap2, out=tmp[..., 1:])
            np.maximum(cur[..., 1:], tmp[..., 1:], out=cur[..., 1:])
            np.maximum(cur[..., 1:], 0, out=cur[..., 1:])
            cur[..., 0] = 0
            _scan_max_inplace(cur, offsets)
            np.maximum(
                best[:n_active],
                cur[..., 1:].max(axis=-1),
                out=best[:n_active],
            )
            previous, current = current, previous
            first, last = _finished_segment(lens, step)
            if first < last:
                shortest = np.minimum(step, right_lengths)
                score = best[first:last] / 2.0
                with np.errstate(invalid="ignore", divide="ignore"):
                    out[ids[first:last]] = np.where(
                        shortest > 0,
                        score / (shortest * _SW_MATCH),
                        0.0,
                    )

    weight = n_right * (max_len + 1)
    run_blocks(row_blocks(len(rows), weight, threads), block, threads)
    return out


def monge_elkan_unique(
    left_token_ids: list[np.ndarray],
    right_token_ids: list[np.ndarray],
    grid: np.ndarray,
) -> np.ndarray:
    """Monge-Elkan over a precomputed unique-token-pair SW ``grid``.

    ``*_token_ids`` hold, per unique value, the token indices into the
    grid axes — duplicates included, in text order, exactly as the
    scalar measure iterates them.  The max over a right value's tokens
    is one ``np.maximum.reduceat`` per grid row (selection — exact);
    the mean over a left value's tokens is a strict left fold over
    token-count buckets, reproducing the scalar summation order
    bit-for-bit.
    """
    n_left, n_right = len(left_token_ids), len(right_token_ids)
    out = np.zeros((n_left, n_right))
    left_ids = [i for i, ids in enumerate(left_token_ids) if len(ids)]
    right_ids = [j for j, ids in enumerate(right_token_ids) if len(ids)]
    if not left_ids or not right_ids:
        return out
    right_lists = [right_token_ids[j] for j in right_ids]
    offsets = np.cumsum([0] + [len(ids) for ids in right_lists[:-1]])
    concatenated = np.concatenate(right_lists)
    # (unique left token) x (right value): best SW score of the token
    # against any token of the value.
    best = np.maximum.reduceat(grid[:, concatenated], offsets, axis=1)

    dense = np.zeros((len(left_ids), len(right_ids)))
    counts = np.array([len(left_token_ids[i]) for i in left_ids])
    for count in np.unique(counts):
        bucket = np.flatnonzero(counts == count)
        stacked = np.stack(
            [best[left_token_ids[left_ids[b]]] for b in bucket]
        )  # (bucket, count, n_right_values)
        total = stacked[:, 0].copy()
        for position in range(1, int(count)):
            total += stacked[:, position]
        dense[bucket] = total / int(count)
    out[np.ix_(left_ids, right_ids)] = dense
    return out


# ----------------------------------------------------------------------
# Pair-batched kernels (candidate cells only — the SparsePlan path)
# ----------------------------------------------------------------------
# Each ``*_pairs`` kernel is the per-cell restriction of its
# ``*_unique`` sibling: the DP state collapses from ``(block, n_right,
# width)`` slabs to ``(block_of_pairs, width)`` slabs, with the right
# string gathered per pair.  A DP cell's value depends only on the two
# strings of that cell, and both variants perform the same integer
# operations followed by the same float formulas — so for every
# requested cell ``(i, j)``, ``kernel_pairs(...)[k]`` is bitwise equal
# to ``kernel_unique(...)[i, j]``.


def _pair_mask_empty(
    out: np.ndarray,
    left_lengths: np.ndarray,
    right_lengths: np.ndarray,
    cell_left: np.ndarray,
    cell_right: np.ndarray,
) -> None:
    """Per-cell restriction of :func:`_mask_empty`."""
    out[left_lengths[cell_left] == 0] = 0.0
    out[right_lengths[cell_right] == 0] = 0.0


def _pair_rows(lengths: np.ndarray, cell_left: np.ndarray) -> np.ndarray:
    """Cell indices with a non-empty left string, longest-left first."""
    lens = lengths[cell_left]
    nonempty = np.flatnonzero(lens > 0)
    order = np.argsort(-lens[nonempty], kind="stable")
    return nonempty[order]


def edit_distance_pairs(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    cell_left: np.ndarray,
    cell_right: np.ndarray,
    transpositions: bool,
    threads: int | None = None,
) -> np.ndarray:
    """Candidate-cell (Damerau-)Levenshtein similarity values."""
    n_cells = cell_left.shape[0]
    out = np.zeros(n_cells)
    if n_cells == 0 or right_codes.shape[0] == 0:
        return out
    max_len = right_codes.shape[1]
    base_row = np.arange(max_len + 1, dtype=np.int32)
    offsets = np.arange(max_len + 1, dtype=np.int32)
    rows = _pair_rows(left_lengths, cell_left)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[cell_left[ids]]
        codes_a = left_codes[cell_left[ids]]
        codes_b = right_codes[cell_right[ids]]
        blens = right_lengths[cell_right[ids]]
        shape = (len(ids), max_len + 1)
        previous = np.broadcast_to(base_row, shape).copy()
        current = np.empty(shape, dtype=np.int32)
        scratch = np.empty(shape, dtype=np.int32)
        older = np.empty(shape, dtype=np.int32) if transpositions else None
        cost = np.empty((len(ids), max_len), dtype=bool)
        if transpositions and max_len >= 2:
            swap_ok = np.empty((len(ids), max_len - 1), dtype=bool)
            swap_prev = np.empty_like(swap_ok)
        else:
            swap_ok = swap_prev = None
        prev_prev: np.ndarray | None = None
        prev_ca: np.ndarray | None = None
        for step in range(1, int(lens[0]) + 1):
            n_active = int(np.searchsorted(-lens, -step, side="right"))
            prev = previous[:n_active]
            cur = current[:n_active]
            tmp = scratch[:n_active]
            ca = codes_a[:n_active, step - 1]
            np.not_equal(
                codes_b[:n_active], ca[:, None], out=cost[:n_active]
            )
            np.add(prev[..., :-1], cost[:n_active], out=cur[..., 1:])
            np.add(prev[..., 1:], 1, out=tmp[..., 1:])
            np.minimum(cur[..., 1:], tmp[..., 1:], out=cur[..., 1:])
            cur[..., 0] = step
            if transpositions and prev_prev is not None and max_len >= 2:
                ok = swap_ok[:n_active]
                np.equal(codes_b[:n_active, :-1], ca[:, None], out=ok)
                np.equal(
                    codes_b[:n_active, 1:],
                    prev_ca[:n_active, None],
                    out=swap_prev[:n_active],
                )
                ok &= swap_prev[:n_active]
                candidate = tmp[..., 2:]
                np.add(prev_prev[:n_active, :-2], 1, out=candidate)
                np.minimum(cur[..., 2:], candidate, out=candidate)
                np.copyto(cur[..., 2:], candidate, where=ok)
            _scan_min_inplace(cur, offsets)
            if transpositions:
                previous, current, older = current, older, previous
                prev_prev = older
            else:
                previous, current = current, previous
            prev_ca = ca
            first, last = _finished_segment(lens, step)
            if first < last:
                distances = np.take_along_axis(
                    previous[first:last], blens[first:last, None], axis=1
                )[:, 0]
                longest = np.maximum(step, blens[first:last])
                with np.errstate(invalid="ignore", divide="ignore"):
                    out[ids[first:last]] = np.where(
                        longest > 0, 1.0 - distances / longest, 0.0
                    )

    run_blocks(row_blocks(len(rows), max_len + 1, threads), block, threads)
    _pair_mask_empty(out, left_lengths, right_lengths, cell_left, cell_right)
    return np.clip(out, 0.0, 1.0)


def needleman_wunsch_pairs(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    cell_left: np.ndarray,
    cell_right: np.ndarray,
    threads: int | None = None,
) -> np.ndarray:
    """Candidate-cell Needleman-Wunsch similarity values."""
    n_cells = cell_left.shape[0]
    out = np.zeros(n_cells)
    if n_cells == 0 or right_codes.shape[0] == 0:
        return out
    max_len = right_codes.shape[1]
    gap = int(_NW_GAP)
    base_row = gap * np.arange(max_len + 1, dtype=np.int32)
    offsets = gap * np.arange(max_len + 1, dtype=np.int32)
    rows = _pair_rows(left_lengths, cell_left)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[cell_left[ids]]
        codes_a = left_codes[cell_left[ids]]
        codes_b = right_codes[cell_right[ids]]
        blens = right_lengths[cell_right[ids]]
        shape = (len(ids), max_len + 1)
        previous = np.broadcast_to(base_row, shape).copy()
        current = np.empty(shape, dtype=np.int32)
        scratch = np.empty(shape, dtype=np.int32)
        cost = np.empty((len(ids), max_len), dtype=bool)
        for step in range(1, int(lens[0]) + 1):
            n_active = int(np.searchsorted(-lens, -step, side="right"))
            prev = previous[:n_active]
            cur = current[:n_active]
            tmp = scratch[:n_active]
            ca = codes_a[:n_active, step - 1]
            np.not_equal(
                codes_b[:n_active], ca[:, None], out=cost[:n_active]
            )
            np.add(prev[..., :-1], cost[:n_active], out=cur[..., 1:])
            np.add(prev[..., 1:], gap, out=tmp[..., 1:])
            np.minimum(cur[..., 1:], tmp[..., 1:], out=cur[..., 1:])
            cur[..., 0] = step * gap
            _scan_min_inplace(cur, offsets)
            previous, current = current, previous
            first, last = _finished_segment(lens, step)
            if first < last:
                costs = np.take_along_axis(
                    previous[first:last], blens[first:last, None], axis=1
                )[:, 0]
                longest = np.maximum(step, blens[first:last])
                with np.errstate(invalid="ignore", divide="ignore"):
                    out[ids[first:last]] = np.where(
                        longest > 0,
                        1.0 - costs / (_NW_GAP * longest),
                        0.0,
                    )

    run_blocks(row_blocks(len(rows), max_len + 1, threads), block, threads)
    _pair_mask_empty(out, left_lengths, right_lengths, cell_left, cell_right)
    return np.clip(out, 0.0, 1.0)


def lcs_subsequence_pairs(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    cell_left: np.ndarray,
    cell_right: np.ndarray,
    threads: int | None = None,
) -> np.ndarray:
    """Candidate-cell longest-common-subsequence similarity values."""
    n_cells = cell_left.shape[0]
    out = np.zeros(n_cells)
    if n_cells == 0 or right_codes.shape[0] == 0:
        return out
    max_len = right_codes.shape[1]
    rows = _pair_rows(left_lengths, cell_left)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[cell_left[ids]]
        codes_a = left_codes[cell_left[ids]]
        codes_b = right_codes[cell_right[ids]]
        blens = right_lengths[cell_right[ids]]
        shape = (len(ids), max_len + 1)
        previous = np.zeros(shape, dtype=np.int32)
        current = np.empty(shape, dtype=np.int32)
        eq = np.empty((len(ids), max_len), dtype=bool)
        for step in range(1, int(lens[0]) + 1):
            n_active = int(np.searchsorted(-lens, -step, side="right"))
            prev = previous[:n_active]
            cur = current[:n_active]
            ca = codes_a[:n_active, step - 1]
            np.equal(codes_b[:n_active], ca[:, None], out=eq[:n_active])
            np.add(prev[..., :-1], eq[:n_active], out=cur[..., 1:])
            np.maximum(prev[..., 1:], cur[..., 1:], out=cur[..., 1:])
            cur[..., 0] = 0
            np.maximum.accumulate(cur, axis=-1, out=cur)
            previous, current = current, previous
            first, last = _finished_segment(lens, step)
            if first < last:
                lcs = np.take_along_axis(
                    previous[first:last], blens[first:last, None], axis=1
                )[:, 0]
                longest = np.maximum(step, blens[first:last])
                with np.errstate(invalid="ignore", divide="ignore"):
                    out[ids[first:last]] = np.where(
                        longest > 0, lcs / longest, 0.0
                    )

    run_blocks(row_blocks(len(rows), max_len + 1, threads), block, threads)
    _pair_mask_empty(out, left_lengths, right_lengths, cell_left, cell_right)
    return np.clip(out, 0.0, 1.0)


def lcs_substring_pairs(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    cell_left: np.ndarray,
    cell_right: np.ndarray,
    threads: int | None = None,
) -> np.ndarray:
    """Candidate-cell longest-common-substring similarity values."""
    n_cells = cell_left.shape[0]
    out = np.zeros(n_cells)
    if n_cells == 0 or right_codes.shape[0] == 0:
        return out
    max_len = right_codes.shape[1]
    rows = _pair_rows(left_lengths, cell_left)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[cell_left[ids]]
        codes_a = left_codes[cell_left[ids]]
        codes_b = right_codes[cell_right[ids]]
        blens = right_lengths[cell_right[ids]]
        shape = (len(ids), max_len + 1)
        best = np.zeros(len(ids), dtype=np.int32)
        previous = np.zeros(shape, dtype=np.int32)
        current = np.empty(shape, dtype=np.int32)
        eq = np.empty((len(ids), max_len), dtype=bool)
        for step in range(1, int(lens[0]) + 1):
            n_active = int(np.searchsorted(-lens, -step, side="right"))
            prev = previous[:n_active]
            cur = current[:n_active]
            ca = codes_a[:n_active, step - 1]
            np.equal(codes_b[:n_active], ca[:, None], out=eq[:n_active])
            np.add(prev[..., :-1], 1, out=cur[..., 1:])
            np.multiply(cur[..., 1:], eq[:n_active], out=cur[..., 1:])
            cur[..., 0] = 0
            np.maximum(
                best[:n_active], cur.max(axis=-1), out=best[:n_active]
            )
            previous, current = current, previous
            first, last = _finished_segment(lens, step)
            if first < last:
                longest = np.maximum(step, blens[first:last])
                with np.errstate(invalid="ignore", divide="ignore"):
                    out[ids[first:last]] = np.where(
                        longest > 0, best[first:last] / longest, 0.0
                    )

    run_blocks(row_blocks(len(rows), max_len + 1, threads), block, threads)
    _pair_mask_empty(out, left_lengths, right_lengths, cell_left, cell_right)
    return np.clip(out, 0.0, 1.0)


def jaro_pairs(
    left_codes: np.ndarray,
    left_lengths: np.ndarray,
    right_codes: np.ndarray,
    right_lengths: np.ndarray,
    cell_left: np.ndarray,
    cell_right: np.ndarray,
    threads: int | None = None,
) -> np.ndarray:
    """Candidate-cell Jaro similarity values."""
    n_cells = cell_left.shape[0]
    out = np.zeros(n_cells)
    if n_cells == 0 or right_codes.shape[0] == 0:
        return out
    max_right = right_codes.shape[1]
    cols = np.arange(max_right)
    rows = _pair_rows(left_lengths, cell_left)

    def block(start: int, stop: int) -> None:
        ids = rows[start:stop]
        lens = left_lengths[cell_left[ids]]
        codes_a = left_codes[cell_left[ids]]
        codes_b = right_codes[cell_right[ids]]
        blens = right_lengths[cell_right[ids]]
        n_block = len(ids)
        la = lens
        lb = blens
        window = np.maximum(np.maximum(la, lb) // 2 - 1, 0)
        low = 0 - window
        high = window.copy()
        unflagged = np.ones((n_block, max_right), dtype=bool)
        matched = np.zeros((n_block, int(lens[0])), dtype=bool)
        cand = np.empty((n_block, max_right), dtype=bool)
        winbuf = np.empty_like(cand)
        cols2 = cols[None, :]
        for i in range(int(lens[0])):
            n_active = int(np.searchsorted(-lens, -(i + 1), side="right"))
            ca = codes_a[:n_active, i]
            step_cand = cand[:n_active]
            step_win = winbuf[:n_active]
            np.equal(codes_b[:n_active], ca[:, None], out=step_cand)
            step_cand &= unflagged[:n_active]
            np.greater_equal(cols2, low[:n_active, None], out=step_win)
            step_cand &= step_win
            np.less_equal(cols2, high[:n_active, None], out=step_win)
            step_cand &= step_win
            has = step_cand.any(axis=-1)
            if has.any():
                first_j = np.argmax(step_cand, axis=-1)
                ai = np.flatnonzero(has)
                unflagged[ai, first_j[ai]] = False
                matched[ai, i] = True
            low += 1
            high += 1
        b_flag = ~unflagged
        common = b_flag.sum(axis=-1)
        transpositions = _jaro_pair_transpositions(
            codes_a, codes_b, matched, b_flag, common
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            sims = np.where(
                common > 0,
                (
                    common / la
                    + common / lb
                    + (common - transpositions) / np.maximum(common, 1)
                )
                / 3.0,
                0.0,
            )
        out[ids] = sims

    run_blocks(row_blocks(len(rows), max(max_right, 1), threads), block, threads)
    _pair_mask_empty(out, left_lengths, right_lengths, cell_left, cell_right)
    return out


def _jaro_pair_transpositions(
    codes_a: np.ndarray,
    codes_b: np.ndarray,
    matched: np.ndarray,
    b_flag: np.ndarray,
    common: np.ndarray,
) -> np.ndarray:
    """Per-pair restriction of :func:`_jaro_transpositions`."""
    n_block = common.shape[0]
    max_common = int(common.max()) if common.size else 0
    if max_common == 0:
        return np.zeros(n_block, dtype=np.int64)
    rank_a = np.cumsum(matched, axis=-1) - 1
    rank_b = np.cumsum(b_flag, axis=-1) - 1
    seq_a = np.full((n_block, max_common), -1, dtype=np.int32)
    seq_b = np.full((n_block, max_common), -2, dtype=np.int32)
    ai, ci = np.nonzero(matched)
    seq_a[ai, rank_a[ai, ci]] = codes_a[ai, ci]
    ai, cj = np.nonzero(b_flag)
    seq_b[ai, rank_b[ai, cj]] = codes_b[ai, cj]
    return ((seq_a != seq_b) & (seq_a != -1)).sum(axis=-1) // 2


def monge_elkan_pairs(
    left_token_ids: list[np.ndarray],
    right_token_ids: list[np.ndarray],
    grid: np.ndarray,
    cell_left: np.ndarray,
    cell_right: np.ndarray,
) -> np.ndarray:
    """Candidate-cell Monge-Elkan over the shared unique-token grid.

    The per-token max is the same ``np.maximum.reduceat`` selection as
    :func:`monge_elkan_unique`, restricted to the right values that
    actually appear in a candidate cell, and the mean over a left
    value's tokens is the same strict left fold in the same position
    order — so each cell value is bitwise equal to the dense one.
    """
    n_cells = cell_left.shape[0]
    out = np.zeros(n_cells)
    if n_cells == 0:
        return out
    needed_right = np.unique(cell_right)
    nonempty_right = np.asarray(
        [j for j in needed_right if len(right_token_ids[j])], dtype=np.intp
    )
    if nonempty_right.shape[0] == 0:
        return out
    column_of = np.full(len(right_token_ids), -1, dtype=np.int64)
    column_of[nonempty_right] = np.arange(nonempty_right.shape[0])
    right_lists = [right_token_ids[j] for j in nonempty_right]
    offsets = np.cumsum([0] + [len(ids) for ids in right_lists[:-1]])
    concatenated = np.concatenate(right_lists)
    best = np.maximum.reduceat(grid[:, concatenated], offsets, axis=1)

    counts = np.asarray(
        [len(left_token_ids[i]) for i in cell_left], dtype=np.int64
    )
    columns = column_of[cell_right]
    valid = (counts > 0) & (columns >= 0)
    for count in np.unique(counts[valid]):
        bucket = np.flatnonzero(valid & (counts == count))
        ids_matrix = np.stack(
            [left_token_ids[cell_left[k]] for k in bucket]
        )  # (bucket, count)
        values = best[ids_matrix, columns[bucket, None]]
        total = values[:, 0].copy()
        for position in range(1, int(count)):
            total += values[:, position]
        out[bucket] = total / int(count)
    return out
