"""From a similarity matrix to a similarity graph.

Follows the paper's protocol: every pair with similarity strictly
above zero becomes an edge (no blocking), and edge weights are min-max
normalized into ``[0, 1]`` regardless of the similarity function that
produced them (Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import SimilarityGraph
from repro.graph.normalize import min_max_normalize

__all__ = ["matrix_to_graph"]


def matrix_to_graph(
    matrix: np.ndarray,
    name: str = "",
    normalize: bool = True,
    metadata: dict | None = None,
) -> SimilarityGraph:
    """Build a :class:`SimilarityGraph` from an all-pairs matrix.

    Parameters
    ----------
    matrix:
        Dense ``n_left x n_right`` similarity matrix.  Values at or
        below zero are dropped (pairs "with a similarity higher than
        0" form the graph).
    normalize:
        Min-max normalize the retained edge weights (the default,
        matching the paper).
    metadata:
        Optional metadata dict attached to the graph (dataset code,
        similarity family, function name ...).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    left, right = np.nonzero(matrix > 0.0)
    weights = matrix[left, right]
    graph = SimilarityGraph(
        matrix.shape[0],
        matrix.shape[1],
        left,
        right,
        np.clip(weights, 0.0, 1.0),
        name=name,
        validate=False,
    )
    if metadata:
        graph.metadata = dict(metadata)
    if normalize:
        graph = min_max_normalize(graph)
    return graph
