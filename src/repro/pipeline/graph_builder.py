"""From a similarity matrix to a similarity graph.

Follows the paper's protocol: every pair with similarity strictly
above zero becomes an edge (no blocking), and edge weights are min-max
normalized into ``[0, 1]`` regardless of the similarity function that
produced them (Section 5).  :func:`pairs_to_graph` is the sparse
analogue used by the blocking layer: same edge rule and normalization,
applied to candidate-pair scores instead of a dense matrix.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import SimilarityGraph
from repro.graph.normalize import min_max_normalize

__all__ = ["matrix_to_graph", "pairs_to_graph"]


def matrix_to_graph(
    matrix: np.ndarray,
    name: str = "",
    normalize: bool = True,
    metadata: dict | None = None,
) -> SimilarityGraph:
    """Build a :class:`SimilarityGraph` from an all-pairs matrix.

    Parameters
    ----------
    matrix:
        Dense ``n_left x n_right`` similarity matrix.  Values at or
        below zero are dropped (pairs "with a similarity higher than
        0" form the graph).
    normalize:
        Min-max normalize the retained edge weights (the default,
        matching the paper).
    metadata:
        Optional metadata dict attached to the graph (dataset code,
        similarity family, function name ...).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    left, right = np.nonzero(matrix > 0.0)
    weights = matrix[left, right]
    graph = SimilarityGraph(
        matrix.shape[0],
        matrix.shape[1],
        left,
        right,
        np.clip(weights, 0.0, 1.0),
        name=name,
        validate=False,
    )
    if metadata:
        graph.metadata = dict(metadata)
    if normalize:
        graph = min_max_normalize(graph)
    return graph


def pairs_to_graph(
    n_left: int,
    n_right: int,
    left: np.ndarray,
    right: np.ndarray,
    values: np.ndarray,
    name: str = "",
    normalize: bool = True,
    metadata: dict | None = None,
) -> SimilarityGraph:
    """Build a :class:`SimilarityGraph` from candidate-pair scores.

    Mirrors :func:`matrix_to_graph` on a sparse pair list: scores at
    or below zero are dropped, retained weights are clipped and
    (optionally) min-max normalized.  Raw scores equal the dense
    matrix on every candidate cell, but min-max normalization runs
    over the *retained* edges only — pairs pruned by blocking cannot
    contribute a minimum, so normalized weights may legitimately
    differ from the unblocked graph.
    """
    values = np.asarray(values, dtype=np.float64)
    keep = values > 0.0
    graph = SimilarityGraph(
        int(n_left),
        int(n_right),
        np.asarray(left)[keep],
        np.asarray(right)[keep],
        np.clip(values[keep], 0.0, 1.0),
        name=name,
        validate=False,
    )
    if metadata:
        graph.metadata = dict(metadata)
    if normalize:
        graph = min_max_normalize(graph)
    return graph
