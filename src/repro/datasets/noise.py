"""Noise model applied when deriving source records from truth records.

The operators mirror the noise the paper attributes to the real
datasets: character typos, dropped/shuffled tokens, abbreviations,
missing values (D8/D10 "highest portion of missing values") and
misplaced values — a value stored under the wrong attribute, e.g. an
author name inside a publication title, which the paper identifies as
the failure mode of schema-based weights on D4/D9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NoiseConfig", "NoiseModel"]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class NoiseConfig:
    """Per-source noise intensities (all probabilities in [0, 1]).

    Attributes
    ----------
    typo_rate:
        Per-character probability of an edit (substitute, delete,
        insert or swap with the next character).
    token_drop_rate:
        Per-token probability of being dropped.
    token_shuffle_prob:
        Probability that a value's token order is permuted.
    abbreviation_prob:
        Per-token probability of being abbreviated to its initial.
    missing_value_rate:
        Per-attribute probability of the value being absent.
    misplaced_value_rate:
        Per-record probability that one value is appended to another
        attribute's value (the D4/D9 noise).
    protected_attributes:
        Attributes never made missing (the high-coverage attributes of
        the paper's schema-based settings keep their coverage).
    """

    typo_rate: float = 0.02
    token_drop_rate: float = 0.05
    token_shuffle_prob: float = 0.05
    abbreviation_prob: float = 0.02
    missing_value_rate: float = 0.05
    misplaced_value_rate: float = 0.0
    protected_attributes: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in (
            "typo_rate",
            "token_drop_rate",
            "token_shuffle_prob",
            "abbreviation_prob",
            "missing_value_rate",
            "misplaced_value_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class NoiseModel:
    """Applies a :class:`NoiseConfig` with a dedicated random stream."""

    def __init__(self, config: NoiseConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    # ------------------------------------------------------------------
    # String-level operators
    # ------------------------------------------------------------------
    def corrupt_characters(self, text: str) -> str:
        """Introduce random character edits at ``typo_rate``."""
        if not text or self.config.typo_rate <= 0.0:
            return text
        chars = list(text)
        result: list[str] = []
        i = 0
        while i < len(chars):
            if self.rng.random() < self.config.typo_rate:
                operation = int(self.rng.integers(4))
                if operation == 0:  # substitute
                    result.append(self._random_letter())
                elif operation == 1:  # delete
                    pass
                elif operation == 2:  # insert
                    result.append(self._random_letter())
                    result.append(chars[i])
                else:  # swap with next
                    if i + 1 < len(chars):
                        result.append(chars[i + 1])
                        result.append(chars[i])
                        i += 2
                        continue
                    result.append(chars[i])
            else:
                result.append(chars[i])
            i += 1
        return "".join(result)

    def _random_letter(self) -> str:
        return _ALPHABET[int(self.rng.integers(len(_ALPHABET)))]

    def drop_tokens(self, text: str) -> str:
        """Drop tokens independently; always keeps at least one."""
        words = text.split()
        if len(words) <= 1 or self.config.token_drop_rate <= 0.0:
            return text
        kept = [
            w for w in words if self.rng.random() >= self.config.token_drop_rate
        ]
        if not kept:
            kept = [words[int(self.rng.integers(len(words)))]]
        return " ".join(kept)

    def shuffle_tokens(self, text: str) -> str:
        """Permute token order with ``token_shuffle_prob``."""
        words = text.split()
        if len(words) <= 1:
            return text
        if self.rng.random() < self.config.token_shuffle_prob:
            order = self.rng.permutation(len(words))
            words = [words[int(i)] for i in order]
        return " ".join(words)

    def abbreviate_tokens(self, text: str) -> str:
        """Abbreviate tokens to their initial with a trailing dot."""
        if self.config.abbreviation_prob <= 0.0:
            return text
        words = text.split()
        out = []
        for word in words:
            if (
                len(word) > 2
                and word.isalpha()
                and self.rng.random() < self.config.abbreviation_prob
            ):
                out.append(word[0] + ".")
            else:
                out.append(word)
        return " ".join(out)

    def corrupt_value(self, text: str) -> str:
        """Apply the full string-operator chain to one value."""
        text = self.drop_tokens(text)
        text = self.shuffle_tokens(text)
        text = self.abbreviate_tokens(text)
        text = self.corrupt_characters(text)
        return text

    # ------------------------------------------------------------------
    # Record-level operators
    # ------------------------------------------------------------------
    def corrupt_record(self, record: dict[str, str]) -> dict[str, str]:
        """Derive a noisy source record from a truth record."""
        noisy: dict[str, str] = {}
        for attribute, value in record.items():
            if (
                attribute not in self.config.protected_attributes
                and self.rng.random() < self.config.missing_value_rate
            ):
                continue  # value missing in this source
            noisy[attribute] = self.corrupt_value(value)

        if (
            len(noisy) >= 2
            and self.rng.random() < self.config.misplaced_value_rate
        ):
            noisy = self._misplace_one_value(noisy)
        return noisy

    def _misplace_one_value(self, record: dict[str, str]) -> dict[str, str]:
        """Append one attribute's value onto another attribute.

        Models the real-world extraction errors of the bibliographic
        datasets (author names leaking into titles).
        """
        attributes = list(record)
        source = attributes[int(self.rng.integers(len(attributes)))]
        target_candidates = [a for a in attributes if a != source]
        target = target_candidates[
            int(self.rng.integers(len(target_candidates)))
        ]
        moved = record[source]
        result = dict(record)
        result[target] = f"{result[target]} {moved}".strip()
        del result[source]
        return result
