"""Synthetic Clean-Clean ER datasets (substitute for the 10 public sets).

The paper evaluates on ten real dataset pairs (Table 2).  Offline, this
package generates deterministic synthetic counterparts that preserve
the properties the matching algorithms are sensitive to:

* the relative collection sizes and the *duplicate ratio category* —
  balanced (D2, D4, D10), one-sided (D3, D9) or scarce (D1, D5-D8);
* per-domain vocabulary and attribute schemas (restaurants, products,
  bibliographic records, movies);
* per-source noise: typos, token drops/shuffles, abbreviations,
  missing values and — for the bibliographic sets — misplaced values,
  which the paper singles out as the noise that defeats schema-based
  weights on D4/D9.

Everything is seeded; the same spec + seed always yields the same
dataset.
"""

from repro.datasets.catalog import (
    CATEGORY_BY_DATASET,
    DATASET_CODES,
    PAPER_STATS,
    PaperDatasetStats,
    dataset_spec,
    default_scale,
)
from repro.datasets.generator import CleanCleanDataset, DatasetSpec, generate_dataset
from repro.datasets.noise import NoiseConfig, NoiseModel
from repro.datasets.profile import EntityCollection, EntityProfile

__all__ = [
    "EntityProfile",
    "EntityCollection",
    "NoiseConfig",
    "NoiseModel",
    "DatasetSpec",
    "CleanCleanDataset",
    "generate_dataset",
    "DATASET_CODES",
    "CATEGORY_BY_DATASET",
    "PAPER_STATS",
    "PaperDatasetStats",
    "dataset_spec",
    "default_scale",
]
