"""The catalog of the ten dataset profiles (Table 2 counterparts).

Each profile records the *paper's* statistics (for documentation and
the Table 2 benchmark) and a factory producing a scaled-down
:class:`~repro.datasets.generator.DatasetSpec` whose relative shape —
size ratio, duplicate-ratio category, domain, noise character —
matches the original.

Scaling: dataset sizes are multiplied by ``scale`` (default from the
``REPRO_SCALE`` environment variable, 0.08).  Because the experimental
protocol computes *all* pairwise similarities (no blocking), the
Cartesian product is additionally capped at ``REPRO_MAX_PAIRS``
(default 80,000) pairs; oversized datasets are shrunk proportionally.
Both knobs only change the amount of data, never its shape.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.datasets.generator import DatasetSpec
from repro.datasets.noise import NoiseConfig

__all__ = [
    "PaperDatasetStats",
    "PAPER_STATS",
    "DATASET_CODES",
    "CATEGORY_BY_DATASET",
    "DOMAIN_BY_DATASET",
    "dataset_spec",
    "default_scale",
    "default_max_pairs",
]


@dataclass(frozen=True)
class PaperDatasetStats:
    """The real dataset's characteristics as reported in Table 2."""

    code: str
    source_left: str
    source_right: str
    n_left: int
    n_right: int
    n_duplicates: int
    domain: str
    category: str  # BLC / OSD / SCR (Section 6, QE(4))


PAPER_STATS: dict[str, PaperDatasetStats] = {
    "d1": PaperDatasetStats("d1", "Rest.1", "Rest.2", 339, 2256, 89,
                            "restaurant", "SCR"),
    "d2": PaperDatasetStats("d2", "Abt", "Buy", 1076, 1076, 1076,
                            "product", "BLC"),
    "d3": PaperDatasetStats("d3", "Amazon", "Google Pr.", 1354, 3039, 1104,
                            "product", "OSD"),
    "d4": PaperDatasetStats("d4", "DBLP", "ACM", 2616, 2294, 2224,
                            "bibliographic", "BLC"),
    "d5": PaperDatasetStats("d5", "IMDb", "TMDb", 5118, 6056, 1968,
                            "movie", "SCR"),
    "d6": PaperDatasetStats("d6", "IMDb", "TVDB", 5118, 7810, 1072,
                            "movie", "SCR"),
    "d7": PaperDatasetStats("d7", "TMDb", "TVDB", 6056, 7810, 1095,
                            "movie", "SCR"),
    "d8": PaperDatasetStats("d8", "Walmart", "Amazon", 2554, 22074, 853,
                            "product", "SCR"),
    "d9": PaperDatasetStats("d9", "DBLP", "Scholar", 2516, 61353, 2308,
                            "bibliographic", "OSD"),
    "d10": PaperDatasetStats("d10", "IMDb", "DBpedia", 27615, 23182, 22863,
                             "movie", "BLC"),
}

DATASET_CODES: tuple[str, ...] = tuple(PAPER_STATS)

CATEGORY_BY_DATASET: dict[str, str] = {
    code: stats.category for code, stats in PAPER_STATS.items()
}

DOMAIN_BY_DATASET: dict[str, str] = {
    code: stats.domain for code, stats in PAPER_STATS.items()
}

#: The high-coverage, high-distinctiveness attributes per dataset used
#: by the schema-based settings (Section 5; adapted to the synthetic
#: attribute schemas of each domain).
SCHEMA_ATTRIBUTES: dict[str, tuple[str, ...]] = {
    "d1": ("name", "phone"),
    "d2": ("name",),
    "d3": ("title",),
    "d4": ("title", "authors"),
    "d5": ("title", "name"),
    "d6": ("title", "name"),
    "d7": ("name", "title"),
    "d8": ("title", "name"),
    "d9": ("title", "abstract"),
    "d10": ("title",),
}

# Per-dataset noise character, mirroring the paper's discussion in the
# per-dataset trade-off analysis (Section 3.3 of the appendix):
# d4/d9 suffer misplaced values, d5-d7 missing values, d8 is "highly
# noisy", d10 has "the highest portion of missing values".
_LIGHT = NoiseConfig(typo_rate=0.01, token_drop_rate=0.03,
                     token_shuffle_prob=0.02, abbreviation_prob=0.01,
                     missing_value_rate=0.03)
_MODERATE = NoiseConfig(typo_rate=0.02, token_drop_rate=0.10,
                        token_shuffle_prob=0.05, abbreviation_prob=0.03,
                        missing_value_rate=0.08)
_HEAVY = NoiseConfig(typo_rate=0.04, token_drop_rate=0.18,
                     token_shuffle_prob=0.10, abbreviation_prob=0.05,
                     missing_value_rate=0.15)

_NOISE_BY_DATASET: dict[str, tuple[NoiseConfig, NoiseConfig]] = {
    "d1": (_LIGHT, _LIGHT),
    "d2": (_MODERATE, _MODERATE),
    "d3": (_MODERATE, _HEAVY),
    "d4": (
        _LIGHT,
        NoiseConfig(typo_rate=0.01, token_drop_rate=0.03,
                    token_shuffle_prob=0.02, abbreviation_prob=0.05,
                    missing_value_rate=0.03, misplaced_value_rate=0.20,
                    protected_attributes=("title",)),
    ),
    "d5": (
        NoiseConfig(typo_rate=0.02, token_drop_rate=0.08,
                    token_shuffle_prob=0.05, abbreviation_prob=0.02,
                    missing_value_rate=0.25, protected_attributes=("title",)),
        NoiseConfig(typo_rate=0.02, token_drop_rate=0.08,
                    token_shuffle_prob=0.05, abbreviation_prob=0.02,
                    missing_value_rate=0.25, protected_attributes=("title",)),
    ),
    "d6": (
        NoiseConfig(typo_rate=0.02, token_drop_rate=0.08,
                    token_shuffle_prob=0.05, abbreviation_prob=0.02,
                    missing_value_rate=0.20, protected_attributes=("title",)),
        NoiseConfig(typo_rate=0.03, token_drop_rate=0.12,
                    token_shuffle_prob=0.06, abbreviation_prob=0.03,
                    missing_value_rate=0.30, protected_attributes=("title",)),
    ),
    "d7": (
        NoiseConfig(typo_rate=0.02, token_drop_rate=0.10,
                    token_shuffle_prob=0.05, abbreviation_prob=0.02,
                    missing_value_rate=0.25, protected_attributes=("title",)),
        NoiseConfig(typo_rate=0.03, token_drop_rate=0.12,
                    token_shuffle_prob=0.06, abbreviation_prob=0.03,
                    missing_value_rate=0.30, protected_attributes=("title",)),
    ),
    "d8": (_HEAVY, _HEAVY),
    "d9": (
        _LIGHT,
        NoiseConfig(typo_rate=0.03, token_drop_rate=0.12,
                    token_shuffle_prob=0.08, abbreviation_prob=0.06,
                    missing_value_rate=0.12, misplaced_value_rate=0.25,
                    protected_attributes=("title",)),
    ),
    "d10": (
        NoiseConfig(typo_rate=0.02, token_drop_rate=0.08,
                    token_shuffle_prob=0.05, abbreviation_prob=0.02,
                    missing_value_rate=0.35, protected_attributes=("title",)),
        NoiseConfig(typo_rate=0.02, token_drop_rate=0.10,
                    token_shuffle_prob=0.05, abbreviation_prob=0.03,
                    missing_value_rate=0.35, protected_attributes=("title",)),
    ),
}

# Schema heterogeneity: one side of some datasets lacks attributes the
# other provides (cf. the differing |A_1| / |A_2| of Table 2).
_ASYMMETRY: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    # (left_only_attributes, right_only_attributes) to *exclude* from
    # the opposite side.
    "d3": ((), ("category",)),
    "d5": ((), ("actors",)),
    "d6": (("actors",), ()),
    "d9": ((), ("abstract",)),
    "d10": (("genre",), ()),
}


def default_scale() -> float:
    """Dataset scale factor, from ``REPRO_SCALE`` (default 0.08)."""
    return float(os.environ.get("REPRO_SCALE", "0.08"))


def default_max_pairs() -> int:
    """Cartesian-product cap, from ``REPRO_MAX_PAIRS`` (default 80,000)."""
    return int(os.environ.get("REPRO_MAX_PAIRS", "80000"))


def dataset_spec(
    code: str,
    scale: float | None = None,
    max_pairs: int | None = None,
) -> DatasetSpec:
    """The scaled :class:`DatasetSpec` for dataset ``code``."""
    code = code.lower()
    if code not in PAPER_STATS:
        known = ", ".join(DATASET_CODES)
        raise KeyError(f"unknown dataset {code!r}; known: {known}")
    if scale is None:
        scale = default_scale()
    if max_pairs is None:
        max_pairs = default_max_pairs()
    if scale <= 0:
        raise ValueError("scale must be positive")
    if max_pairs <= 0:
        raise ValueError("max_pairs must be positive")

    stats = PAPER_STATS[code]
    effective = scale
    if (stats.n_left * scale) * (stats.n_right * scale) > max_pairs:
        effective = math.sqrt(max_pairs / (stats.n_left * stats.n_right))

    n_left = max(int(round(stats.n_left * effective)), 10)
    n_right = max(int(round(stats.n_right * effective)), 10)
    n_duplicates = int(round(stats.n_duplicates * effective))
    n_duplicates = min(max(n_duplicates, 5), n_left, n_right)

    noise_left, noise_right = _NOISE_BY_DATASET[code]
    left_only, right_only = _ASYMMETRY.get(code, ((), ()))
    return DatasetSpec(
        code=code,
        domain=stats.domain,
        n_left=n_left,
        n_right=n_right,
        n_duplicates=n_duplicates,
        noise_left=noise_left,
        noise_right=noise_right,
        schema_attributes=SCHEMA_ATTRIBUTES[code],
        left_only_attributes=left_only,
        right_only_attributes=right_only,
    )
