"""Clean-Clean dataset generation.

A *world* of distinct real entities is generated from the domain
vocabulary; each of the two sources observes an (overlapping) subset
of the world through its own noise channel.  The overlap defines the
ground truth.  Both collections are duplicate-free by construction —
the defining property of Clean-Clean ER.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.noise import NoiseConfig, NoiseModel
from repro.datasets.profile import EntityCollection, EntityProfile
from repro.datasets.vocabulary import generate_truth

__all__ = ["DatasetSpec", "CleanCleanDataset", "generate_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Blueprint of one synthetic Clean-Clean dataset.

    Attributes
    ----------
    code:
        Identifier (``"d1"`` .. ``"d10"``).
    domain:
        One of the :mod:`repro.datasets.vocabulary` domains.
    n_left, n_right:
        Collection sizes.
    n_duplicates:
        Number of world entities observed by both sources.
    noise_left, noise_right:
        Per-source noise configurations.
    schema_attributes:
        The high-coverage, high-distinctiveness attributes used by the
        schema-based similarity functions (Section 5 of the paper).
    left_only_attributes, right_only_attributes:
        Attributes dropped from the other source, modelling the
        heterogeneous schemas of Table 2.
    """

    code: str
    domain: str
    n_left: int
    n_right: int
    n_duplicates: int
    noise_left: NoiseConfig = field(default_factory=NoiseConfig)
    noise_right: NoiseConfig = field(default_factory=NoiseConfig)
    schema_attributes: tuple[str, ...] = ()
    left_only_attributes: tuple[str, ...] = ()
    right_only_attributes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n_left <= 0 or self.n_right <= 0:
            raise ValueError("collection sizes must be positive")
        if self.n_duplicates < 0:
            raise ValueError("n_duplicates must be non-negative")
        if self.n_duplicates > min(self.n_left, self.n_right):
            raise ValueError(
                "n_duplicates cannot exceed the smaller collection"
            )


@dataclass
class CleanCleanDataset:
    """A generated dataset: two collections plus the ground truth."""

    spec: DatasetSpec
    left: EntityCollection
    right: EntityCollection
    ground_truth: set[tuple[int, int]]

    @property
    def code(self) -> str:
        return self.spec.code

    @property
    def n_duplicates(self) -> int:
        return len(self.ground_truth)

    @property
    def cartesian_size(self) -> int:
        return len(self.left) * len(self.right)

    def duplicate_ratio_left(self) -> float:
        """Fraction of left entities that have a match."""
        return self.n_duplicates / len(self.left)

    def duplicate_ratio_right(self) -> float:
        """Fraction of right entities that have a match."""
        return self.n_duplicates / len(self.right)


def generate_dataset(spec: DatasetSpec, seed: int = 42) -> CleanCleanDataset:
    """Generate the dataset described by ``spec``, deterministically."""
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, _stable_hash(spec.code)])
    )
    n_world = spec.n_left + spec.n_right - spec.n_duplicates
    world = [generate_truth(spec.domain, rng) for _ in range(n_world)]

    # Left observes world[0 : n_left]; right observes the window that
    # overlaps the last n_duplicates entities of the left range.
    left_world = list(range(spec.n_left))
    right_world = list(
        range(spec.n_left - spec.n_duplicates, n_world)
    )
    # Shuffle the right side so matched pairs are not index-aligned.
    order = rng.permutation(len(right_world))
    right_world = [right_world[int(i)] for i in order]

    left_noise = NoiseModel(
        spec.noise_left, np.random.default_rng(rng.integers(2**63))
    )
    right_noise = NoiseModel(
        spec.noise_right, np.random.default_rng(rng.integers(2**63))
    )

    left_profiles = [
        _derive_profile(
            world[w], f"{spec.code}-L{i}", left_noise,
            spec.right_only_attributes,
        )
        for i, w in enumerate(left_world)
    ]
    right_profiles = [
        _derive_profile(
            world[w], f"{spec.code}-R{j}", right_noise,
            spec.left_only_attributes,
        )
        for j, w in enumerate(right_world)
    ]

    right_index_of_world = {w: j for j, w in enumerate(right_world)}
    ground_truth = {
        (i, right_index_of_world[w])
        for i, w in enumerate(left_world)
        if w in right_index_of_world
    }

    return CleanCleanDataset(
        spec=spec,
        left=EntityCollection(f"{spec.code}-left", left_profiles),
        right=EntityCollection(f"{spec.code}-right", right_profiles),
        ground_truth=ground_truth,
    )


def _derive_profile(
    truth: dict[str, str],
    identifier: str,
    noise: NoiseModel,
    excluded_attributes: tuple[str, ...],
) -> EntityProfile:
    record = {
        attribute: value
        for attribute, value in truth.items()
        if attribute not in excluded_attributes
    }
    return EntityProfile(identifier, noise.corrupt_record(record))


def _stable_hash(text: str) -> int:
    """A deterministic small hash (Python's ``hash`` is salted)."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) % (2**31)
    return value
