"""Deterministic domain vocabularies for the synthetic datasets.

Each domain generator produces the *truth record* of a world entity —
the clean attribute values both sources derive their (noisy) records
from.  Word banks are intentionally sized like the real domains: the
bibliographic vocabulary is small and repetitive (the paper notes
D4/D9 "convey a limited vocabulary"), product names mix brands with
arbitrary alphanumeric model codes (the fastText motivation), movie
and restaurant names draw on broader banks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DOMAINS", "generate_truth"]

_FIRST_NAMES = [
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "wei",
    "yuki", "carlos", "fatima", "ivan", "chen", "amara", "luca", "nadia",
    "omar",
]

_LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "zhang", "kumar", "okafor", "petrov",
    "tanaka", "rossi", "novak", "kim", "ali", "costa",
]

_CUISINES = [
    "italian", "french", "thai", "mexican", "japanese", "indian", "greek",
    "spanish", "korean", "vietnamese", "lebanese", "ethiopian", "peruvian",
    "turkish", "moroccan", "american", "cajun", "fusion",
]

_RESTAURANT_WORDS = [
    "golden", "dragon", "palace", "bistro", "garden", "corner", "house",
    "grill", "kitchen", "tavern", "cafe", "trattoria", "osteria", "brasserie",
    "cantina", "diner", "lounge", "terrace", "harbor", "vineyard", "olive",
    "maple", "cedar", "willow", "saffron", "ginger", "basil", "truffle",
    "ember", "stone", "river", "sunset", "royal", "blue", "little", "grand",
]

_STREETS = [
    "main st", "oak ave", "maple dr", "broadway", "elm st", "5th ave",
    "park rd", "lake view", "hill crest", "market sq", "union blvd",
    "river walk", "sunset strip", "harbor way", "canal st", "castle rd",
]

_CITIES = [
    "new york", "los angeles", "chicago", "houston", "phoenix", "boston",
    "seattle", "denver", "austin", "portland", "atlanta", "miami",
]

_BRANDS = [
    "sony", "samsung", "panasonic", "philips", "canon", "nikon", "bosch",
    "makita", "dewalt", "logitech", "kensington", "belkin", "netgear",
    "linksys", "garmin", "casio", "epson", "brother", "lexmark", "sandisk",
    "kingston", "corsair", "asus", "acer", "lenovo", "toshiba", "jvc",
    "pioneer", "kenwood", "yamaha",
]

_PRODUCT_NOUNS = [
    "speaker", "headphones", "camera", "lens", "printer", "scanner",
    "router", "keyboard", "mouse", "monitor", "projector", "charger",
    "adapter", "cable", "drive", "card", "case", "stand", "mount", "dock",
    "battery", "drill", "sander", "blender", "toaster", "kettle", "vacuum",
]

_PRODUCT_ADJECTIVES = [
    "wireless", "portable", "compact", "digital", "professional", "premium",
    "ultra", "mini", "smart", "rechargeable", "bluetooth", "noise",
    "cancelling", "waterproof", "ergonomic", "adjustable", "universal",
    "high", "speed", "dual", "band",
]

_CATEGORIES = [
    "electronics", "audio", "photography", "computing", "networking",
    "appliances", "tools", "accessories", "storage", "office",
]

# Deliberately small: bibliographic titles recombine few terms, like
# real CS publication corpora.
_BIB_TERMS = [
    "efficient", "scalable", "adaptive", "distributed", "parallel",
    "incremental", "approximate", "optimal", "robust", "learning",
    "query", "processing", "indexing", "clustering", "matching",
    "resolution", "integration", "databases", "streams", "graphs",
    "entity", "schema", "records", "blocking", "filtering", "joins",
    "similarity", "semantic", "knowledge", "evaluation",
]

_VENUES = [
    "vldb", "sigmod", "icde", "edbt", "cikm", "kdd", "www", "tkde",
    "vldbj", "icdm",
]

_ABSTRACT_FILLER = [
    "we", "propose", "a", "novel", "approach", "for", "the", "problem",
    "of", "our", "method", "outperforms", "state", "art", "experiments",
    "on", "real", "data", "show", "significant", "improvements", "in",
    "both", "accuracy", "and", "efficiency", "this", "paper", "presents",
    "extensive", "analysis",
]

_MOVIE_WORDS = [
    "shadow", "night", "return", "last", "first", "dark", "light", "king",
    "queen", "legend", "secret", "lost", "city", "dream", "storm", "fire",
    "ice", "blood", "moon", "star", "edge", "silent", "broken", "golden",
    "hidden", "final", "eternal", "crimson", "winter", "summer", "ghost",
    "iron", "stolen", "forgotten", "rising", "falling", "endless", "savage",
    "glass", "paper",
]

_GENRES = [
    "drama", "comedy", "thriller", "horror", "romance", "action",
    "documentary", "animation", "crime", "fantasy", "western", "mystery",
]


def _pick(rng: np.random.Generator, bank: list[str]) -> str:
    return bank[int(rng.integers(len(bank)))]


def _pick_many(
    rng: np.random.Generator, bank: list[str], low: int, high: int
) -> list[str]:
    count = int(rng.integers(low, high + 1))
    indices = rng.choice(len(bank), size=min(count, len(bank)), replace=False)
    return [bank[int(i)] for i in indices]


def _person(rng: np.random.Generator) -> str:
    return f"{_pick(rng, _FIRST_NAMES)} {_pick(rng, _LAST_NAMES)}"


def _phone(rng: np.random.Generator) -> str:
    area = rng.integers(200, 990)
    mid = rng.integers(100, 999)
    tail = rng.integers(1000, 9999)
    return f"{area}-{mid}-{tail}"


def _restaurant(rng: np.random.Generator) -> dict[str, str]:
    name_words = _pick_many(rng, _RESTAURANT_WORDS, 2, 3)
    return {
        "name": " ".join(name_words),
        "phone": _phone(rng),
        "address": f"{rng.integers(1, 999)} {_pick(rng, _STREETS)}",
        "cuisine": _pick(rng, _CUISINES),
        "city": _pick(rng, _CITIES),
    }


def _model_code(rng: np.random.Generator) -> str:
    letters = "".join(
        chr(ord("a") + int(c)) for c in rng.integers(0, 26, size=2)
    )
    return f"{letters}{rng.integers(10, 9999)}"


def _product(rng: np.random.Generator) -> dict[str, str]:
    brand = _pick(rng, _BRANDS)
    model = _model_code(rng)
    adjectives = _pick_many(rng, _PRODUCT_ADJECTIVES, 1, 3)
    noun = _pick(rng, _PRODUCT_NOUNS)
    title = f"{brand} {model} {' '.join(adjectives)} {noun}"
    return {
        "title": title,
        "name": f"{brand} {noun} {model}",
        "modelno": model,
        "brand": brand,
        "price": f"{rng.integers(5, 1500)}.{rng.integers(0, 99):02d}",
        "category": _pick(rng, _CATEGORIES),
    }


def _publication(rng: np.random.Generator) -> dict[str, str]:
    title_words = _pick_many(rng, _BIB_TERMS, 4, 8)
    n_authors = int(rng.integers(1, 4))
    authors = ", ".join(_person(rng) for _ in range(n_authors))
    abstract_words = [
        _pick(rng, _ABSTRACT_FILLER) for _ in range(int(rng.integers(15, 30)))
    ]
    return {
        "title": " ".join(title_words),
        "authors": authors,
        "venue": _pick(rng, _VENUES),
        "year": str(rng.integers(1995, 2021)),
        "abstract": " ".join(abstract_words),
    }


def _movie(rng: np.random.Generator) -> dict[str, str]:
    title_words = _pick_many(rng, _MOVIE_WORDS, 1, 4)
    title = " ".join(title_words)
    return {
        "title": title,
        "name": title,  # alternative-title attribute, as in TMDb/TVDB
        "year": str(rng.integers(1950, 2021)),
        "director": _person(rng),
        "genre": _pick(rng, _GENRES),
        "actors": ", ".join(_person(rng) for _ in range(int(rng.integers(1, 4)))),
    }


#: Domain name -> truth-record generator.
DOMAINS = {
    "restaurant": _restaurant,
    "product": _product,
    "bibliographic": _publication,
    "movie": _movie,
}


def generate_truth(domain: str, rng: np.random.Generator) -> dict[str, str]:
    """Generate the clean truth record of one world entity."""
    try:
        generator = DOMAINS[domain]
    except KeyError:
        known = ", ".join(sorted(DOMAINS))
        raise KeyError(f"unknown domain {domain!r}; known: {known}")
    return generator(rng)
