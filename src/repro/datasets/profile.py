"""Entity profiles and collections.

An *entity profile* is a set of attribute name/value pairs describing
one real-world object (Section 2 of the paper); an *entity collection*
is a duplicate-free list of profiles.  The representation models
consume either a single attribute (schema-based scope) or all values
concatenated (schema-agnostic scope).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EntityProfile", "EntityCollection"]


@dataclass
class EntityProfile:
    """One entity as attribute name/value pairs.

    ``attributes`` omits missing values entirely (a missing value is
    not an empty string in the source data model).
    """

    identifier: str
    attributes: dict[str, str] = field(default_factory=dict)

    def value(self, attribute: str) -> str:
        """The value of ``attribute``, or ``""`` when missing."""
        return self.attributes.get(attribute, "")

    def values(self) -> list[str]:
        """All attribute values, in attribute insertion order."""
        return [v for v in self.attributes.values() if v]

    def schema_agnostic_text(self) -> str:
        """All values joined — the schema-agnostic representation."""
        return " ".join(self.values())

    @property
    def n_name_value_pairs(self) -> int:
        """Number of non-empty name/value pairs (|NVP| in Table 2)."""
        return len(self.values())


@dataclass
class EntityCollection:
    """A duplicate-free collection of entity profiles."""

    name: str
    profiles: list[EntityProfile] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self):
        return iter(self.profiles)

    def __getitem__(self, index: int) -> EntityProfile:
        return self.profiles[index]

    def attribute_values(self, attribute: str) -> list[str]:
        """Per-profile values of ``attribute`` (``""`` when missing)."""
        return [profile.value(attribute) for profile in self.profiles]

    def texts(self) -> list[str]:
        """Per-profile schema-agnostic texts."""
        return [profile.schema_agnostic_text() for profile in self.profiles]

    def value_lists(self) -> list[list[str]]:
        """Per-profile lists of values (for the n-gram graph models)."""
        return [profile.values() for profile in self.profiles]

    def attribute_names(self) -> list[str]:
        """All attribute names appearing in the collection, sorted."""
        names: set[str] = set()
        for profile in self.profiles:
            names.update(profile.attributes)
        return sorted(names)

    def attribute_coverage(self, attribute: str) -> float:
        """Fraction of profiles with a non-empty value for ``attribute``."""
        if not self.profiles:
            return 0.0
        covered = sum(1 for p in self.profiles if p.value(attribute))
        return covered / len(self.profiles)

    @property
    def n_name_value_pairs(self) -> int:
        """Total non-empty name/value pairs (|NVP| in Table 2)."""
        return sum(p.n_name_value_pairs for p in self.profiles)

    @property
    def mean_pairs_per_profile(self) -> float:
        """Average name/value pairs per profile (|p̄| in Table 2)."""
        if not self.profiles:
            return 0.0
        return self.n_name_value_pairs / len(self.profiles)
