"""Registry of schema-based syntactic similarity measures.

Maps the paper's measure names to callables ``(str, str) -> float``
so the graph-generation pipeline can iterate over the whole taxonomy.
"""

from __future__ import annotations

from typing import Callable

from repro.textsim.character import (
    damerau_levenshtein_similarity,
    jaro_similarity,
    levenshtein_similarity,
    longest_common_subsequence_similarity,
    longest_common_substring_similarity,
    needleman_wunsch_similarity,
    qgrams_distance_similarity,
)
from repro.textsim.token_measures import (
    block_distance_similarity,
    cosine_token_similarity,
    dice_similarity,
    euclidean_token_similarity,
    generalized_jaccard_similarity,
    jaccard_similarity,
    monge_elkan_similarity,
    overlap_coefficient,
    simon_white_similarity,
)

__all__ = [
    "CHARACTER_MEASURES",
    "TOKEN_MEASURES",
    "SCHEMA_BASED_MEASURES",
    "get_measure",
]

StringMeasure = Callable[[str, str], float]

#: The seven character-level measures of Appendix B.1.1.
CHARACTER_MEASURES: dict[str, StringMeasure] = {
    "levenshtein": levenshtein_similarity,
    "damerau_levenshtein": damerau_levenshtein_similarity,
    "jaro": jaro_similarity,
    "needleman_wunsch": needleman_wunsch_similarity,
    "qgrams": qgrams_distance_similarity,
    "lcs_substring": longest_common_substring_similarity,
    "lcs_subsequence": longest_common_subsequence_similarity,
}

#: The nine token-level measures of Appendix B.1.2.
TOKEN_MEASURES: dict[str, StringMeasure] = {
    "cosine_tokens": cosine_token_similarity,
    "euclidean_tokens": euclidean_token_similarity,
    "block_distance": block_distance_similarity,
    "dice": dice_similarity,
    "simon_white": simon_white_similarity,
    "overlap": overlap_coefficient,
    "jaccard": jaccard_similarity,
    "generalized_jaccard": generalized_jaccard_similarity,
    "monge_elkan": monge_elkan_similarity,
}

#: All 16 schema-based syntactic measures of the paper.
SCHEMA_BASED_MEASURES: dict[str, StringMeasure] = {
    **CHARACTER_MEASURES,
    **TOKEN_MEASURES,
}


def get_measure(name: str) -> StringMeasure:
    """Look up a schema-based measure by name."""
    try:
        return SCHEMA_BASED_MEASURES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEMA_BASED_MEASURES))
        raise KeyError(f"unknown measure {name!r}; known measures: {known}")
