"""Token-level string similarity measures (Appendix B.1.2).

Strings are first tokenized into words; set-based measures use the
distinct tokens, multiset ("bag") measures use token frequencies — the
distinction follows the paper's definitions (e.g. Dice vs Simon-White,
Jaccard vs Generalized Jaccard).
"""

from __future__ import annotations

import math
from collections import Counter

from repro.textsim.smith_waterman import smith_waterman_similarity
from repro.textsim.tokenize import tokens

__all__ = [
    "cosine_token_similarity",
    "euclidean_token_similarity",
    "block_distance_similarity",
    "dice_similarity",
    "simon_white_similarity",
    "overlap_coefficient",
    "jaccard_similarity",
    "generalized_jaccard_similarity",
    "monge_elkan_similarity",
]


def _bags(a: str, b: str) -> tuple[Counter, Counter]:
    return Counter(tokens(a)), Counter(tokens(b))


def _empty_rule(bag_a: Counter, bag_b: Counter) -> float | None:
    """Shared handling of empty token bags: both empty -> identical."""
    if not bag_a and not bag_b:
        return 1.0
    if not bag_a or not bag_b:
        return 0.0
    return None


def cosine_token_similarity(a: str, b: str) -> float:
    """Cosine of the angle between the token frequency vectors."""
    bag_a, bag_b = _bags(a, b)
    base = _empty_rule(bag_a, bag_b)
    if base is not None:
        return base
    dot = sum(count * bag_b[token] for token, count in bag_a.items())
    norm_a = math.sqrt(sum(c * c for c in bag_a.values()))
    norm_b = math.sqrt(sum(c * c for c in bag_b.values()))
    return dot / (norm_a * norm_b)


def euclidean_token_similarity(a: str, b: str) -> float:
    """Euclidean distance of frequency vectors, normalized & inverted.

    The maximum distance of two frequency vectors is attained when the
    token sets are disjoint, giving ``sqrt(|a|^2 + |b|^2)``-style bound
    ``sqrt(||fa||^2 + ||fb||^2)``.
    """
    bag_a, bag_b = _bags(a, b)
    base = _empty_rule(bag_a, bag_b)
    if base is not None:
        return base
    squared = 0.0
    for token in bag_a.keys() | bag_b.keys():
        squared += (bag_a[token] - bag_b[token]) ** 2
    bound = math.sqrt(
        sum(c * c for c in bag_a.values())
        + sum(c * c for c in bag_b.values())
    )
    if bound == 0.0:
        return 1.0
    return 1.0 - math.sqrt(squared) / bound


def block_distance_similarity(a: str, b: str) -> float:
    """L1 (Manhattan) distance of frequency vectors, normalized & inverted."""
    bag_a, bag_b = _bags(a, b)
    base = _empty_rule(bag_a, bag_b)
    if base is not None:
        return base
    difference = 0
    for token in bag_a.keys() | bag_b.keys():
        difference += abs(bag_a[token] - bag_b[token])
    total = sum(bag_a.values()) + sum(bag_b.values())
    return 1.0 - difference / total


def dice_similarity(a: str, b: str) -> float:
    """``2 |A ∩ B| / (|A| + |B|)`` over token *sets*."""
    set_a = set(tokens(a))
    set_b = set(tokens(b))
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return 2.0 * len(set_a & set_b) / (len(set_a) + len(set_b))


def simon_white_similarity(a: str, b: str) -> float:
    """Quantitative Dice over token *multisets*."""
    bag_a, bag_b = _bags(a, b)
    base = _empty_rule(bag_a, bag_b)
    if base is not None:
        return base
    overlap = sum(min(count, bag_b[token]) for token, count in bag_a.items())
    total = sum(bag_a.values()) + sum(bag_b.values())
    return 2.0 * overlap / total


def overlap_coefficient(a: str, b: str) -> float:
    """``|A ∩ B| / min(|A|, |B|)`` over token sets."""
    set_a = set(tokens(a))
    set_b = set(tokens(b))
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def jaccard_similarity(a: str, b: str) -> float:
    """``|A ∩ B| / |A ∪ B|`` over token sets."""
    set_a = set(tokens(a))
    set_b = set(tokens(b))
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def generalized_jaccard_similarity(a: str, b: str) -> float:
    """``Σ min(fa, fb) / Σ max(fa, fb)`` over token multisets."""
    bag_a, bag_b = _bags(a, b)
    base = _empty_rule(bag_a, bag_b)
    if base is not None:
        return base
    minimum = 0
    maximum = 0
    for token in bag_a.keys() | bag_b.keys():
        minimum += min(bag_a[token], bag_b[token])
        maximum += max(bag_a[token], bag_b[token])
    return minimum / maximum


def monge_elkan_similarity(a: str, b: str) -> float:
    """Average best Smith-Waterman similarity of ``a``'s tokens in ``b``.

    Note: Monge-Elkan is asymmetric by definition; the paper applies it
    as-is, so no symmetrization is performed here.
    """
    tokens_a = tokens(a)
    tokens_b = tokens(b)
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(
            smith_waterman_similarity(token_a, token_b)
            for token_b in tokens_b
        )
    return total / len(tokens_a)
