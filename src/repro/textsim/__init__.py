"""Schema-based syntactic string similarity library (Simmetrics substitute).

Appendix B.1 of the paper lists 16 established measures applied to the
schema-based syntactic representations.  This package implements all of
them from scratch with the same definitions:

Character-level (:mod:`repro.textsim.character`):
    Levenshtein, Damerau-Levenshtein, Jaro, Needleman-Wunsch, q-grams
    distance, Longest Common Substring, Longest Common Subsequence.

Token-level (:mod:`repro.textsim.token_measures`):
    Cosine, Euclidean, Block (L1), Dice, Simon-White, Overlap
    coefficient, Jaccard, Generalized Jaccard, Monge-Elkan (with a
    Smith-Waterman secondary measure).

Every public function maps a pair of strings to a similarity in
``[0, 1]`` (distances are normalized and inverted), which is what the
similarity-graph builder consumes.
"""

from repro.textsim.character import (
    damerau_levenshtein_similarity,
    jaro_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    longest_common_subsequence_similarity,
    longest_common_substring_similarity,
    needleman_wunsch_similarity,
    qgrams_distance_similarity,
)
from repro.textsim.registry import (
    CHARACTER_MEASURES,
    SCHEMA_BASED_MEASURES,
    TOKEN_MEASURES,
    get_measure,
)
from repro.textsim.smith_waterman import smith_waterman_similarity
from repro.textsim.token_measures import (
    block_distance_similarity,
    cosine_token_similarity,
    dice_similarity,
    euclidean_token_similarity,
    generalized_jaccard_similarity,
    jaccard_similarity,
    monge_elkan_similarity,
    overlap_coefficient,
    simon_white_similarity,
)
from repro.textsim.tokenize import character_ngrams, token_ngrams, tokens

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "damerau_levenshtein_similarity",
    "jaro_similarity",
    "needleman_wunsch_similarity",
    "qgrams_distance_similarity",
    "longest_common_substring_similarity",
    "longest_common_subsequence_similarity",
    "cosine_token_similarity",
    "euclidean_token_similarity",
    "block_distance_similarity",
    "dice_similarity",
    "simon_white_similarity",
    "overlap_coefficient",
    "jaccard_similarity",
    "generalized_jaccard_similarity",
    "monge_elkan_similarity",
    "smith_waterman_similarity",
    "tokens",
    "character_ngrams",
    "token_ngrams",
    "CHARACTER_MEASURES",
    "TOKEN_MEASURES",
    "SCHEMA_BASED_MEASURES",
    "get_measure",
]
