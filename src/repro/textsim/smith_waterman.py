"""Smith-Waterman local alignment similarity.

Used as the secondary character-level measure inside Monge-Elkan
(Appendix B.1.2), following the optimized Smith-Waterman / Gotoh
approach of the Simmetrics implementation: match +1, mismatch -2,
gap -0.5, normalized by the length of the shorter string (the maximum
attainable local score).

This is the scalar reference for the all-pairs token grid of
:func:`repro.pipeline.kernels.smith_waterman_grid`, which runs the
same DP on doubled int32 scores (every value here is a multiple of
0.5, so halving back is exact) — the two must stay bit-identical, and
the differential tests in ``tests/pipeline/test_kernels.py`` enforce
it.  Keep the score constants in sync with ``_SW_*`` there.
"""

from __future__ import annotations

__all__ = ["smith_waterman_score", "smith_waterman_similarity"]

_MATCH = 1.0
_MISMATCH = -2.0
_GAP = -0.5


def smith_waterman_score(a: str, b: str) -> float:
    """Raw best local alignment score between ``a`` and ``b``."""
    if not a or not b:
        return 0.0
    best = 0.0
    previous = [0.0] * (len(b) + 1)
    for ca in a:
        current = [0.0]
        for j, cb in enumerate(b, start=1):
            score = max(
                0.0,
                previous[j - 1] + (_MATCH if ca == cb else _MISMATCH),
                previous[j] + _GAP,
                current[j - 1] + _GAP,
            )
            current.append(score)
            if score > best:
                best = score
        previous = current
    return best


def smith_waterman_similarity(a: str, b: str) -> float:
    """Local alignment score normalized by the shorter string length."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    shortest = min(len(a), len(b))
    return smith_waterman_score(a, b) / (shortest * _MATCH)
