"""Tokenizers shared by the syntactic representation models.

The paper uses two token granularities throughout: whitespace tokens
(words) and character/token n-grams with ``n in {2, 3, 4}`` for
characters and ``n in {1, 2, 3}`` for tokens.  Following the paper's
running example, character n-grams are drawn from the raw value with
whitespace replaced by ``_`` ("Joe Biden" -> 'Joe', 'oe_', 'e_B', ...).
"""

from __future__ import annotations

import re

__all__ = ["tokens", "character_ngrams", "token_ngrams", "normalize_text"]

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9]+")


def normalize_text(text: str) -> str:
    """Lower-case and collapse whitespace — shared pre-processing."""
    return " ".join(text.lower().split())


def tokens(text: str) -> list[str]:
    """Alphanumeric word tokens of ``text``, lower-cased."""
    return _TOKEN_PATTERN.findall(text.lower())


def character_ngrams(text: str, n: int) -> list[str]:
    """Character n-grams of ``text`` with whitespace mapped to ``_``.

    Texts shorter than ``n`` yield the whole (padded) text as a single
    gram so that very short values still produce a representation.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    prepared = normalize_text(text).replace(" ", "_")
    if not prepared:
        return []
    if len(prepared) < n:
        return [prepared]
    return [prepared[i : i + n] for i in range(len(prepared) - n + 1)]


def token_ngrams(text: str, n: int) -> list[str]:
    """Token n-grams of ``text`` (words joined by a single space)."""
    if n <= 0:
        raise ValueError("n must be positive")
    words = tokens(text)
    if not words:
        return []
    if len(words) < n:
        return [" ".join(words)]
    return [" ".join(words[i : i + n]) for i in range(len(words) - n + 1)]
