"""Character-level string similarity measures (Appendix B.1.1).

All functions return similarities in ``[0, 1]``; distance-based
measures are normalized by their attainable maximum and inverted.
Two empty strings are defined as identical (similarity 1), matching
the Simmetrics conventions the paper relies on.
"""

from __future__ import annotations

from collections import Counter

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "damerau_levenshtein_distance",
    "damerau_levenshtein_similarity",
    "jaro_similarity",
    "needleman_wunsch_similarity",
    "qgrams_distance_similarity",
    "longest_common_substring_similarity",
    "longest_common_subsequence_similarity",
]


def levenshtein_distance(a: str, b: str) -> int:
    """Minimum number of insert/delete/substitute operations."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a  # iterate over the longer string, row is shorter
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(
                    previous[j] + 1,  # delete
                    current[j - 1] + 1,  # insert
                    previous[j - 1] + cost,  # substitute
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """``1 - distance / max(len)``; 1.0 for two empty strings."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest


def damerau_levenshtein_distance(a: str, b: str) -> int:
    """Edit distance with adjacent transpositions (OSA variant).

    The optimal string alignment variant counts a transposition of two
    adjacent characters as a single operation, which is the behaviour
    of the Simmetrics implementation the paper used.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    rows = len(a) + 1
    cols = len(b) + 1
    dist = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        dist[i][0] = i
    for j in range(cols):
        dist[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            dist[i][j] = min(
                dist[i - 1][j] + 1,
                dist[i][j - 1] + 1,
                dist[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                dist[i][j] = min(dist[i][j], dist[i - 2][j - 2] + 1)
    return dist[-1][-1]


def damerau_levenshtein_similarity(a: str, b: str) -> float:
    """``1 - distance / max(len)``; 1.0 for two empty strings."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - damerau_levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """The Jaro similarity (common characters and transpositions).

    Scalar reference for the batched array kernel
    :func:`repro.pipeline.kernels.jaro_unique`; the greedy matching
    order (first unflagged equal character in the window) and the
    ``(c/|a| + c/|b| + (c-t)/c) / 3`` evaluation order are part of the
    bit-identity contract its differential tests enforce.
    """
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)

    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    common = 0
    for i, ca in enumerate(a):
        low = max(0, i - window)
        high = min(len(b), i + window + 1)
        for j in range(low, high):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = True
                b_flags[j] = True
                common += 1
                break
    if common == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if not flagged:
            continue
        while not b_flags[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        common / len(a)
        + common / len(b)
        + (common - transpositions) / common
    ) / 3.0


# Needleman-Wunsch alignment costs: aligned match is free, a mismatch
# costs 1 and a gap costs 2 (the Simmetrics defaults, expressed as
# positive costs to minimise).
_NW_MISMATCH = 1.0
_NW_GAP = 2.0


def needleman_wunsch_similarity(a: str, b: str) -> float:
    """Global alignment cost normalized into a similarity.

    The minimal alignment cost is divided by its upper bound
    ``gap_cost * max(len(a), len(b))`` (aligning against gaps plus
    mismatches can never cost more) and inverted.
    """
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    previous = [j * _NW_GAP for j in range(len(b) + 1)]
    for i, ca in enumerate(a, start=1):
        current = [i * _NW_GAP]
        for j, cb in enumerate(b, start=1):
            cost = 0.0 if ca == cb else _NW_MISMATCH
            current.append(
                min(
                    previous[j] + _NW_GAP,
                    current[j - 1] + _NW_GAP,
                    previous[j - 1] + cost,
                )
            )
        previous = current
    max_cost = _NW_GAP * max(len(a), len(b))
    return 1.0 - previous[-1] / max_cost


def _padded_trigrams(text: str) -> Counter:
    """Tri-grams with ``##`` padding, as in Simmetrics' QGramsDistance."""
    padded = "##" + text + "##"
    return Counter(padded[i : i + 3] for i in range(len(padded) - 2))


def qgrams_distance_similarity(a: str, b: str) -> float:
    """Block distance over padded tri-gram profiles, inverted."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    grams_a = _padded_trigrams(a)
    grams_b = _padded_trigrams(b)
    total = sum(grams_a.values()) + sum(grams_b.values())
    if total == 0:
        return 1.0
    difference = 0
    for gram in grams_a.keys() | grams_b.keys():
        difference += abs(grams_a[gram] - grams_b[gram])
    return 1.0 - difference / total


def longest_common_substring_similarity(a: str, b: str) -> float:
    """``|longest common substring| / max(len)``."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    best = 0
    previous = [0] * (len(b) + 1)
    for ca in a:
        current = [0]
        for j, cb in enumerate(b, start=1):
            if ca == cb:
                length = previous[j - 1] + 1
                current.append(length)
                if length > best:
                    best = length
            else:
                current.append(0)
        previous = current
    return best / max(len(a), len(b))


def longest_common_subsequence_similarity(a: str, b: str) -> float:
    """``|longest common subsequence| / max(len)``."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    previous = [0] * (len(b) + 1)
    for ca in a:
        current = [0]
        for j, cb in enumerate(b, start=1):
            if ca == cb:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[j - 1]))
        previous = current
    return previous[-1] / max(len(a), len(b))
