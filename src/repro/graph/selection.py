"""The single home of the library's threshold-selection convention.

The paper's algorithms disagree on the boundary case: most pseudocode
keeps edges with ``sim > t`` (strict), while CNC's Algorithm 2 prunes
``sim < t`` (i.e. keeps ``sim >= t``) and RCA filters its assignment
with ``sim >= t`` at the very end.  Before this module, every call
site hand-rolled its own mask and the convention could drift silently;
now both :meth:`repro.graph.bipartite.SimilarityGraph.prune` and the
compiled-graph prefix slicing of :mod:`repro.graph.compiled` resolve
the comparison here.

Two equivalent selection forms are provided:

* :func:`selection_mask` — a boolean mask over an arbitrary weight
  array (the legacy form, one O(m) pass per call);
* :func:`prefix_length` — the number of selected edges given weights
  sorted *ascending*, so that on a descending-sorted edge permutation
  the selection is the O(log m) prefix ``[0:k)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["selection_mask", "prefix_length"]


def selection_mask(
    weights: np.ndarray, threshold: float, inclusive: bool = False
) -> np.ndarray:
    """Boolean mask of the edges selected at ``threshold``.

    ``inclusive=False`` (the default) keeps ``weight > threshold``;
    ``inclusive=True`` keeps ``weight >= threshold``.
    """
    if inclusive:
        return weights >= threshold
    return weights > threshold


def prefix_length(
    ascending_weights: np.ndarray, threshold: float, inclusive: bool = False
) -> int:
    """Number of selected edges, given weights sorted ascending.

    Equals ``selection_mask(w, threshold, inclusive).sum()`` but runs
    in O(log m): the selected edges are exactly the top ``k`` of the
    descending sort, i.e. the suffix of the ascending sort.
    """
    side = "left" if inclusive else "right"
    cut = int(np.searchsorted(ascending_weights, threshold, side=side))
    return int(len(ascending_weights) - cut)
