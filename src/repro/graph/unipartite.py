"""The unipartite (Dirty-ER) similarity graph and its compiled form.

Dirty ER resolves duplicates *within* one collection, so its
similarity graph is not bipartite: nodes are ``0 .. n-1`` of a single
collection and an edge ``(u, v)`` (stored canonically with ``u < v``)
carries the similarity of two profiles of that collection.  Clusters
may hold any number of profiles, which is why the consumers of this
graph are the clustering algorithms of
:mod:`repro.extensions.dirty_er` rather than the bipartite matchers.

:class:`CompiledUnipartiteGraph` mirrors
:class:`repro.graph.compiled.CompiledGraph` exactly one layer down:

* one **descending-weight edge permutation** (ties by ascending
  ``(u, v)``), so "all edges at or above threshold ``t``" is a prefix
  slice located by one binary search through
  :func:`repro.graph.selection.prefix_length` — never a per-call mask;
* **symmetric CSR adjacency** (each edge appears under both
  endpoints), every node's run sorted by descending weight with ties
  by ascending neighbour;
* cached per-threshold :class:`UniEdgeSelection` views shared by all
  clustering algorithms of a sweep, plus a ``kernel_cache`` for
  threshold-level derived state (component labels, adjacency bitsets).

The Dirty-ER literature prunes with ``sim >= t`` (the networkx
prototype always did), so selections here default to **inclusive**
semantics — still resolved by :mod:`repro.graph.selection`, never
locally.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.graph.selection import prefix_length, selection_mask

__all__ = [
    "UnipartiteGraph",
    "CompiledUnipartiteGraph",
    "UniEdgeSelection",
    "matrix_to_unipartite_graph",
    "pairs_to_unipartite_graph",
]


class UnipartiteGraph:
    """A weighted undirected graph ``G = (V, E)`` over one collection.

    Edges are three parallel numpy arrays (``u``, ``v``, ``weight``)
    with the canonical orientation ``u < v`` — self loops and duplicate
    edges are rejected, matching the (deduplicating) networkx
    prototype.  Like :class:`~repro.graph.bipartite.SimilarityGraph`,
    the edge arrays are immutable once :meth:`compiled` has run; derive
    new graphs instead of editing in place.
    """

    __slots__ = (
        "n_nodes",
        "u",
        "v",
        "weight",
        "name",
        "metadata",
        "_compiled",
    )

    def __init__(
        self,
        n_nodes: int,
        u: Sequence[int] | np.ndarray,
        v: Sequence[int] | np.ndarray,
        weight: Sequence[float] | np.ndarray,
        name: str = "",
        validate: bool = True,
    ) -> None:
        if n_nodes < 0:
            raise ValueError("node count must be non-negative")
        self.n_nodes = int(n_nodes)
        self.u = np.asarray(u, dtype=np.int64)
        self.v = np.asarray(v, dtype=np.int64)
        self.weight = np.asarray(weight, dtype=np.float64)
        self.name = name
        self.metadata: dict = {}
        self._compiled: "CompiledUnipartiteGraph | None" = None
        if validate:
            self._validate()

    def __getstate__(self):
        return (
            self.n_nodes,
            self.u,
            self.v,
            self.weight,
            self.name,
            self.metadata,
        )

    def __setstate__(self, state) -> None:
        (
            self.n_nodes,
            self.u,
            self.v,
            self.weight,
            self.name,
            self.metadata,
        ) = state
        self._compiled = None

    def _validate(self) -> None:
        if not (len(self.u) == len(self.v) == len(self.weight)):
            raise ValueError("edge arrays must have equal length")
        if len(self.u) == 0:
            return
        if self.u.min() < 0 or self.v.max() >= self.n_nodes:
            raise ValueError("edge endpoint out of range")
        if not bool((self.u < self.v).all()):
            raise ValueError(
                "edges must be canonical (u < v, no self loops)"
            )
        if np.isnan(self.weight).any():
            raise ValueError("edge weights contain NaN")
        if self.weight.min() < 0.0 or self.weight.max() > 1.0 + 1e-9:
            raise ValueError("edge weights must lie in [0, 1]")
        keys = self.u * np.int64(self.n_nodes) + self.v
        if len(np.unique(keys)) != len(keys):
            raise ValueError("duplicate edges are not allowed")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n_nodes: int,
        edges: Iterable[tuple[int, int, float]],
        name: str = "",
    ) -> "UnipartiteGraph":
        """Build a graph from ``(u, v, weight)`` triples.

        Endpoints are canonicalized to ``u < v``; like ``nx.Graph``,
        a repeated edge overwrites the earlier weight (last write
        wins) and self loops are rejected.
        """
        canonical: dict[tuple[int, int], float] = {}
        for a, b, weight in edges:
            if a == b:
                raise ValueError(f"self loop on node {a}")
            key = (a, b) if a < b else (b, a)
            canonical[key] = float(weight)
        if canonical:
            u, v = zip(*canonical)
            weight = tuple(canonical.values())
        else:
            u, v, weight = (), (), ()
        return cls(n_nodes, u, v, weight, name=name)

    @classmethod
    def from_networkx(cls, graph, name: str = "") -> "UnipartiteGraph":
        """Convert an ``nx.Graph`` whose nodes are ``0 .. n-1``.

        This is the bridge from the legacy networkx prototype; missing
        ``weight`` attributes default to ``0.0`` as the prototype's
        pruning did.
        """
        nodes = sorted(graph.nodes)
        n = len(nodes)
        if nodes and (nodes[0] != 0 or nodes[-1] != n - 1):
            raise ValueError("networkx nodes must be exactly 0 .. n-1")
        return cls.from_edges(
            n,
            (
                (a, b, data.get("weight", 0.0))
                for a, b, data in graph.edges(data=True)
            ),
            name=name,
        )

    def to_networkx(self):
        """The graph as an ``nx.Graph`` (for the legacy reference path)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_nodes))
        for a, b, weight in zip(
            self.u.tolist(), self.v.tolist(), self.weight.tolist()
        ):
            graph.add_edge(a, b, weight=weight)
        return graph

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return int(len(self.weight))

    @property
    def density(self) -> float:
        """Fraction of the ``n * (n - 1) / 2`` pair space realised."""
        pairs = self.n_nodes * (self.n_nodes - 1) // 2
        if pairs == 0:
            return 0.0
        return self.n_edges / pairs

    def __len__(self) -> int:
        return self.n_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"UnipartiteGraph(n={self.n_nodes}, m={self.n_edges}{label})"
        )

    def edges(self) -> Iterator[tuple[int, int, float]]:
        for a, b, w in zip(self.u, self.v, self.weight):
            yield int(a), int(b), float(w)

    # ------------------------------------------------------------------
    # Compiled form
    # ------------------------------------------------------------------
    def compiled(self) -> "CompiledUnipartiteGraph":
        """The compiled form, built once and cached on the graph."""
        if self._compiled is None:
            self._compiled = CompiledUnipartiteGraph(self)
        return self._compiled

    def release_compiled(self) -> None:
        """Drop the cached compiled form (frees the derived arrays)."""
        self._compiled = None

    def prune(
        self, threshold: float, inclusive: bool = True
    ) -> "UnipartiteGraph":
        """A new graph keeping the edges selected at ``threshold``.

        Inclusive (``>=``) by default — the Dirty-ER convention; the
        comparison is resolved by
        :func:`repro.graph.selection.selection_mask`.
        """
        mask = selection_mask(self.weight, threshold, inclusive)
        pruned = UnipartiteGraph(
            self.n_nodes,
            self.u[mask],
            self.v[mask],
            self.weight[mask],
            name=self.name,
            validate=False,
        )
        pruned.metadata = dict(self.metadata)
        return pruned


class CompiledUnipartiteGraph:
    """Shared, immutable precomputation over one unipartite graph.

    Construction performs the two edge sorts (global descending and
    the symmetric CSR sort); per-threshold selections and clustering
    kernel state are computed on first use and cached.  Assumes the
    source graph's edge arrays are never mutated afterwards.
    """

    __slots__ = (
        "source",
        "n_nodes",
        "n_edges",
        "order",
        "u_sorted",
        "v_sorted",
        "weight_sorted",
        "weight_ascending",
        "indptr",
        "neighbors",
        "neighbor_weights",
        "kernel_cache",
        "_selections",
    )

    def __init__(self, graph: UnipartiteGraph) -> None:
        self.source = graph
        self.n_nodes = graph.n_nodes
        self.n_edges = graph.n_edges

        u, v, weight = graph.u, graph.v, graph.weight
        # Descending weight, ties by ascending (u, v); stable, so any
        # exact tie keeps the input order (inputs are duplicate-free).
        self.order = np.lexsort((v, u, -weight))
        self.u_sorted = u[self.order]
        self.v_sorted = v[self.order]
        self.weight_sorted = weight[self.order]
        self.weight_ascending = np.ascontiguousarray(self.weight_sorted[::-1])

        # Symmetric CSR: every edge appears under both endpoints, each
        # node's run sorted by (-weight, neighbour).
        endpoints = np.concatenate([u, v])
        others = np.concatenate([v, u])
        doubled = np.concatenate([weight, weight])
        csr_order = np.lexsort((others, -doubled, endpoints))
        self.indptr = self._indptr(endpoints[csr_order], self.n_nodes)
        self.neighbors = others[csr_order]
        self.neighbor_weights = doubled[csr_order]

        #: Scratch space for clustering kernels that cache
        #: threshold-level derived state (component labels, bitsets).
        self.kernel_cache: dict = {}
        self._selections: dict[tuple[float, bool], UniEdgeSelection] = {}

    @staticmethod
    def _indptr(sorted_nodes: np.ndarray, n: int) -> np.ndarray:
        indptr = np.zeros(n + 1, dtype=np.int64)
        if n:
            counts = np.bincount(sorted_nodes, minlength=n)
            np.cumsum(counts, out=indptr[1:])
        return indptr

    @property
    def name(self) -> str:
        return self.source.name

    @property
    def metadata(self) -> dict:
        return self.source.metadata

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledUnipartiteGraph(n={self.n_nodes}, m={self.n_edges})"
        )

    def select(
        self, threshold: float, inclusive: bool = True
    ) -> "UniEdgeSelection":
        """The cached edge selection at ``(threshold, inclusive)``.

        Inclusive (``>=``) by default, matching the Dirty-ER pruning
        convention; the count is one binary search through
        :func:`repro.graph.selection.prefix_length`.
        """
        key = (float(threshold), bool(inclusive))
        selection = self._selections.get(key)
        if selection is None:
            count = prefix_length(self.weight_ascending, threshold, inclusive)
            selection = UniEdgeSelection(self, key[0], key[1], count)
            self._selections[key] = selection
        return selection


class UniEdgeSelection:
    """The edges of one compiled unipartite graph above one threshold.

    The selected edges are the prefix ``[0:count)`` of the compiled
    descending-weight permutation.  Derived views are lazy and cached
    on the selection: the scipy CSR adjacency (for
    ``csgraph.connected_components`` and the GECG matmuls) and the
    per-node Python-int adjacency bitsets the clique kernels intersect.
    """

    __slots__ = (
        "compiled",
        "threshold",
        "inclusive",
        "count",
        "_sparse",
        "_bitsets",
        "_component_labels",
    )

    def __init__(
        self,
        compiled: CompiledUnipartiteGraph,
        threshold: float,
        inclusive: bool,
        count: int,
    ) -> None:
        self.compiled = compiled
        self.threshold = threshold
        self.inclusive = inclusive
        self.count = count
        self._sparse = None
        self._bitsets: list[int] | None = None
        self._component_labels: np.ndarray | None = None

    # -- selected edge arrays (descending weight) ----------------------
    @property
    def u(self) -> np.ndarray:
        return self.compiled.u_sorted[: self.count]

    @property
    def v(self) -> np.ndarray:
        return self.compiled.v_sorted[: self.count]

    @property
    def weight(self) -> np.ndarray:
        return self.compiled.weight_sorted[: self.count]

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = ">=" if self.inclusive else ">"
        return (
            f"UniEdgeSelection(w {op} {self.threshold}, {self.count} of "
            f"{self.compiled.n_edges} edges)"
        )

    # -- derived views --------------------------------------------------
    def adjacency_sparse(self):
        """Symmetric ``scipy.sparse.csr_matrix`` over the selection."""
        if self._sparse is None:
            from scipy import sparse

            n = self.compiled.n_nodes
            u, v = self.u, self.v
            data = np.ones(2 * self.count)
            self._sparse = sparse.csr_matrix(
                (
                    data,
                    (np.concatenate([u, v]), np.concatenate([v, u])),
                ),
                shape=(n, n),
            )
        return self._sparse

    def adjacency_bitsets(self) -> list[int]:
        """Per-node neighbour bitsets (Python ints) over the selection.

        Arbitrary-precision ints make the clique kernels' candidate
        intersections one machine-word-parallel ``&`` per step.
        """
        if self._bitsets is None:
            bits = [0] * self.compiled.n_nodes
            for a, b in zip(self.u.tolist(), self.v.tolist()):
                bits[a] |= 1 << b
                bits[b] |= 1 << a
            self._bitsets = bits
        return self._bitsets

    def component_labels(self) -> np.ndarray:
        """Connected-component label per node over the selection."""
        if self._component_labels is None:
            from scipy.sparse import csgraph

            if self.count == 0:
                self._component_labels = np.arange(
                    self.compiled.n_nodes, dtype=np.int64
                )
            else:
                _, labels = csgraph.connected_components(
                    self.adjacency_sparse(), directed=False
                )
                self._component_labels = labels.astype(np.int64)
        return self._component_labels


def matrix_to_unipartite_graph(
    matrix: np.ndarray,
    name: str = "",
    normalize: bool = True,
    metadata: dict | None = None,
) -> UnipartiteGraph:
    """Build a :class:`UnipartiteGraph` from a square self-join matrix.

    The strict upper triangle (``i < j``) supplies the edges — the
    diagonal is the trivial self similarity and the lower triangle is
    the same pair seen from the other side (asymmetric measures such
    as Monge-Elkan are read in ``i -> j`` direction, a documented
    convention of the self-join corpus).  Pairs at or below zero are
    dropped and the retained weights are min-max normalized, exactly
    like the bipartite :func:`~repro.pipeline.graph_builder.matrix_to_graph`.
    """
    from repro.graph.normalize import min_max_normalize_array

    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("self-join matrix must be square")
    upper = np.triu(matrix, k=1)
    u, v = np.nonzero(upper > 0.0)
    weights = np.clip(matrix[u, v], 0.0, 1.0)
    if normalize and len(weights):
        weights = min_max_normalize_array(weights)
    graph = UnipartiteGraph(
        matrix.shape[0], u, v, weights, name=name, validate=False
    )
    if metadata:
        graph.metadata = dict(metadata)
    return graph


def pairs_to_unipartite_graph(
    n_nodes: int,
    u: np.ndarray,
    v: np.ndarray,
    values: np.ndarray,
    name: str = "",
    normalize: bool = True,
    metadata: dict | None = None,
) -> UnipartiteGraph:
    """Build a :class:`UnipartiteGraph` from scored candidate pairs.

    The self-join analogue of
    :func:`~repro.pipeline.graph_builder.pairs_to_graph`: only the
    strict upper triangle survives (``u < v`` — the diagonal and the
    mirrored lower-triangle duplicates a symmetric blocking scheme
    emits are dropped, matching the convention of
    :func:`matrix_to_unipartite_graph`), positive scores are kept,
    clipped to ``[0, 1]`` and min-max normalized.  Candidates sorted
    by ``(u, v)`` reproduce the matrix path's row-major edge order,
    so blocked self-join graphs deduplicate and order edges exactly
    like their dense counterparts.
    """
    from repro.graph.normalize import min_max_normalize_array

    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    keep = (u < v) & (values > 0.0)
    u, v, weights = u[keep], v[keep], np.clip(values[keep], 0.0, 1.0)
    if normalize and len(weights):
        weights = min_max_normalize_array(weights)
    graph = UnipartiteGraph(n_nodes, u, v, weights, name=name, validate=False)
    if metadata:
        graph.metadata = dict(metadata)
    return graph
