"""Descriptive statistics of similarity graphs.

Used to regenerate Table 3 (number of graphs and average edges per
dataset) and the scalability analysis of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import SimilarityGraph

__all__ = ["GraphStats", "graph_stats"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one similarity graph."""

    n_left: int
    n_right: int
    n_edges: int
    density: float
    min_weight: float
    max_weight: float
    mean_weight: float
    std_weight: float
    median_weight: float
    mean_left_degree: float
    mean_right_degree: float
    isolated_left: int
    isolated_right: int

    @property
    def normalized_size(self) -> float:
        """``m / (|V1| * |V2|)`` — the paper's normalized graph size."""
        return self.density


def graph_stats(graph: SimilarityGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    if graph.n_edges == 0:
        return GraphStats(
            n_left=graph.n_left,
            n_right=graph.n_right,
            n_edges=0,
            density=0.0,
            min_weight=0.0,
            max_weight=0.0,
            mean_weight=0.0,
            std_weight=0.0,
            median_weight=0.0,
            mean_left_degree=0.0,
            mean_right_degree=0.0,
            isolated_left=graph.n_left,
            isolated_right=graph.n_right,
        )
    weights = graph.weight
    left_connected = np.unique(graph.left).size
    right_connected = np.unique(graph.right).size
    return GraphStats(
        n_left=graph.n_left,
        n_right=graph.n_right,
        n_edges=graph.n_edges,
        density=graph.density,
        min_weight=float(weights.min()),
        max_weight=float(weights.max()),
        mean_weight=float(weights.mean()),
        std_weight=float(weights.std()),
        median_weight=float(np.median(weights)),
        mean_left_degree=graph.n_edges / graph.n_left if graph.n_left else 0.0,
        mean_right_degree=graph.n_edges / graph.n_right if graph.n_right else 0.0,
        isolated_left=graph.n_left - left_connected,
        isolated_right=graph.n_right - right_connected,
    )
