"""Compiled similarity graphs: one sort per graph, O(log m) thresholds.

The paper's central experiment applies every matching algorithm to
every similarity graph at 20 thresholds.  Each legacy ``match`` call
independently masked, copied and re-sorted the same edge arrays; a
:class:`CompiledGraph` performs that work exactly once per
:class:`~repro.graph.bipartite.SimilarityGraph` and shares it across
all algorithms and all thresholds of a sweep:

* the **descending-weight edge permutation** (ties broken by ascending
  ``(left, right)``, the order Unique Mapping clustering consumes), so
  that "all edges above threshold ``t``" is a prefix slice located by
  one binary search instead of a mask + copy;
* **CSR adjacency for both sides**, each node's run sorted by
  descending weight with ties by ascending neighbour — bit-compatible
  with the legacy per-node adjacency lists;
* **per-threshold views** (:class:`EdgeSelection`), cached per
  ``(threshold, inclusive)`` pair so the ten algorithms of a sweep
  share one selection per grid point.

Because every per-node CSR run is weight-descending, the edges above a
threshold also form a *prefix of every node's run*; per-node cutoffs
are one ``bincount`` over the selected prefix.  All derived artifacts
are lazy and cached — compiling is cheap until a consumer asks for
more.

The boundary convention (strict ``>`` vs inclusive ``>=``) is resolved
by :mod:`repro.graph.selection`, never here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graph.selection import prefix_length

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.bipartite import SimilarityGraph

__all__ = ["CompiledGraph", "EdgeSelection", "compile_graph"]

AdjacencyLists = list[list[tuple[int, float]]]


def compile_graph(graph: "SimilarityGraph") -> "CompiledGraph":
    """The graph's compiled form, built once and cached on the graph."""
    return graph.compiled()


class CompiledGraph:
    """Shared, immutable precomputation over one similarity graph.

    Construction performs the three edge sorts (global descending and
    one CSR sort per side); everything else — materialised adjacency
    lists, node-average weights, per-threshold selections, per-matcher
    kernel state — is computed on first use and cached.

    The compiled form assumes the source graph's edge arrays are never
    mutated afterwards (the documented contract of
    :class:`~repro.graph.bipartite.SimilarityGraph`).
    """

    __slots__ = (
        "source",
        "n_left",
        "n_right",
        "n_edges",
        "order",
        "left_sorted",
        "right_sorted",
        "weight_sorted",
        "weight_ascending",
        "left_indptr",
        "left_neighbors",
        "left_weights",
        "right_indptr",
        "right_neighbors",
        "right_weights",
        "kernel_cache",
        "_selections",
        "_left_pairs",
        "_right_pairs",
        "_left_lists",
        "_right_lists",
        "_merged_lists",
        "_averages",
        "_ripple_queue",
    )

    def __init__(self, graph: "SimilarityGraph") -> None:
        self.source = graph
        self.n_left = graph.n_left
        self.n_right = graph.n_right
        self.n_edges = graph.n_edges

        left, right, weight = graph.left, graph.right, graph.weight
        # Descending weight, ties by ascending (left, right); stable on
        # full ties, so duplicate edges keep their input order.
        self.order = np.lexsort((right, left, -weight))
        self.left_sorted = left[self.order]
        self.right_sorted = right[self.order]
        self.weight_sorted = weight[self.order]
        self.weight_ascending = np.ascontiguousarray(self.weight_sorted[::-1])

        # CSR per side.  Sorting by (node, -weight, neighbour) makes
        # each node's run identical to the legacy adjacency list order.
        left_order = np.lexsort((right, -weight, left))
        self.left_indptr = self._indptr(left[left_order], self.n_left)
        self.left_neighbors = right[left_order]
        self.left_weights = weight[left_order]

        right_order = np.lexsort((left, -weight, right))
        self.right_indptr = self._indptr(right[right_order], self.n_right)
        self.right_neighbors = left[right_order]
        self.right_weights = weight[right_order]

        #: Scratch space for matcher kernels that precompute
        #: threshold-independent state (e.g. RCA's assignment passes).
        self.kernel_cache: dict = {}
        self._selections: dict[tuple[float, bool], EdgeSelection] = {}
        self._left_pairs: list[tuple[int, float]] | None = None
        self._right_pairs: list[tuple[int, float]] | None = None
        self._left_lists: AdjacencyLists | None = None
        self._right_lists: AdjacencyLists | None = None
        self._merged_lists: AdjacencyLists | None = None
        self._averages: tuple[np.ndarray, np.ndarray] | None = None
        self._ripple_queue: list[int] | None = None

    @staticmethod
    def _indptr(sorted_nodes: np.ndarray, n: int) -> np.ndarray:
        indptr = np.zeros(n + 1, dtype=np.int64)
        if n:
            counts = np.bincount(sorted_nodes, minlength=n)
            np.cumsum(counts, out=indptr[1:])
        return indptr

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.source.name

    @property
    def metadata(self) -> dict:
        return self.source.metadata

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledGraph({self.n_left}x{self.n_right}, m={self.n_edges})"
        )

    # ------------------------------------------------------------------
    # Threshold selection
    # ------------------------------------------------------------------
    def select(
        self, threshold: float, inclusive: bool = False
    ) -> "EdgeSelection":
        """The cached edge selection at ``(threshold, inclusive)``.

        This is the compiled counterpart of
        :meth:`SimilarityGraph.prune`: the selected edges are the first
        ``k`` of the descending-weight permutation, found by one binary
        search through :func:`repro.graph.selection.prefix_length`.
        """
        key = (float(threshold), bool(inclusive))
        selection = self._selections.get(key)
        if selection is None:
            count = prefix_length(self.weight_ascending, threshold, inclusive)
            selection = EdgeSelection(self, key[0], key[1], count)
            self._selections[key] = selection
        return selection

    # ------------------------------------------------------------------
    # Full (threshold-free) adjacency
    # ------------------------------------------------------------------
    def left_pairs(self) -> list[tuple[int, float]]:
        """All ``(neighbour, weight)`` tuples in left-CSR order."""
        if self._left_pairs is None:
            self._left_pairs = list(
                zip(self.left_neighbors.tolist(), self.left_weights.tolist())
            )
        return self._left_pairs

    def right_pairs(self) -> list[tuple[int, float]]:
        if self._right_pairs is None:
            self._right_pairs = list(
                zip(self.right_neighbors.tolist(), self.right_weights.tolist())
            )
        return self._right_pairs

    def left_adjacency(self) -> AdjacencyLists:
        """Per-node adjacency lists for ``V1``, descending weight.

        Bit-compatible with the legacy
        :meth:`SimilarityGraph.left_adjacency` lists, but sliced out of
        the CSR arrays instead of rebuilt with a dedicated lexsort.
        """
        if self._left_lists is None:
            self._left_lists = self._slice_lists(
                self.left_pairs(), self.left_indptr
            )
        return self._left_lists

    def right_adjacency(self) -> AdjacencyLists:
        if self._right_lists is None:
            self._right_lists = self._slice_lists(
                self.right_pairs(), self.right_indptr
            )
        return self._right_lists

    def merged_adjacency(self) -> AdjacencyLists:
        """Adjacency over the merged id space (left node ``i`` -> ``i``,
        right node ``j`` -> ``n_left + j``), descending weight per node
        — Ricochet's node numbering, built once and cached."""
        if self._merged_lists is None:
            shifted = self.left_neighbors + self.n_left
            shifted_pairs = list(
                zip(shifted.tolist(), self.left_weights.tolist())
            )
            merged = self._slice_lists(shifted_pairs, self.left_indptr)
            merged.extend(self.right_adjacency())
            self._merged_lists = merged
        return self._merged_lists

    @staticmethod
    def _slice_lists(
        pairs: list[tuple[int, float]], indptr: np.ndarray
    ) -> AdjacencyLists:
        bounds = indptr.tolist()
        return [
            pairs[bounds[u] : bounds[u + 1]] for u in range(len(bounds) - 1)
        ]

    # ------------------------------------------------------------------
    # Node statistics (Ricochet's seed ordering)
    # ------------------------------------------------------------------
    def average_node_weights(self) -> tuple[np.ndarray, np.ndarray]:
        """Average adjacent-edge weight per node, both sides, cached."""
        if self._averages is None:
            self._averages = self.source.average_node_weights()
        return self._averages

    def ripple_queue(self) -> list[int]:
        """Merged-id node order by descending average adjacent weight
        (ties by ascending id) — Ricochet's seed queue, cached."""
        if self._ripple_queue is None:
            left_avg, right_avg = self.average_node_weights()
            averages = list(left_avg) + list(right_avg)
            self._ripple_queue = sorted(
                range(self.n_left + self.n_right),
                key=lambda v: (-averages[v], v),
            )
        return self._ripple_queue


class EdgeSelection:
    """The edges of one compiled graph above one threshold.

    The selected edges are the prefix ``[0:count)`` of the compiled
    descending-weight permutation.  Because every per-node CSR run is
    also weight-descending, the selection restricted to one node is the
    prefix of that node's run: :meth:`left_counts` /
    :meth:`right_counts` give the per-node prefix lengths, so matchers
    iterate the cached full adjacency lists and stop at the count —
    no per-threshold list copies.  Everything is lazy: a matcher that
    only needs the edge count never computes the cutoffs.
    """

    __slots__ = (
        "compiled",
        "threshold",
        "inclusive",
        "count",
        "_left_counts",
        "_right_counts",
    )

    def __init__(
        self,
        compiled: CompiledGraph,
        threshold: float,
        inclusive: bool,
        count: int,
    ) -> None:
        self.compiled = compiled
        self.threshold = threshold
        self.inclusive = inclusive
        self.count = count
        self._left_counts: list[int] | None = None
        self._right_counts: list[int] | None = None

    # -- selected edge arrays (descending weight) ----------------------
    @property
    def left(self) -> np.ndarray:
        return self.compiled.left_sorted[: self.count]

    @property
    def right(self) -> np.ndarray:
        return self.compiled.right_sorted[: self.count]

    @property
    def weight(self) -> np.ndarray:
        return self.compiled.weight_sorted[: self.count]

    def original_indices(self) -> np.ndarray:
        """Indices of the selected edges into the *source* edge arrays,
        ascending — for consumers that must replicate original-order
        semantics (e.g. duplicate-edge last-write-wins)."""
        return np.sort(self.compiled.order[: self.count])

    # -- per-node prefixes ---------------------------------------------
    def left_counts(self) -> list[int]:
        """For each left node, how many of its adjacency entries fall in
        the selection — i.e. the effective length of its preference
        list at this threshold (the entries ``0 .. count-1`` of the
        node's list in :meth:`CompiledGraph.left_adjacency`)."""
        if self._left_counts is None:
            self._left_counts = self._node_counts(
                self.left, self.compiled.n_left
            )
        return self._left_counts

    def right_counts(self) -> list[int]:
        if self._right_counts is None:
            self._right_counts = self._node_counts(
                self.right, self.compiled.n_right
            )
        return self._right_counts

    def _node_counts(self, endpoints: np.ndarray, n: int) -> list[int]:
        if not self.count:
            return [0] * n
        return np.bincount(endpoints, minlength=n).tolist()

    # -- conversions ---------------------------------------------------
    def to_graph(self) -> "SimilarityGraph":
        """The selection as a standalone graph, preserving ``name`` and
        ``metadata`` and the source's original edge order (bit-identical
        to :meth:`SimilarityGraph.prune` at the same settings)."""
        indices = self.original_indices()
        return self.compiled.source.subgraph_by_edge_indices(indices)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = ">=" if self.inclusive else ">"
        return (
            f"EdgeSelection(w {op} {self.threshold}, {self.count} of "
            f"{self.compiled.n_edges} edges)"
        )
