"""Similarity graph substrate (bipartite and unipartite).

Every experiment in the paper consumes a *bipartite similarity graph*
``G = (V1, V2, E)`` whose edges carry weights in ``[0, 1]``.  This package
provides the graph data structure itself (:class:`SimilarityGraph`),
min-max weight normalization, descriptive statistics, (de)serialization
and the worked example graph of Figure 1.

Because the paper's protocol re-uses each graph across ten algorithms
and twenty thresholds, the package also provides the graph's *compiled*
form (:class:`CompiledGraph`, built once per graph via
:meth:`SimilarityGraph.compiled`): the descending-weight edge
permutation, CSR adjacency for both sides and binary-searchable
threshold prefixes that every matcher kernel shares.  The strict-vs-
inclusive threshold convention lives in one place,
:mod:`repro.graph.selection`.

The Dirty-ER extension consumes the *unipartite* counterpart
(:class:`UnipartiteGraph` / :class:`CompiledUnipartiteGraph`,
:mod:`repro.graph.unipartite`): one collection, canonical ``u < v``
edges, symmetric CSR, and cached inclusive threshold selections for
the clustering algorithms of :mod:`repro.extensions.dirty_er`.
"""

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph, EdgeSelection, compile_graph
from repro.graph.examples import figure1_graph
from repro.graph.normalize import min_max_normalize
from repro.graph.selection import prefix_length, selection_mask
from repro.graph.stats import GraphStats, graph_stats
from repro.graph.unipartite import (
    CompiledUnipartiteGraph,
    UniEdgeSelection,
    UnipartiteGraph,
    matrix_to_unipartite_graph,
)

__all__ = [
    "SimilarityGraph",
    "UnipartiteGraph",
    "CompiledUnipartiteGraph",
    "UniEdgeSelection",
    "matrix_to_unipartite_graph",
    "CompiledGraph",
    "EdgeSelection",
    "compile_graph",
    "selection_mask",
    "prefix_length",
    "GraphStats",
    "graph_stats",
    "min_max_normalize",
    "figure1_graph",
]
