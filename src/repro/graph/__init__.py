"""Bipartite similarity graph substrate.

Every experiment in the paper consumes a *bipartite similarity graph*
``G = (V1, V2, E)`` whose edges carry weights in ``[0, 1]``.  This package
provides the graph data structure itself (:class:`SimilarityGraph`),
min-max weight normalization, descriptive statistics, (de)serialization
and the worked example graph of Figure 1.
"""

from repro.graph.bipartite import SimilarityGraph
from repro.graph.examples import figure1_graph
from repro.graph.normalize import min_max_normalize
from repro.graph.stats import GraphStats, graph_stats

__all__ = [
    "SimilarityGraph",
    "GraphStats",
    "graph_stats",
    "min_max_normalize",
    "figure1_graph",
]
