"""The bipartite similarity graph data structure.

A :class:`SimilarityGraph` is the single input type shared by every
matching algorithm in :mod:`repro.matching`.  Nodes on each side are
dense integer indices (``0 .. n1-1`` for the left collection ``V1`` and
``0 .. n2-1`` for the right collection ``V2``); edges are stored as three
parallel :mod:`numpy` arrays, which keeps million-edge graphs cheap and
makes threshold pruning a single vectorized mask.

The representation intentionally mirrors the paper's problem statement:
edges connect only nodes of different sides, weights live in ``[0, 1]``
and the same graph is re-used across all algorithms and all thresholds
of the sweep.

Re-use is what :meth:`SimilarityGraph.compiled` serves: it builds (once,
cached) the :class:`~repro.graph.compiled.CompiledGraph` holding the
descending-weight edge permutation and the CSR adjacency both matcher
entry points share — ``Matcher.match`` compiles implicitly and
``Matcher.match_compiled`` consumes the compiled view directly.  The
edge arrays are therefore part of an immutability contract: mutating
``left`` / ``right`` / ``weight`` after the first compile leaves the
cached artifacts stale.  Derive new graphs (:meth:`prune`,
:meth:`swap_sides`, :meth:`subgraph_by_edge_indices`) instead of
editing in place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.graph.selection import selection_mask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.compiled import CompiledGraph

__all__ = ["SimilarityGraph"]


class SimilarityGraph:
    """A weighted bipartite graph ``G = (V1, V2, E)``.

    Parameters
    ----------
    n_left:
        Number of nodes in the left collection ``V1``.
    n_right:
        Number of nodes in the right collection ``V2``.
    left:
        Array of left endpoints, one per edge.
    right:
        Array of right endpoints, one per edge.
    weight:
        Array of edge weights.  Weights are expected in ``[0, 1]``; use
        :func:`repro.graph.normalize.min_max_normalize` when a similarity
        function produces weights on another scale.
    name:
        Optional human-readable identifier (e.g. the similarity function
        that produced the graph).
    validate:
        When true (the default), check index bounds and weight range.
    """

    __slots__ = (
        "n_left",
        "n_right",
        "left",
        "right",
        "weight",
        "name",
        "metadata",
        "_compiled",
    )

    def __init__(
        self,
        n_left: int,
        n_right: int,
        left: Sequence[int] | np.ndarray,
        right: Sequence[int] | np.ndarray,
        weight: Sequence[float] | np.ndarray,
        name: str = "",
        validate: bool = True,
    ) -> None:
        if n_left < 0 or n_right < 0:
            raise ValueError("collection sizes must be non-negative")
        self.n_left = int(n_left)
        self.n_right = int(n_right)
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        self.weight = np.asarray(weight, dtype=np.float64)
        self.name = name
        self.metadata: dict = {}
        self._compiled: "CompiledGraph | None" = None
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Pickling (drop the compiled cache; workers rebuild it locally)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (
            self.n_left,
            self.n_right,
            self.left,
            self.right,
            self.weight,
            self.name,
            self.metadata,
        )

    def __setstate__(self, state) -> None:
        (
            self.n_left,
            self.n_right,
            self.left,
            self.right,
            self.weight,
            self.name,
            self.metadata,
        ) = state
        self._compiled = None

    def _validate(self) -> None:
        if not (len(self.left) == len(self.right) == len(self.weight)):
            raise ValueError("edge arrays must have equal length")
        if len(self.left) == 0:
            return
        if self.left.min() < 0 or self.left.max() >= self.n_left:
            raise ValueError("left endpoint out of range")
        if self.right.min() < 0 or self.right.max() >= self.n_right:
            raise ValueError("right endpoint out of range")
        if np.isnan(self.weight).any():
            raise ValueError("edge weights contain NaN")
        if self.weight.min() < 0.0 or self.weight.max() > 1.0 + 1e-9:
            raise ValueError("edge weights must lie in [0, 1]")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n_left: int,
        n_right: int,
        edges: Iterable[tuple[int, int, float]],
        name: str = "",
    ) -> "SimilarityGraph":
        """Build a graph from an iterable of ``(left, right, weight)``."""
        edge_list = list(edges)
        if edge_list:
            left, right, weight = zip(*edge_list)
        else:
            left, right, weight = (), (), ()
        return cls(n_left, n_right, left, right, weight, name=name)

    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        keep_zero: bool = False,
        name: str = "",
    ) -> "SimilarityGraph":
        """Build a graph from a dense ``n_left x n_right`` weight matrix.

        By default edges with weight ``0`` are dropped, matching the
        paper's convention of keeping every pair "with a similarity
        higher than 0".
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("matrix must be two-dimensional")
        if keep_zero:
            left, right = np.indices(matrix.shape)
            left, right = left.ravel(), right.ravel()
        else:
            left, right = np.nonzero(matrix > 0.0)
        return cls(
            matrix.shape[0],
            matrix.shape[1],
            left,
            right,
            matrix[left, right],
            name=name,
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of edges ``m = |E|``."""
        return int(len(self.weight))

    @property
    def n_nodes(self) -> int:
        """Number of nodes ``n = |V1| + |V2|``."""
        return self.n_left + self.n_right

    @property
    def cartesian_size(self) -> int:
        """Size of the full comparison space ``|V1| x |V2|``."""
        return self.n_left * self.n_right

    @property
    def density(self) -> float:
        """Fraction of the Cartesian product realised as edges."""
        if self.cartesian_size == 0:
            return 0.0
        return self.n_edges / self.cartesian_size

    def __len__(self) -> int:
        return self.n_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"SimilarityGraph({self.n_left}x{self.n_right},"
            f" m={self.n_edges}{label})"
        )

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over edges as ``(left, right, weight)`` triples."""
        for i, j, w in zip(self.left, self.right, self.weight):
            yield int(i), int(j), float(w)

    # ------------------------------------------------------------------
    # Threshold pruning
    # ------------------------------------------------------------------
    def prune(self, threshold: float, inclusive: bool = False) -> "SimilarityGraph":
        """Return a new graph keeping only edges above ``threshold``.

        The paper's algorithms "discard all edges with a weight lower
        than the similarity threshold"; the pseudocode uses a strict
        ``sim > t`` comparison for most algorithms, so strict is the
        default here.  Pass ``inclusive=True`` to keep ``sim == t``.
        The comparison itself is resolved by
        :func:`repro.graph.selection.selection_mask`, the same helper
        the compiled prefix slicing uses.
        """
        mask = selection_mask(self.weight, threshold, inclusive)
        pruned = SimilarityGraph(
            self.n_left,
            self.n_right,
            self.left[mask],
            self.right[mask],
            self.weight[mask],
            name=self.name,
            validate=False,
        )
        pruned.metadata = dict(self.metadata)
        return pruned

    def edge_mask(self, threshold: float) -> np.ndarray:
        """Boolean mask of edges with weight strictly above ``threshold``."""
        return selection_mask(self.weight, threshold, inclusive=False)

    # ------------------------------------------------------------------
    # Compiled form and adjacency
    # ------------------------------------------------------------------
    def compiled(self) -> "CompiledGraph":
        """The compiled form of this graph (sorted edge permutation,
        CSR adjacency, threshold prefix indices), built once and cached.

        Every artifact that used to be rebuilt per ``match`` call —
        adjacency lists, the descending edge sort, node averages —
        lives on the compiled graph, so all matchers and all thresholds
        of a sweep share one copy.
        """
        if self._compiled is None:
            from repro.graph.compiled import CompiledGraph

            self._compiled = CompiledGraph(self)
        return self._compiled

    def release_compiled(self) -> None:
        """Drop the cached compiled form (frees the derived arrays)."""
        self._compiled = None

    def left_adjacency(self) -> list[list[tuple[int, float]]]:
        """Adjacency lists for ``V1``, each sorted by decreasing weight.

        Ties are broken by ascending neighbour index so results are
        deterministic.  Delegates to the compiled CSR arrays — one sort
        shared with every other consumer, cached on the compiled graph
        (no more per-side lexsort or stale private list caches).
        """
        return self.compiled().left_adjacency()

    def right_adjacency(self) -> list[list[tuple[int, float]]]:
        """Adjacency lists for ``V2``, each sorted by decreasing weight."""
        return self.compiled().right_adjacency()

    def average_node_weights(self) -> tuple[np.ndarray, np.ndarray]:
        """Average adjacent-edge weight per node, for both sides.

        Nodes without edges get an average of ``0``.  Used by the
        Ricochet Sequential Rippling seed ordering.
        """
        left_sum = np.zeros(self.n_left)
        right_sum = np.zeros(self.n_right)
        left_deg = np.zeros(self.n_left)
        right_deg = np.zeros(self.n_right)
        np.add.at(left_sum, self.left, self.weight)
        np.add.at(right_sum, self.right, self.weight)
        np.add.at(left_deg, self.left, 1.0)
        np.add.at(right_deg, self.right, 1.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            left_avg = np.where(left_deg > 0, left_sum / left_deg, 0.0)
            right_avg = np.where(right_deg > 0, right_sum / right_deg, 0.0)
        return left_avg, right_avg

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def swap_sides(self) -> "SimilarityGraph":
        """Return the graph with ``V1`` and ``V2`` exchanged."""
        swapped = SimilarityGraph(
            self.n_right,
            self.n_left,
            self.right,
            self.left,
            self.weight,
            name=self.name,
            validate=False,
        )
        swapped.metadata = dict(self.metadata)
        return swapped

    def to_dense(self) -> np.ndarray:
        """Materialise the weight matrix (missing edges are ``0``)."""
        matrix = np.zeros((self.n_left, self.n_right))
        matrix[self.left, self.right] = self.weight
        return matrix

    def subgraph_by_edge_indices(self, indices: np.ndarray) -> "SimilarityGraph":
        """Return a graph restricted to the given edge indices."""
        sub = SimilarityGraph(
            self.n_left,
            self.n_right,
            self.left[indices],
            self.right[indices],
            self.weight[indices],
            name=self.name,
            validate=False,
        )
        sub.metadata = dict(self.metadata)
        return sub
