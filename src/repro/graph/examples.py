"""Worked example graphs from the paper.

:func:`figure1_graph` reproduces the similarity graph of Figure 1(a),
which the paper uses to illustrate the different outputs of the eight
algorithms.  The unit tests replay the paper's walk-through: with a
threshold of 0.5, CNC keeps only (A2,B2) and (A3,B4); the
weight-maximizing algorithms pair A1-B1 and A5-B3 (sum 1.2 beats the
single 0.9 edge); and the greedy family (UMC / EXC / BMC with basis V2)
pairs A5-B1, A2-B2 and A3-B4.
"""

from __future__ import annotations

from repro.graph.bipartite import SimilarityGraph

__all__ = ["figure1_graph", "FIGURE1_LEFT_LABELS", "FIGURE1_RIGHT_LABELS"]

FIGURE1_LEFT_LABELS = ("A1", "A2", "A3", "A4", "A5")
FIGURE1_RIGHT_LABELS = ("B1", "B2", "B3", "B4")


def figure1_graph() -> SimilarityGraph:
    """The similarity graph of Figure 1(a).

    Nodes: A1..A5 (left, indices 0..4) and B1..B4 (right, indices 0..3).
    Edges: A1-B1 (0.6), A5-B1 (0.9), A5-B3 (0.6), A2-B2 (0.7),
    A3-B4 (0.3 is below the walk-through threshold of 0.5 in the paper
    figure; the figure lists weights 0.9, 0.7, 0.6, 0.6, 0.3 plus the
    A3-B4 edge that survives pruning).  We follow the narrative: the
    pairs (A2,B2) and (A3,B4) survive CNC at t=0.5, so A3-B4 must be
    above 0.5; the 0.3 edge is A4's only edge and is pruned.
    """
    edges = [
        (0, 0, 0.6),  # A1 - B1
        (4, 0, 0.9),  # A5 - B1
        (4, 2, 0.6),  # A5 - B3
        (1, 1, 0.7),  # A2 - B2
        (2, 3, 0.6),  # A3 - B4
        (3, 2, 0.3),  # A4 - B3 (pruned at t=0.5)
    ]
    graph = SimilarityGraph.from_edges(5, 4, edges, name="figure1")
    graph.metadata = {
        "left_labels": list(FIGURE1_LEFT_LABELS),
        "right_labels": list(FIGURE1_RIGHT_LABELS),
    }
    return graph
