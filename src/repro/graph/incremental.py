"""Incremental updates for the compiled graph structures.

The compiled forms (:class:`~repro.graph.compiled.CompiledGraph`,
:class:`~repro.graph.unipartite.CompiledUnipartiteGraph`) were
rebuild-only: one new record invalidated every sort, CSR run and
cached threshold selection.  This module makes them *updatable* —
the substrate of the streaming layer (:mod:`repro.pipeline.streaming`)
and of the service ingest hook.

Three rules govern every mutation:

* **Delta merge, never re-sort.**  An insert sorts only the delta
  (``O(d log d)``) and merges it into the descending-weight edge
  permutation and into each CSR side by one structured-key
  ``searchsorted`` plus one ``np.insert`` (``O(m + d log m)`` — a
  memmove, not an ``O(m log m)`` sort).  Deletes mirror the same
  positions with ``np.delete``.  Because the sort keys are total
  (``(-weight, endpoints)``), the merged arrays are **bit-identical
  to a fresh compile** of the updated edge set — the property
  ``tests/graph/test_incremental.py`` proves by hypothesis.
* **Source stays consistent.**  The mutators patch the source
  graph's edge arrays (append on insert, delete on delete) and the
  ``order`` permutation alongside, so provenance features
  (:meth:`~repro.graph.compiled.EdgeSelection.original_indices`,
  :meth:`to_graph`) keep working mid-stream.
* **Selections invalidate only when crossed.**  A cached
  :class:`~repro.graph.compiled.EdgeSelection` is a prefix view of
  the descending permutation; a delta edge strictly below its
  threshold lands *after* the prefix and leaves the view untouched.
  Only selections whose threshold the delta crosses update their
  ``count`` (by the delta's own prefix length — no re-search) and
  drop their lazy per-node caches.

The unipartite mutators additionally maintain the cached GECG
triangle-incidence base (``kernel_cache["gecg_base"]``) in place:
new triangles are enumerated only around the delta edges, old
triangle edge-indices are remapped by rank, and the derived
edge-to-incidence index (``"gecg_entries"``) is dropped for lazy
rebuild.  Every other ``kernel_cache`` entry is threshold-level
derived state and is cleared.
"""

from __future__ import annotations

import numpy as np

from repro.graph.compiled import CompiledGraph
from repro.graph.selection import prefix_length
from repro.graph.unipartite import CompiledUnipartiteGraph

__all__ = [
    "add_left_nodes",
    "add_right_nodes",
    "add_uni_nodes",
    "delete_edges",
    "delete_uni_edges",
    "insert_edges",
    "insert_uni_edges",
]

_EDGE_KEY = np.dtype(
    [("w", np.float64), ("a", np.int64), ("b", np.int64)]
)


def _edge_keys(weight: np.ndarray, a: np.ndarray, b: np.ndarray):
    """Structured total-order keys for ``(-weight, a, b)`` sorting."""
    keys = np.empty(len(weight), dtype=_EDGE_KEY)
    keys["w"] = -weight
    keys["a"] = a
    keys["b"] = b
    return keys


_CSR_KEY = np.dtype(
    [("n", np.int64), ("w", np.float64), ("b", np.int64)]
)


def _csr_key_values(
    nodes: np.ndarray, weights: np.ndarray, neighbors: np.ndarray
):
    keys = np.empty(len(nodes), dtype=_CSR_KEY)
    keys["n"] = nodes
    keys["w"] = -weights
    keys["b"] = neighbors
    return keys


def _csr_keys(
    indptr: np.ndarray, weights: np.ndarray, neighbors: np.ndarray
):
    """Structured keys of a CSR laid out ``(node, -weight, neighbour)``."""
    nodes = np.repeat(
        np.arange(len(indptr) - 1, dtype=np.int64), np.diff(indptr)
    )
    return _csr_key_values(nodes, weights, neighbors), nodes


def _as_delta(
    a, b, weight
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    a = np.atleast_1d(np.asarray(a, dtype=np.int64))
    b = np.atleast_1d(np.asarray(b, dtype=np.int64))
    weight = np.atleast_1d(np.asarray(weight, dtype=np.float64))
    if not (len(a) == len(b) == len(weight)):
        raise ValueError("delta edge arrays must have equal length")
    if len(weight):
        if np.isnan(weight).any():
            raise ValueError("delta weights contain NaN")
        if weight.min() < 0.0 or weight.max() > 1.0 + 1e-9:
            raise ValueError("delta weights must lie in [0, 1]")
    return a, b, weight


def _csr_insert(
    indptr: np.ndarray,
    neighbors: np.ndarray,
    weights: np.ndarray,
    d_node: np.ndarray,
    d_nbr: np.ndarray,
    d_w: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge delta entries into one CSR side, preserving the
    ``(node, -weight, neighbour)`` run order."""
    order = np.lexsort((d_nbr, -d_w, d_node))
    d_node, d_nbr, d_w = d_node[order], d_nbr[order], d_w[order]
    keys, _ = _csr_keys(indptr, weights, neighbors)
    positions = np.searchsorted(
        keys, _csr_key_values(d_node, d_w, d_nbr), side="right"
    )
    new_neighbors = np.insert(neighbors, positions, d_nbr)
    new_weights = np.insert(weights, positions, d_w)
    new_indptr = indptr.copy()
    new_indptr[1:] += np.cumsum(
        np.bincount(d_node, minlength=len(indptr) - 1)
    )
    return new_indptr, new_neighbors, new_weights


def _csr_delete(
    indptr: np.ndarray,
    neighbors: np.ndarray,
    weights: np.ndarray,
    d_node: np.ndarray,
    d_nbr: np.ndarray,
    d_w: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    keys, _ = _csr_keys(indptr, weights, neighbors)
    positions = np.searchsorted(
        keys, _csr_key_values(d_node, d_w, d_nbr), side="left"
    )
    if (
        positions.max(initial=-1) >= len(neighbors)
        or not np.array_equal(neighbors[positions], d_nbr)
        or not np.array_equal(weights[positions], d_w)
    ):
        raise ValueError("edge to delete not present in CSR")
    new_neighbors = np.delete(neighbors, positions)
    new_weights = np.delete(weights, positions)
    new_indptr = indptr.copy()
    new_indptr[1:] -= np.cumsum(
        np.bincount(d_node, minlength=len(indptr) - 1)
    )
    return new_indptr, new_neighbors, new_weights


def _delta_prefix(weights_desc: np.ndarray, threshold: float,
                  inclusive: bool) -> int:
    """How many delta edges a ``(threshold, inclusive)`` view admits."""
    ascending = np.ascontiguousarray(weights_desc[::-1])
    return prefix_length(ascending, threshold, inclusive)


def _update_selections(
    selections: dict, weights_desc: np.ndarray, sign: int,
    lazy_fields: tuple[str, ...],
) -> None:
    """Patch cached selections in place: counts move by the delta's own
    prefix length; lazy caches drop only when the delta crossed."""
    for (threshold, inclusive), selection in selections.items():
        passing = _delta_prefix(weights_desc, threshold, inclusive)
        if passing:
            selection.count += sign * passing
            for name in lazy_fields:
                setattr(selection, name, None)


_BI_SELECTION_LAZY = ("_left_counts", "_right_counts")
_UNI_SELECTION_LAZY = ("_sparse", "_bitsets", "_component_labels")
_BI_DERIVED = (
    "_left_pairs", "_right_pairs", "_left_lists", "_right_lists",
    "_merged_lists", "_averages", "_ripple_queue",
)


def _reset_bipartite_derived(compiled: CompiledGraph) -> None:
    for name in _BI_DERIVED:
        setattr(compiled, name, None)
    compiled.kernel_cache.clear()


# ======================================================================
# Bipartite CompiledGraph
# ======================================================================
def insert_edges(
    compiled: CompiledGraph, left, right, weight
) -> None:
    """Insert edges into a compiled bipartite graph, in place.

    The delta is merged into the descending-weight permutation and
    both CSR sides without re-sorting; the source graph's edge arrays
    gain the delta (appended in caller order) and ``order`` is patched
    so provenance indices stay exact.  Bit-identical to recompiling
    the grown graph from scratch.
    """
    d_left, d_right, d_weight = _as_delta(left, right, weight)
    if len(d_left) == 0:
        return
    graph = compiled.source
    if len(d_left) and (
        d_left.min() < 0 or d_left.max() >= compiled.n_left
        or d_right.min() < 0 or d_right.max() >= compiled.n_right
    ):
        raise ValueError("delta endpoint out of range")

    src_base = graph.n_edges
    order = np.lexsort((d_right, d_left, -d_weight))
    sl, sr, sw = d_left[order], d_right[order], d_weight[order]
    keys = _edge_keys(
        compiled.weight_sorted, compiled.left_sorted, compiled.right_sorted
    )
    positions = np.searchsorted(
        keys, _edge_keys(sw, sl, sr), side="right"
    )
    compiled.left_sorted = np.insert(compiled.left_sorted, positions, sl)
    compiled.right_sorted = np.insert(compiled.right_sorted, positions, sr)
    compiled.weight_sorted = np.insert(
        compiled.weight_sorted, positions, sw
    )
    compiled.weight_ascending = np.ascontiguousarray(
        compiled.weight_sorted[::-1]
    )
    compiled.order = np.insert(compiled.order, positions, src_base + order)

    compiled.left_indptr, compiled.left_neighbors, compiled.left_weights = (
        _csr_insert(
            compiled.left_indptr, compiled.left_neighbors,
            compiled.left_weights, d_left, d_right, d_weight,
        )
    )
    (
        compiled.right_indptr,
        compiled.right_neighbors,
        compiled.right_weights,
    ) = _csr_insert(
        compiled.right_indptr, compiled.right_neighbors,
        compiled.right_weights, d_right, d_left, d_weight,
    )

    graph.left = np.concatenate([graph.left, d_left])
    graph.right = np.concatenate([graph.right, d_right])
    graph.weight = np.concatenate([graph.weight, d_weight])
    compiled.n_edges = graph.n_edges

    _update_selections(
        compiled._selections, sw, +1, _BI_SELECTION_LAZY
    )
    _reset_bipartite_derived(compiled)


def _resolve_bipartite_weights(
    compiled: CompiledGraph, d_left: np.ndarray, d_right: np.ndarray
) -> np.ndarray:
    """Look up each ``(left, right)`` edge's weight via its CSR run."""
    weights = np.empty(len(d_left), dtype=np.float64)
    for k, (node, nbr) in enumerate(
        zip(d_left.tolist(), d_right.tolist())
    ):
        start, stop = (
            compiled.left_indptr[node], compiled.left_indptr[node + 1]
        )
        run = compiled.left_neighbors[start:stop]
        hits = np.nonzero(run == nbr)[0]
        if len(hits) == 0:
            raise ValueError(f"edge ({node}, {nbr}) not in graph")
        weights[k] = compiled.left_weights[start + hits[0]]
    return weights


def delete_edges(
    compiled: CompiledGraph, left, right, weight=None
) -> None:
    """Delete edges from a compiled bipartite graph, in place.

    ``weight`` may be omitted; each edge's weight is then resolved
    through its left-CSR run (duplicates delete their highest-weight
    occurrence first).  Mirrors :func:`insert_edges` exactly, so an
    insert-then-delete round-trip is bit-identical to a fresh compile.
    """
    if weight is None:
        d_left = np.atleast_1d(np.asarray(left, dtype=np.int64))
        d_right = np.atleast_1d(np.asarray(right, dtype=np.int64))
        d_weight = _resolve_bipartite_weights(compiled, d_left, d_right)
    else:
        d_left, d_right, d_weight = _as_delta(left, right, weight)
    if len(d_left) == 0:
        return
    delta_keys = _edge_keys(d_weight, d_left, d_right)
    if len(np.unique(delta_keys)) != len(delta_keys):
        # A repeated (left, right, weight) triple would resolve to one
        # searchsorted position and silently delete a single edge.
        raise ValueError("duplicate edges in delete delta")
    graph = compiled.source

    order = np.lexsort((d_right, d_left, -d_weight))
    sl, sr, sw = d_left[order], d_right[order], d_weight[order]
    keys = _edge_keys(
        compiled.weight_sorted, compiled.left_sorted, compiled.right_sorted
    )
    positions = np.searchsorted(
        keys, _edge_keys(sw, sl, sr), side="left"
    )
    if (
        positions.max(initial=-1) >= compiled.n_edges
        or not np.array_equal(compiled.left_sorted[positions], sl)
        or not np.array_equal(compiled.right_sorted[positions], sr)
        or not np.array_equal(compiled.weight_sorted[positions], sw)
    ):
        raise ValueError("edge to delete not present in graph")
    src_indices = compiled.order[positions]

    compiled.left_sorted = np.delete(compiled.left_sorted, positions)
    compiled.right_sorted = np.delete(compiled.right_sorted, positions)
    compiled.weight_sorted = np.delete(compiled.weight_sorted, positions)
    compiled.weight_ascending = np.ascontiguousarray(
        compiled.weight_sorted[::-1]
    )
    # Remap provenance: drop the deleted entries, then shift survivors
    # down by the number of deleted source rows below them.
    kept = np.delete(compiled.order, positions)
    removed = np.sort(src_indices)
    compiled.order = kept - np.searchsorted(removed, kept, side="left")

    compiled.left_indptr, compiled.left_neighbors, compiled.left_weights = (
        _csr_delete(
            compiled.left_indptr, compiled.left_neighbors,
            compiled.left_weights, sl, sr, sw,
        )
    )
    (
        compiled.right_indptr,
        compiled.right_neighbors,
        compiled.right_weights,
    ) = _csr_delete(
        compiled.right_indptr, compiled.right_neighbors,
        compiled.right_weights, sr, sl, sw,
    )

    graph.left = np.delete(graph.left, removed)
    graph.right = np.delete(graph.right, removed)
    graph.weight = np.delete(graph.weight, removed)
    compiled.n_edges = graph.n_edges

    _update_selections(
        compiled._selections, sw, -1, _BI_SELECTION_LAZY
    )
    _reset_bipartite_derived(compiled)


def _grow_indptr(indptr: np.ndarray, count: int) -> np.ndarray:
    return np.concatenate(
        [indptr, np.full(count, indptr[-1], dtype=indptr.dtype)]
    )


def _reset_bipartite_selection_lazy(compiled: CompiledGraph) -> None:
    # Per-node lazy caches are node-count-shaped; counts stay valid
    # (isolated nodes admit no edges) but the lists must re-derive.
    for selection in compiled._selections.values():
        for name in _BI_SELECTION_LAZY:
            setattr(selection, name, None)


def add_left_nodes(compiled: CompiledGraph, count: int) -> None:
    """Grow the left side by ``count`` isolated nodes, in place."""
    if count < 0:
        raise ValueError("node count must be non-negative")
    compiled.n_left += count
    compiled.source.n_left += count
    compiled.left_indptr = _grow_indptr(compiled.left_indptr, count)
    _reset_bipartite_selection_lazy(compiled)
    _reset_bipartite_derived(compiled)


def add_right_nodes(compiled: CompiledGraph, count: int) -> None:
    """Grow the right side by ``count`` isolated nodes, in place."""
    if count < 0:
        raise ValueError("node count must be non-negative")
    compiled.n_right += count
    compiled.source.n_right += count
    compiled.right_indptr = _grow_indptr(compiled.right_indptr, count)
    _reset_bipartite_selection_lazy(compiled)
    _reset_bipartite_derived(compiled)


# ======================================================================
# Unipartite CompiledUnipartiteGraph
# ======================================================================
def _canonical_uni_delta(u, v, weight):
    d_u, d_v, d_w = _as_delta(u, v, weight)
    lo = np.minimum(d_u, d_v)
    hi = np.maximum(d_u, d_v)
    if len(lo) and bool((lo == hi).any()):
        raise ValueError("self loops are not allowed")
    return lo, hi, d_w


def _uni_edge_exists(
    compiled: CompiledUnipartiteGraph, u: int, v: int
) -> bool:
    start, stop = compiled.indptr[u], compiled.indptr[u + 1]
    return bool((compiled.neighbors[start:stop] == v).any())


def insert_uni_edges(
    compiled: CompiledUnipartiteGraph, u, v, weight
) -> None:
    """Insert edges into a compiled unipartite graph, in place.

    Endpoints are canonicalized to ``u < v``; duplicates of existing
    edges are rejected (the graph's invariant).  The delta merges into
    the descending-weight permutation and the symmetric CSR, cached
    selections move by their crossing counts, and a cached GECG
    triangle base is maintained incrementally — never re-enumerated.
    """
    d_u, d_v, d_w = _canonical_uni_delta(u, v, weight)
    if len(d_u) == 0:
        return
    graph = compiled.source
    if d_u.min() < 0 or d_v.max() >= compiled.n_nodes:
        raise ValueError("delta endpoint out of range")
    for a, b in zip(d_u.tolist(), d_v.tolist()):
        if _uni_edge_exists(compiled, a, b):
            raise ValueError(f"edge ({a}, {b}) already in graph")
    keys = d_u * np.int64(max(compiled.n_nodes, 1)) + d_v
    if len(np.unique(keys)) != len(keys):
        raise ValueError("duplicate edges in delta")

    src_base = graph.n_edges
    order = np.lexsort((d_v, d_u, -d_w))
    su, sv, sw = d_u[order], d_v[order], d_w[order]
    existing = _edge_keys(
        compiled.weight_sorted, compiled.u_sorted, compiled.v_sorted
    )
    positions = np.searchsorted(
        existing, _edge_keys(sw, su, sv), side="right"
    )
    compiled.u_sorted = np.insert(compiled.u_sorted, positions, su)
    compiled.v_sorted = np.insert(compiled.v_sorted, positions, sv)
    compiled.weight_sorted = np.insert(
        compiled.weight_sorted, positions, sw
    )
    compiled.weight_ascending = np.ascontiguousarray(
        compiled.weight_sorted[::-1]
    )
    compiled.order = np.insert(compiled.order, positions, src_base + order)

    # Symmetric CSR: every delta edge lands under both endpoints.
    compiled.indptr, compiled.neighbors, compiled.neighbor_weights = (
        _csr_insert(
            compiled.indptr,
            compiled.neighbors,
            compiled.neighbor_weights,
            np.concatenate([d_u, d_v]),
            np.concatenate([d_v, d_u]),
            np.concatenate([d_w, d_w]),
        )
    )

    graph.u = np.concatenate([graph.u, d_u])
    graph.v = np.concatenate([graph.v, d_v])
    graph.weight = np.concatenate([graph.weight, d_w])
    compiled.n_edges = graph.n_edges

    _update_selections(
        compiled._selections, sw, +1, _UNI_SELECTION_LAZY
    )
    _patch_gecg_base(compiled, d_u, d_v, d_w, inserted=True)


def _resolve_uni_weights(
    compiled: CompiledUnipartiteGraph, d_u: np.ndarray, d_v: np.ndarray
) -> np.ndarray:
    weights = np.empty(len(d_u), dtype=np.float64)
    for k, (a, b) in enumerate(zip(d_u.tolist(), d_v.tolist())):
        start, stop = compiled.indptr[a], compiled.indptr[a + 1]
        hits = np.nonzero(compiled.neighbors[start:stop] == b)[0]
        if len(hits) == 0:
            raise ValueError(f"edge ({a}, {b}) not in graph")
        weights[k] = compiled.neighbor_weights[start + hits[0]]
    return weights


def delete_uni_edges(
    compiled: CompiledUnipartiteGraph, u, v, weight=None
) -> None:
    """Delete edges from a compiled unipartite graph, in place."""
    if weight is None:
        raw_u = np.atleast_1d(np.asarray(u, dtype=np.int64))
        raw_v = np.atleast_1d(np.asarray(v, dtype=np.int64))
        d_u = np.minimum(raw_u, raw_v)
        d_v = np.maximum(raw_u, raw_v)
        d_w = _resolve_uni_weights(compiled, d_u, d_v)
    else:
        d_u, d_v, d_w = _canonical_uni_delta(u, v, weight)
    if len(d_u) == 0:
        return
    pair_keys = d_u * np.int64(max(compiled.n_nodes, 1)) + d_v
    if len(np.unique(pair_keys)) != len(pair_keys):
        raise ValueError("duplicate edges in delete delta")
    graph = compiled.source

    order = np.lexsort((d_v, d_u, -d_w))
    su, sv, sw = d_u[order], d_v[order], d_w[order]
    existing = _edge_keys(
        compiled.weight_sorted, compiled.u_sorted, compiled.v_sorted
    )
    positions = np.searchsorted(
        existing, _edge_keys(sw, su, sv), side="left"
    )
    if (
        positions.max(initial=-1) >= compiled.n_edges
        or not np.array_equal(compiled.u_sorted[positions], su)
        or not np.array_equal(compiled.v_sorted[positions], sv)
        or not np.array_equal(compiled.weight_sorted[positions], sw)
    ):
        raise ValueError("edge to delete not present in graph")
    src_indices = compiled.order[positions]

    compiled.u_sorted = np.delete(compiled.u_sorted, positions)
    compiled.v_sorted = np.delete(compiled.v_sorted, positions)
    compiled.weight_sorted = np.delete(compiled.weight_sorted, positions)
    compiled.weight_ascending = np.ascontiguousarray(
        compiled.weight_sorted[::-1]
    )
    kept = np.delete(compiled.order, positions)
    removed = np.sort(src_indices)
    compiled.order = kept - np.searchsorted(removed, kept, side="left")

    compiled.indptr, compiled.neighbors, compiled.neighbor_weights = (
        _csr_delete(
            compiled.indptr,
            compiled.neighbors,
            compiled.neighbor_weights,
            np.concatenate([su, sv]),
            np.concatenate([sv, su]),
            np.concatenate([sw, sw]),
        )
    )

    graph.u = np.delete(graph.u, removed)
    graph.v = np.delete(graph.v, removed)
    graph.weight = np.delete(graph.weight, removed)
    compiled.n_edges = graph.n_edges

    _update_selections(
        compiled._selections, sw, -1, _UNI_SELECTION_LAZY
    )
    _patch_gecg_base(compiled, d_u, d_v, d_w, inserted=False)


def add_uni_nodes(compiled: CompiledUnipartiteGraph, count: int) -> None:
    """Grow the node set by ``count`` isolated nodes, in place."""
    if count < 0:
        raise ValueError("node count must be non-negative")
    compiled.n_nodes += count
    compiled.source.n_nodes += count
    compiled.indptr = _grow_indptr(compiled.indptr, count)
    # Node-count-shaped lazy views (sparse matrices, bitsets,
    # component labels) must re-derive at the new size.
    for selection in compiled._selections.values():
        for name in _UNI_SELECTION_LAZY:
            setattr(selection, name, None)
    # The triangle base is edge-indexed and survives node growth;
    # everything else in the kernel cache is cleared defensively.
    base = compiled.kernel_cache.pop("gecg_base", None)
    compiled.kernel_cache.clear()
    if base is not None:
        compiled.kernel_cache["gecg_base"] = base


# ======================================================================
# GECG triangle-base maintenance
# ======================================================================
def _patch_gecg_base(
    compiled: CompiledUnipartiteGraph,
    d_u: np.ndarray,
    d_v: np.ndarray,
    d_w: np.ndarray,
    inserted: bool,
) -> None:
    """Keep ``kernel_cache['gecg_base']`` exact across a delta.

    The base holds every triangle of the graph as three parallel
    edge-index arrays over the canonical ascending ``(u, v)`` edge
    order.  An insert shifts old indices by their rank among the
    delta's insertion points and enumerates *only* the triangles
    containing a delta edge (common CSR neighbours of its endpoints);
    a delete drops the incidences touching a removed edge and shifts
    the survivors down.  Gains are integer triangle counts, so the
    patched base reproduces the from-scratch enumeration exactly.
    All other kernel-cache entries are threshold-level state and are
    cleared; the derived edge-to-incidence index rebuilds lazily.
    """
    base = compiled.kernel_cache.get("gecg_base")
    compiled.kernel_cache.clear()
    if base is None:
        return
    edge_u, edge_v, weights, edges_at, other_a, other_b = base

    # Ascending-(u, v) delta order and its positions among the edges.
    order = np.lexsort((d_v, d_u))
    su, sv, sw = d_u[order], d_v[order], d_w[order]
    existing = _edge_keys(
        np.zeros(len(edge_u)), edge_u, edge_v
    )
    delta_keys = _edge_keys(np.zeros(len(su)), su, sv)

    if inserted:
        positions = np.searchsorted(existing, delta_keys, side="left")
        shift = np.searchsorted(positions, edges_at, side="right")
        edges_at = edges_at + shift
        other_a = other_a + np.searchsorted(
            positions, other_a, side="right"
        )
        other_b = other_b + np.searchsorted(
            positions, other_b, side="right"
        )
        edge_u = np.insert(edge_u, positions, su)
        edge_v = np.insert(edge_v, positions, sv)
        weights = np.insert(weights, positions, sw)

        triangles: set[tuple[int, int, int]] = set()
        for a, b in zip(su.tolist(), sv.tolist()):
            common = np.intersect1d(
                _uni_neighbors(compiled, a), _uni_neighbors(compiled, b)
            )
            for w in common.tolist():
                triangles.add(tuple(sorted((a, b, w))))
        if triangles:
            triples = sorted(triangles)
            lookup = _edge_keys(
                np.zeros(len(edge_u)), edge_u, edge_v
            )
            e1 = _find_edges(lookup, [(x, y) for x, y, _ in triples])
            e2 = _find_edges(lookup, [(x, z) for x, _, z in triples])
            e3 = _find_edges(lookup, [(y, z) for _, y, z in triples])
            edges_at = np.concatenate([edges_at, e1, e2, e3])
            other_a = np.concatenate([other_a, e2, e1, e1])
            other_b = np.concatenate([other_b, e3, e3, e2])
    else:
        positions = np.searchsorted(existing, delta_keys, side="left")
        gone = np.zeros(len(edge_u), dtype=bool)
        gone[positions] = True
        keep = ~(gone[edges_at] | gone[other_a] | gone[other_b])
        edges_at = edges_at[keep]
        other_a = other_a[keep]
        other_b = other_b[keep]
        edges_at = edges_at - np.searchsorted(
            positions, edges_at, side="left"
        )
        other_a = other_a - np.searchsorted(
            positions, other_a, side="left"
        )
        other_b = other_b - np.searchsorted(
            positions, other_b, side="left"
        )
        edge_u = np.delete(edge_u, positions)
        edge_v = np.delete(edge_v, positions)
        weights = np.delete(weights, positions)

    compiled.kernel_cache["gecg_base"] = (
        edge_u, edge_v, weights, edges_at, other_a, other_b
    )


def _uni_neighbors(
    compiled: CompiledUnipartiteGraph, node: int
) -> np.ndarray:
    start, stop = compiled.indptr[node], compiled.indptr[node + 1]
    return compiled.neighbors[start:stop]


def _find_edges(lookup, pairs) -> np.ndarray:
    a = np.asarray([p[0] for p in pairs], dtype=np.int64)
    b = np.asarray([p[1] for p in pairs], dtype=np.int64)
    query = _edge_keys(np.zeros(len(a)), a, b)
    found = np.searchsorted(lookup, query, side="left")
    return found
