"""Edge-weight normalization.

The paper applies min-max normalization to the edge weights of *all*
similarity graphs "regardless of the similarity function that produced
them, to ensure that they are restricted to [0, 1]" (Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import SimilarityGraph

__all__ = ["min_max_normalize", "min_max_normalize_array"]


def min_max_normalize_array(values: np.ndarray) -> np.ndarray:
    """Min-max normalize an array into ``[0, 1]``.

    A constant array maps to all ones (any constant non-zero similarity
    carries no ordering information, and mapping to 1 preserves the
    paper's convention that retained edges have similarity above 0).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values.copy()
    low = float(values.min())
    high = float(values.max())
    if high == low:
        return np.ones_like(values)
    return (values - low) / (high - low)


def min_max_normalize(graph: SimilarityGraph) -> SimilarityGraph:
    """Return a copy of ``graph`` with min-max normalized weights."""
    normalized = SimilarityGraph(
        graph.n_left,
        graph.n_right,
        graph.left,
        graph.right,
        min_max_normalize_array(graph.weight),
        name=graph.name,
        validate=False,
    )
    normalized.metadata = dict(graph.metadata)
    return normalized
