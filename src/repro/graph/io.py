"""(De)serialization of similarity graphs.

The experiment workbench persists the generated graph corpus to disk so
that benchmark runs re-use it instead of recomputing all-pairs
similarities.  The format is a compressed ``.npz`` bundle of the edge
arrays plus a small JSON header for the metadata.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graph.bipartite import SimilarityGraph
from repro.graph.unipartite import UnipartiteGraph

__all__ = [
    "save_graph",
    "load_graph",
    "save_unipartite_graph",
    "load_unipartite_graph",
]

_FORMAT_VERSION = 1
_UNIPARTITE_FORMAT_VERSION = 1


def save_graph(graph: SimilarityGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` as a compressed ``.npz`` bundle."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "version": _FORMAT_VERSION,
        "n_left": graph.n_left,
        "n_right": graph.n_right,
        "name": graph.name,
        "metadata": graph.metadata,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        left=graph.left,
        right=graph.right,
        weight=graph.weight,
    )


def load_graph(path: str | Path) -> SimilarityGraph:
    """Load a graph previously written by :func:`save_graph`."""
    with np.load(Path(path), allow_pickle=False) as bundle:
        header = json.loads(bytes(bundle["header"]).decode("utf-8"))
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph file version: {header.get('version')}"
            )
        graph = SimilarityGraph(
            header["n_left"],
            header["n_right"],
            bundle["left"],
            bundle["right"],
            bundle["weight"],
            name=header.get("name", ""),
            validate=False,
        )
        graph.metadata = dict(header.get("metadata", {}))
    return graph


def save_unipartite_graph(
    graph: UnipartiteGraph, path: str | Path
) -> None:
    """Write a Dirty-ER graph as a compressed ``.npz`` bundle.

    Same layout as :func:`save_graph` with a distinct ``kind`` marker,
    so the two formats can never be confused when loading.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "version": _UNIPARTITE_FORMAT_VERSION,
        "kind": "unipartite",
        "n_nodes": graph.n_nodes,
        "name": graph.name,
        "metadata": graph.metadata,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        u=graph.u,
        v=graph.v,
        weight=graph.weight,
    )


def load_unipartite_graph(path: str | Path) -> UnipartiteGraph:
    """Load a graph previously written by :func:`save_unipartite_graph`."""
    with np.load(Path(path), allow_pickle=False) as bundle:
        header = json.loads(bytes(bundle["header"]).decode("utf-8"))
        if (
            header.get("kind") != "unipartite"
            or header.get("version") != _UNIPARTITE_FORMAT_VERSION
        ):
            raise ValueError(
                "not a supported unipartite graph file: "
                f"kind={header.get('kind')!r} "
                f"version={header.get('version')!r}"
            )
        graph = UnipartiteGraph(
            header["n_nodes"],
            bundle["u"],
            bundle["v"],
            bundle["weight"],
            name=header.get("name", ""),
            validate=False,
        )
        graph.metadata = dict(header.get("metadata", {}))
    return graph
