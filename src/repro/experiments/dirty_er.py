"""Dirty-ER experiment runner: clustering sweeps over the self-join corpus.

The Dirty-ER counterpart of :mod:`repro.experiments.runner`: for every
self-join graph of the dirty corpus
(:func:`repro.pipeline.workbench.generate_dirty_corpus`), every
clustering algorithm (CC, MCC, EMCC, GECG) runs a full threshold sweep
on the compiled unipartite engine — the graph is compiled once per
record and all algorithms and thresholds share its cached selections —
scored at cluster level through one shared
:class:`~repro.evaluation.metrics.GroundTruthIndex` per graph.

With ``workers > 1`` whole graphs are distributed over a process pool
(one task and one graph pickle per graph, all algorithm sweeps inside
the worker), exactly like :func:`~repro.experiments.runner.run_matching_sweeps`;
results are assembled on the deterministic ``(record index, algorithm
order)`` grid, so the output is invariant under the worker count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.evaluation.metrics import GroundTruthIndex
from repro.evaluation.sweep import (
    DEFAULT_THRESHOLD_GRID,
    SweepResult,
    dirty_threshold_sweep,
)
from repro.experiments.runner import GraphRunResult
from repro.extensions.dirty_er import (
    DIRTY_ALGORITHM_CODES,
    create_clusterer,
)
from repro.graph.unipartite import UnipartiteGraph
from repro.pipeline.workbench import DirtyGraphRecord

__all__ = ["run_dirty_er_sweeps"]


def run_dirty_er_sweeps(
    records: list[DirtyGraphRecord],
    codes: tuple[str, ...] = DIRTY_ALGORITHM_CODES,
    grid: tuple[float, ...] = DEFAULT_THRESHOLD_GRID,
    progress: bool = False,
    workers: int = 1,
) -> list[GraphRunResult]:
    """Threshold-sweep every clustering algorithm over every record.

    Returns one :class:`~repro.experiments.runner.GraphRunResult` per
    record (``normalized_size`` is the unipartite pair-space density).
    The unit of parallel work is one graph; a single-record corpus
    falls back to one task per algorithm so a pool still has work.
    Results are identical for any ``workers`` value.
    """
    if workers > 1 and len(records) == 1 and len(codes) > 1:
        record = records[0]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _sweep_dirty_graph,
                    record.graph,
                    record.ground_truth,
                    (code,),
                    grid,
                )
                for code in codes
            ]
            merged: dict[str, SweepResult] = {}
            for future in futures:
                merged.update(future.result())
        sweeps = {code: merged[code] for code in codes}
        if progress:
            _print_progress(record, sweeps)
        all_sweeps = [sweeps]
    elif workers > 1 and len(records) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _sweep_dirty_graph,
                    record.graph,
                    record.ground_truth,
                    codes,
                    grid,
                ): index
                for index, record in enumerate(records)
            }
            by_index: dict[int, dict[str, SweepResult]] = {}
            for future in as_completed(futures):
                index = futures[future]
                by_index[index] = future.result()
                if progress:
                    _print_progress(records[index], by_index[index])
        all_sweeps = [by_index[index] for index in range(len(records))]
    else:
        all_sweeps = []
        for record in records:
            truth_index = GroundTruthIndex(record.ground_truth)
            sweeps = {
                code: dirty_threshold_sweep(
                    create_clusterer(code),
                    record.graph,
                    record.ground_truth,
                    grid,
                    truth_index=truth_index,
                )
                for code in codes
            }
            record.graph.release_compiled()
            if progress:
                _print_progress(record, sweeps)
            all_sweeps.append(sweeps)

    return [
        GraphRunResult(
            dataset=record.dataset,
            family=record.family,
            function=record.function,
            category=record.category,
            n_edges=record.n_edges,
            normalized_size=record.graph.density,
            sweeps=sweeps,
        )
        for record, sweeps in zip(records, all_sweeps)
    ]


def _sweep_dirty_graph(
    graph: UnipartiteGraph,
    ground_truth: set[tuple[int, int]],
    codes: tuple[str, ...],
    grid: tuple[float, ...],
) -> dict[str, SweepResult]:
    """One process-pool work unit: all clustering sweeps of one graph."""
    truth_index = GroundTruthIndex(ground_truth)
    return {
        code: dirty_threshold_sweep(
            create_clusterer(code),
            graph,
            ground_truth,
            grid,
            truth_index=truth_index,
        )
        for code in codes
    }


def _print_progress(
    record: DirtyGraphRecord, sweeps: dict[str, SweepResult]
) -> None:
    best = max(sweeps.values(), key=lambda s: s.best_scores.f_measure)
    print(
        f"[dirty-er] {record.dataset} {record.function}: top F1 "
        f"{best.best_scores.f_measure:.3f} ({best.algorithm})"
    )
