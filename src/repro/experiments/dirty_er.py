"""Dirty-ER experiment runner: clustering sweeps over the self-join corpus.

The Dirty-ER counterpart of :mod:`repro.experiments.runner`: for every
self-join graph of the dirty corpus
(:func:`repro.pipeline.workbench.generate_dirty_corpus`), every
clustering algorithm (CC, MCC, EMCC, GECG) runs a full threshold sweep
on the compiled unipartite engine — the graph is compiled once per
record and all algorithms and thresholds share its cached selections —
scored at cluster level through one shared
:class:`~repro.evaluation.metrics.GroundTruthIndex` per graph.

With ``workers > 1`` whole graphs are distributed over a process pool
(one task and one graph pickle per graph, all algorithm sweeps inside
the worker), exactly like :func:`~repro.experiments.runner.run_matching_sweeps`;
results are assembled on the deterministic ``(record index, algorithm
order)`` grid, so the output is invariant under the worker count.
Execution runs on the shared fault-tolerant runner
(:mod:`repro.pipeline.resilience`): cells retry with backoff, a broken
pool respawns, permanent failures raise a
:class:`~repro.pipeline.resilience.ResilienceError` naming the failed
graphs, and an attached :class:`~repro.pipeline.resilience.RunJournal`
makes interrupted runs resumable bit-identically.
"""

from __future__ import annotations

from repro.evaluation.metrics import GroundTruthIndex
from repro.evaluation.sweep import (
    DEFAULT_THRESHOLD_GRID,
    SweepResult,
    dirty_threshold_sweep,
)
from repro.experiments.runner import SWEEP_JOURNAL_CODEC, GraphRunResult
from repro.extensions.dirty_er import (
    DIRTY_ALGORITHM_CODES,
    create_clusterer,
)
from repro.graph.unipartite import UnipartiteGraph
from repro.pipeline.resilience import (
    ResilientPool,
    RetryPolicy,
    RunJournal,
    Task,
)
from repro.pipeline.workbench import DirtyGraphRecord

__all__ = ["run_dirty_er_sweeps"]


def run_dirty_er_sweeps(
    records: list[DirtyGraphRecord],
    codes: tuple[str, ...] = DIRTY_ALGORITHM_CODES,
    grid: tuple[float, ...] = DEFAULT_THRESHOLD_GRID,
    progress: bool = False,
    workers: int = 1,
    policy: RetryPolicy | None = None,
    journal: RunJournal | None = None,
) -> list[GraphRunResult]:
    """Threshold-sweep every clustering algorithm over every record.

    Returns one :class:`~repro.experiments.runner.GraphRunResult` per
    record (``normalized_size`` is the unipartite pair-space density).
    The unit of parallel work is one graph; a single-record corpus
    falls back to one task per algorithm so a pool still has work.
    Results are identical for any ``workers`` value, any retry
    interleaving and any resume point (``journal``).
    """
    code_tag = "-".join(codes)
    single = workers > 1 and len(records) == 1 and len(codes) > 1
    if single:
        record = records[0]
        tasks = [
            Task(
                key=f"000:{record.dataset}:{record.function}:{code}",
                fn=_sweep_dirty_graph,
                args=(record.graph, record.ground_truth, (code,), grid),
            )
            for code in codes
        ]
        record_by_key = {}
    else:
        tasks = [
            Task(
                key=f"{index:03d}:{record.dataset}"
                f":{record.function}:{code_tag}",
                fn=_sweep_dirty_graph,
                args=(record.graph, record.ground_truth, codes, grid),
            )
            for index, record in enumerate(records)
        ]
        record_by_key = {
            task.key: record for task, record in zip(tasks, records)
        }

    on_result = None
    if progress and not single:

        def on_result(key, sweeps):
            _print_progress(record_by_key[key], sweeps)

    runner = ResilientPool(
        workers,
        kind="process",
        policy=policy,
        journal=journal,
        codec=SWEEP_JOURNAL_CODEC,
        label="dirty-er",
    )
    results_by_key = runner.run(tasks, on_result=on_result)

    if single:
        merged: dict[str, SweepResult] = {}
        for task in tasks:
            merged.update(results_by_key[task.key])
        sweeps = {code: merged[code] for code in codes}
        if progress:
            _print_progress(records[0], sweeps)
        all_sweeps = [sweeps]
    else:
        all_sweeps = [results_by_key[task.key] for task in tasks]

    return [
        GraphRunResult(
            dataset=record.dataset,
            family=record.family,
            function=record.function,
            category=record.category,
            n_edges=record.n_edges,
            normalized_size=record.graph.density,
            sweeps=sweeps,
        )
        for record, sweeps in zip(records, all_sweeps)
    ]


def _sweep_dirty_graph(
    graph: UnipartiteGraph,
    ground_truth: set[tuple[int, int]],
    codes: tuple[str, ...],
    grid: tuple[float, ...],
) -> dict[str, SweepResult]:
    """One process-pool work unit: all clustering sweeps of one graph."""
    truth_index = GroundTruthIndex(ground_truth)
    sweeps = {
        code: dirty_threshold_sweep(
            create_clusterer(code),
            graph,
            ground_truth,
            grid,
            truth_index=truth_index,
        )
        for code in codes
    }
    # Release the compiled selections after the sweep (meaningful in
    # the serial inline path, where the graph is the caller's object).
    graph.release_compiled()
    return sweeps


def _print_progress(
    record: DirtyGraphRecord, sweeps: dict[str, SweepResult]
) -> None:
    best = max(sweeps.values(), key=lambda s: s.best_scores.f_measure)
    print(
        f"[dirty-er] {record.dataset} {record.function}: top F1 "
        f"{best.best_scores.f_measure:.3f} ({best.algorithm})"
    )
