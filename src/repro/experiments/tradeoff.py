"""F-measure / runtime trade-off analysis: Figures 5 and 10.

One point per (algorithm, input family): the macro-average best F1
against the macro-average runtime over the graphs of one dataset —
the paper's scatter diagrams identifying the dominating combinations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import GraphRunResult
from repro.matching.registry import PAPER_ALGORITHM_CODES

__all__ = ["TradeoffPoint", "tradeoff_points", "dominating_points"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One scatter point of Figure 5/10."""

    algorithm: str
    family: str
    dataset: str
    mean_f1: float
    mean_seconds: float
    n_graphs: int

    def dominates(self, other: "TradeoffPoint") -> bool:
        """Pareto dominance: at least as good on both axes, better on one."""
        if self.mean_f1 < other.mean_f1:
            return False
        if self.mean_seconds > other.mean_seconds:
            return False
        return (
            self.mean_f1 > other.mean_f1
            or self.mean_seconds < other.mean_seconds
        )


def tradeoff_points(
    results: list[GraphRunResult],
    dataset: str,
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
) -> list[TradeoffPoint]:
    """All (algorithm, family) points for ``dataset``."""
    points: list[TradeoffPoint] = []
    families = sorted(
        {r.family for r in results if r.dataset == dataset}
    )
    for family in families:
        group = [
            r
            for r in results
            if r.dataset == dataset and r.family == family
        ]
        if not group:
            continue
        for code in codes:
            f1 = np.array([r.best_f1(code) for r in group])
            seconds = np.array(
                [r.sweeps[code].best_seconds for r in group]
            )
            points.append(
                TradeoffPoint(
                    algorithm=code,
                    family=family,
                    dataset=dataset,
                    mean_f1=float(f1.mean()),
                    mean_seconds=float(seconds.mean()),
                    n_graphs=len(group),
                )
            )
    return points


def dominating_points(points: list[TradeoffPoint]) -> list[TradeoffPoint]:
    """The Pareto frontier of a trade-off scatter."""
    return [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
