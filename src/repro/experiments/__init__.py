"""Experiment drivers regenerating every table and figure of the paper.

The :mod:`repro.experiments.runner` executes the full protocol —
corpus generation, per-algorithm threshold sweeps on the
compiled-graph matching engine (optionally cell-parallel over a
process pool via the ``workers`` knob, results invariant under the
worker count), noise filtering — and caches the results; the analysis
modules aggregate those results into the paper's tables and figures:

* :mod:`repro.experiments.effectiveness` — Table 4, Table 5, Figure 3,
  and the score matrices behind the Nemenyi diagrams (Figures 2/7/8);
* :mod:`repro.experiments.efficiency` — Table 6 and Figure 4;
* :mod:`repro.experiments.thresholds` — Tables 8/9 and Figure 9;
* :mod:`repro.experiments.tradeoff` — Figures 5/10;
* :mod:`repro.experiments.sota` — Table 7.
"""

from repro.experiments.config import (
    DEFAULT_BENCH_CONFIG,
    SMOKE_CONFIG,
    ExperimentConfig,
)
from repro.experiments.dirty_er import run_dirty_er_sweeps
from repro.experiments.runner import (
    GraphRunResult,
    run_experiments,
)

__all__ = [
    "ExperimentConfig",
    "DEFAULT_BENCH_CONFIG",
    "SMOKE_CONFIG",
    "GraphRunResult",
    "run_experiments",
    "run_dirty_er_sweeps",
]
