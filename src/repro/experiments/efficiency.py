"""Time-efficiency analyses: Table 6 and Figure 4.

The paper measures "the time that intervenes between receiving the
weighted similarity graph as input and returning the partitions as
output" at the optimal threshold.  Here every sweep point carries its
measured runtime — the *warm-engine marginal* seconds recorded by the
sweep engine, which uniformly exclude the per-graph one-off work (the
compile shared by all algorithms plus an algorithm's own
threshold-independent kernel state, warmed by an untimed call before
the timed grid).  Absolute numbers therefore sit below the paper's
isolated cold runs, but every algorithm is measured under the same
rule, preserving the cross-algorithm comparison; Table 6 aggregates
the runtime of the optimal point per (algorithm, dataset, family) and
Figure 4 relates runtime to graph size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import GraphRunResult
from repro.matching.registry import PAPER_ALGORITHM_CODES

__all__ = [
    "RuntimeCell",
    "runtime_table",
    "scalability_points",
    "runtime_rank_order",
]


@dataclass(frozen=True)
class RuntimeCell:
    """Mean ± std runtime (seconds) of one algorithm on one setting."""

    algorithm: str
    dataset: str
    family: str
    mean_seconds: float
    std_seconds: float
    n_graphs: int


def runtime_table(
    results: list[GraphRunResult],
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
) -> list[RuntimeCell]:
    """Table 6: mean runtime per algorithm x dataset x family."""
    cells: list[RuntimeCell] = []
    keys = sorted({(r.dataset, r.family) for r in results})
    for dataset, family in keys:
        group = [
            r for r in results if r.dataset == dataset and r.family == family
        ]
        for code in codes:
            seconds = np.array(
                [r.sweeps[code].best_seconds for r in group]
            )
            cells.append(
                RuntimeCell(
                    algorithm=code,
                    dataset=dataset,
                    family=family,
                    mean_seconds=float(seconds.mean()),
                    std_seconds=float(seconds.std()),
                    n_graphs=len(group),
                )
            )
    return cells


def scalability_points(
    results: list[GraphRunResult],
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
) -> dict[str, dict[str, list[tuple[int, float]]]]:
    """Figure 4: ``{family: {algorithm: [(n_edges, seconds), ...]}}``.

    One point per similarity graph, runtime taken at the optimal
    threshold — the scatter the paper plots per input family.
    """
    figure: dict[str, dict[str, list[tuple[int, float]]]] = {}
    for result in results:
        by_algorithm = figure.setdefault(
            result.family, {code: [] for code in codes}
        )
        for code in codes:
            by_algorithm[code].append(
                (result.n_edges, result.sweeps[code].best_seconds)
            )
    return figure


def runtime_rank_order(
    results: list[GraphRunResult],
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
) -> list[str]:
    """Algorithms ordered by mean runtime across all graphs (fastest
    first) — the paper's QT(1) headline."""
    means = {
        code: float(
            np.mean([r.sweeps[code].best_seconds for r in results])
        )
        for code in codes
    }
    return sorted(means, key=means.get)
