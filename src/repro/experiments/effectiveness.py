"""Effectiveness analyses: Table 4, Figure 3, Table 5, Figures 2/7/8.

All functions aggregate :class:`~repro.experiments.runner.GraphRunResult`
lists produced by the compiled-graph sweep engine
(:func:`~repro.experiments.runner.run_matching_sweeps`, serial or
cell-parallel — the aggregates are invariant either way); each
algorithm's per-graph performance is the best point of its threshold
sweep, as in the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import GraphRunResult
from repro.matching.registry import PAPER_ALGORITHM_CODES

__all__ = [
    "MacroScores",
    "macro_effectiveness",
    "family_effectiveness",
    "score_matrix",
    "TopCounts",
    "top_counts",
]


@dataclass(frozen=True)
class MacroScores:
    """Macro-averaged effectiveness of one algorithm (a Table 4 row)."""

    algorithm: str
    precision_mu: float
    precision_sigma: float
    recall_mu: float
    recall_sigma: float
    f1_mu: float
    f1_sigma: float
    n_graphs: int


def _best_scores(
    results: list[GraphRunResult], code: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    precision, recall, f1 = [], [], []
    for result in results:
        best = result.sweeps[code].best_scores
        precision.append(best.precision)
        recall.append(best.recall)
        f1.append(best.f_measure)
    return np.array(precision), np.array(recall), np.array(f1)


def macro_effectiveness(
    results: list[GraphRunResult],
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
) -> list[MacroScores]:
    """Table 4: macro-average P/R/F1 (mu, sigma) per algorithm."""
    rows = []
    for code in codes:
        precision, recall, f1 = _best_scores(results, code)
        rows.append(
            MacroScores(
                algorithm=code,
                precision_mu=float(precision.mean()) if len(precision) else 0.0,
                precision_sigma=float(precision.std()) if len(precision) else 0.0,
                recall_mu=float(recall.mean()) if len(recall) else 0.0,
                recall_sigma=float(recall.std()) if len(recall) else 0.0,
                f1_mu=float(f1.mean()) if len(f1) else 0.0,
                f1_sigma=float(f1.std()) if len(f1) else 0.0,
                n_graphs=len(results),
            )
        )
    return rows


def family_effectiveness(
    results: list[GraphRunResult],
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
) -> dict[str, list[MacroScores]]:
    """Figure 3: per-family macro effectiveness distributions."""
    families = sorted({r.family for r in results})
    return {
        family: macro_effectiveness(
            [r for r in results if r.family == family], codes
        )
        for family in families
    }


def score_matrix(
    results: list[GraphRunResult],
    metric: str = "f_measure",
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
) -> np.ndarray:
    """``N x k`` matrix of per-graph best scores (Nemenyi input).

    ``metric`` is ``"f_measure"``, ``"precision"`` or ``"recall"``.
    """
    if metric not in ("f_measure", "precision", "recall"):
        raise ValueError(f"unknown metric {metric!r}")
    matrix = np.zeros((len(results), len(codes)))
    for row, result in enumerate(results):
        for col, code in enumerate(codes):
            matrix[row, col] = getattr(
                result.sweeps[code].best_scores, metric
            )
    return matrix


@dataclass
class TopCounts:
    """Table 5 cell: #Top1, average Delta (%), #Top2 per algorithm."""

    algorithm: str
    top1: int = 0
    top2: int = 0
    delta_sum: float = 0.0

    @property
    def delta_percent(self) -> float:
        """Average margin over the runner-up, as a percentage."""
        if self.top1 == 0:
            return 0.0
        return 100.0 * self.delta_sum / self.top1


def top_counts(
    results: list[GraphRunResult],
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
    tie_tolerance: float = 1e-9,
) -> dict[tuple[str, str], dict[str, TopCounts]]:
    """Table 5: per (family, category), the #Top1 / Delta / #Top2 stats.

    Ties increment #Top1 (resp. #Top2) of all tied algorithms, as the
    paper notes.  Returns ``{(family, category): {code: TopCounts}}``.
    """
    grouped: dict[tuple[str, str], dict[str, TopCounts]] = {}
    for result in results:
        key = (result.family, result.category)
        counters = grouped.setdefault(
            key, {code: TopCounts(code) for code in codes}
        )
        scores = {code: result.best_f1(code) for code in codes}
        values = sorted(set(scores.values()), reverse=True)
        best = values[0]
        second = values[1] if len(values) > 1 else values[0]
        for code, value in scores.items():
            if abs(value - best) <= tie_tolerance:
                counters[code].top1 += 1
                counters[code].delta_sum += best - second
            elif abs(value - second) <= tie_tolerance:
                counters[code].top2 += 1
    return grouped
