"""Experiment configurations.

``DEFAULT_BENCH_CONFIG`` is the laptop-scale counterpart of the
paper's full protocol: all ten datasets, all four input families, a
reduced but representative similarity-function taxonomy, and BAH
budgets scaled from the paper's (10,000 steps / 2 minutes) to keep the
stochastic search meaningful without dominating the wall clock.

``SMOKE_CONFIG`` is the tiny profile used by integration tests.

Environment knobs: ``REPRO_SCALE`` / ``REPRO_MAX_PAIRS`` resize the
datasets (see :mod:`repro.datasets.catalog`), ``REPRO_CACHE`` moves
the cache directory (default ``.repro_cache/`` in the working
directory).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.evaluation.sweep import DEFAULT_THRESHOLD_GRID
from repro.pipeline.workbench import GraphCorpusConfig

__all__ = [
    "ExperimentConfig",
    "DEFAULT_BENCH_CONFIG",
    "SMOKE_CONFIG",
    "default_cache_dir",
]


def default_cache_dir() -> Path:
    """Cache directory, from ``REPRO_CACHE`` (default .repro_cache)."""
    return Path(os.environ.get("REPRO_CACHE", ".repro_cache"))


@dataclass(frozen=True)
class ExperimentConfig:
    """Full protocol configuration: corpus + sweep + BAH budgets."""

    corpus: GraphCorpusConfig = field(default_factory=GraphCorpusConfig)
    grid: tuple[float, ...] = DEFAULT_THRESHOLD_GRID
    bah_max_moves: int = 2_000
    bah_time_limit: float = 2.0
    bah_seed: int = 42
    apply_noise_filter: bool = True
    apply_duplicate_filter: bool = True

    def cache_key(self) -> str:
        payload = json.dumps(
            {
                "corpus": self.corpus.cache_key(),
                "grid": self.grid,
                "bah": [self.bah_max_moves, self.bah_time_limit,
                        self.bah_seed],
                "filters": [self.apply_noise_filter,
                            self.apply_duplicate_filter],
            },
            sort_keys=True,
        )
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=8
        ).hexdigest()


#: Laptop-scale default: every dataset, every family, a representative
#: slice of the similarity-function taxonomy (6 schema-based measures,
#: 2 n-gram models, all vector measures, 2 graph measures, both
#: semantic models with all 3 measures, first schema attribute only).
DEFAULT_BENCH_CONFIG = ExperimentConfig(
    corpus=GraphCorpusConfig(
        scale=0.05,
        max_pairs=20_000,
        schema_based_measures=(
            "levenshtein",
            "jaro",
            "qgrams",
            "cosine_tokens",
            "jaccard",
            "monge_elkan",
        ),
        ngram_models=(("char", 3), ("token", 1)),
        graph_measures=("containment", "overall"),
        max_attributes=1,
    ),
)

#: Tiny profile for integration tests: two datasets, a handful of
#: functions, reduced sweep budgets.
SMOKE_CONFIG = ExperimentConfig(
    corpus=GraphCorpusConfig(
        datasets=("d1", "d2"),
        scale=0.03,
        max_pairs=4_000,
        schema_based_measures=("levenshtein", "jaccard"),
        ngram_models=(("token", 1),),
        vector_measures=("cosine_tfidf", "jaccard"),
        graph_measures=("containment",),
        semantic_models=("fasttext_like",),
        semantic_measures=("cosine",),
        max_attributes=1,
    ),
    bah_max_moves=300,
    bah_time_limit=1.0,
)
