"""Experiment runner: the paper's full protocol over the graph corpus.

For every graph of the corpus, every algorithm runs a full threshold
sweep; BMC runs once per basis collection and keeps the better sweep
("we examine both options and retain the best one").  The paper's
noise and duplicate filters are then applied, and the surviving
results are cached as JSON so the table/figure benches aggregate
without re-running anything.

The sweeps run on the compiled-graph matching engine
(:mod:`repro.graph.compiled` + ``Matcher.match_compiled``): each graph
is compiled once and shared by all algorithms and thresholds.  With
``workers > 1`` whole graphs are distributed over a process pool — the
same knob PR 1 introduced for corpus generation — one task (and one
graph pickle) per graph instead of one per ``(graph, algorithm)``
cell, so a corpus of large graphs crosses the process boundary once
per graph and the compiled artifacts are shared by all ten algorithms
inside the worker.  The assembled results are invariant under the
worker count: graphs are independent, every stochastic matcher is
seeded per cell, and assembly follows the deterministic
``(graph index, algorithm order)`` grid.

When the corpus itself must be (re)generated, ``artifact_store``
hands :func:`~repro.pipeline.workbench.generate_corpus` a persistent
cross-run store (:mod:`repro.pipeline.store`) so embeddings, token
matrices and entity graphs built by any earlier run over the same
datasets are loaded instead of rebuilt.  Like ``workers``, it changes
wall-clock only — results and cache keys are invariant.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.evaluation.filtering import find_duplicate_inputs, is_noisy_graph
from repro.evaluation.metrics import GroundTruthIndex
from repro.evaluation.sweep import (
    SweepResult,
    sweeps_from_payload,
    sweeps_to_payload,
    threshold_sweep,
    threshold_sweep_best_of,
)
from repro.experiments.config import ExperimentConfig, default_cache_dir
from repro.graph.bipartite import SimilarityGraph
from repro.matching import (
    BestAssignmentHeuristic,
    BestMatchClustering,
    create_matcher,
)
from repro.matching.registry import PAPER_ALGORITHM_CODES
from repro.pipeline.resilience import (
    JournalCodec,
    ResilientPool,
    RetryPolicy,
    RunJournal,
    Task,
)
from repro.pipeline.workbench import GraphRecord, generate_corpus

__all__ = ["GraphRunResult", "run_experiments", "run_matching_sweeps"]

_RESULTS_NAME = "results.json"


@dataclass
class GraphRunResult:
    """All algorithms' sweep results on one similarity graph.

    ``candidate_reduction`` carries the blocking layer's
    dense-cells-per-candidate-pair factor from corpus generation
    (1.0 for an unblocked corpus) so downstream reports can relate
    matching quality to pair savings.
    """

    dataset: str
    family: str
    function: str
    category: str
    n_edges: int
    normalized_size: float
    sweeps: dict[str, SweepResult] = field(default_factory=dict)
    candidate_reduction: float = 1.0

    def best_f1(self, code: str) -> float:
        return self.sweeps[code].best_scores.f_measure

    def best_threshold(self, code: str) -> float:
        return self.sweeps[code].best_threshold


def run_experiments(
    config: ExperimentConfig,
    cache_dir: str | Path | None = None,
    progress: bool = False,
    workers: int | None = None,
    artifact_store: str | Path | None = None,
    store_read_tier: str | Path | None = None,
    resume: bool = False,
    policy: RetryPolicy | None = None,
    max_memory: int | None = None,
) -> list[GraphRunResult]:
    """Execute (or load from cache) the full experimental protocol.

    ``workers`` parallelizes both stages: corpus generation (see
    :func:`repro.pipeline.workbench.generate_corpus`) and the
    per-graph matching sweeps (see :func:`run_matching_sweeps`).
    ``artifact_store`` points corpus generation at a persistent
    cross-run artifact store (:mod:`repro.pipeline.store`) and
    ``store_read_tier`` layers a shared read-only store directory
    under it.  ``max_memory`` (bytes) bounds corpus generation's peak
    memory through the sharded execution tier
    (:mod:`repro.pipeline.sharding`).  None of the four has any effect
    on the results or on any cache key.

    Both stages journal completed work under ``<cache>/journal`` as it
    lands (see :mod:`repro.pipeline.resilience`); after an interrupted
    run, ``resume=True`` skips everything already journaled and the
    assembled results are bit-identical to an uninterrupted run.  The
    journal is cleared on success (the results cache takes over) and
    on any non-resume start.  ``policy`` overrides the retry/deadline
    defaults of the resilient runner.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    cache_dir = Path(cache_dir)
    results_path = cache_dir / "experiments" / (
        config.cache_key() + "_" + _RESULTS_NAME
    )
    if results_path.exists():
        return _load_results(results_path)

    journal_root = cache_dir / "journal"
    corpus = generate_corpus(
        config.corpus,
        cache_dir=cache_dir / "corpus",
        progress=progress,
        workers=workers,
        artifact_store=artifact_store,
        store_read_tier=store_read_tier,
        resume=resume,
        journal_dir=journal_root,
        policy=policy,
        max_memory=max_memory,
    )
    n_workers = workers if workers is not None else config.corpus.workers
    sweep_journal = RunJournal(journal_root, f"sweeps-{config.cache_key()}")
    if not resume:
        sweep_journal.clear()
    results = run_matching_sweeps(
        corpus,
        config,
        progress=progress,
        workers=n_workers,
        policy=policy,
        journal=sweep_journal,
    )
    results = _apply_filters(results, config)

    results_path.parent.mkdir(parents=True, exist_ok=True)
    _store_results(results_path, results)
    sweep_journal.clear()
    return results


def run_matching_sweeps(
    records: list[GraphRecord],
    config: ExperimentConfig,
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
    progress: bool = False,
    workers: int = 1,
    policy: RetryPolicy | None = None,
    journal: RunJournal | None = None,
) -> list[GraphRunResult]:
    """Threshold-sweep every algorithm over every corpus record.

    The unit of parallel work is one *graph*: with ``workers > 1``
    each record is submitted to the process pool once — one graph
    pickle carrying all algorithm sweeps — instead of once per
    ``(graph, algorithm)`` cell, so large graphs cross the process
    boundary a single time and the worker's compiled-graph artifacts
    are shared by every algorithm.  A single-record corpus falls back
    to one task per algorithm so the pool is still used.  Results are
    assembled on the deterministic ``(record index, algorithm order)``
    grid, so the output is identical to a serial run for any worker
    count.

    Execution runs on the shared :class:`ResilientPool` (retries,
    deadlines, broken-pool recovery — :mod:`repro.pipeline.resilience`);
    a permanently failed cell raises
    :class:`~repro.pipeline.resilience.ResilienceError` naming the
    ``index:dataset:function:codes`` task key of every failed graph,
    with pending work cancelled instead of silently lost.  Pass a
    ``journal`` to commit each finished graph's sweeps to disk as it
    lands and to skip already-journaled graphs on a resumed run.
    """
    code_tag = "-".join(codes)
    single = workers > 1 and len(records) == 1 and len(codes) > 1
    if single:
        # A lone graph cannot be split by record; fall back to one
        # task per algorithm so the pool still has work (the graph is
        # pickled per algorithm, but there is only one graph to ship).
        record = records[0]
        tasks = [
            Task(
                key=f"000:{record.dataset}:{record.function}:{code}",
                fn=_sweep_graph,
                args=(record.graph, record.ground_truth, (code,), config),
            )
            for code in codes
        ]
        record_by_key = {}
    else:
        tasks = [
            Task(
                key=f"{index:03d}:{record.dataset}"
                f":{record.function}:{code_tag}",
                fn=_sweep_graph,
                args=(record.graph, record.ground_truth, codes, config),
            )
            for index, record in enumerate(records)
        ]
        record_by_key = {
            task.key: record for task, record in zip(tasks, records)
        }

    on_result = None
    if progress and not single:

        def on_result(key, sweeps):
            # Stream each graph as it lands (possibly out of
            # submission order).
            _print_progress(record_by_key[key], sweeps)

    runner = ResilientPool(
        workers,
        kind="process",
        policy=policy,
        journal=journal,
        codec=SWEEP_JOURNAL_CODEC,
        label="sweeps",
    )
    results_by_key = runner.run(tasks, on_result=on_result)

    if single:
        merged: dict[str, SweepResult] = {}
        for task in tasks:
            merged.update(results_by_key[task.key])
        sweeps = {code: merged[code] for code in codes}
        if progress:
            _print_progress(records[0], sweeps)
        all_sweeps = [sweeps]
    else:
        all_sweeps = [results_by_key[task.key] for task in tasks]

    return [
        GraphRunResult(
            dataset=record.dataset,
            family=record.family,
            function=record.function,
            category=record.category,
            n_edges=record.n_edges,
            normalized_size=record.graph.density,
            sweeps=sweeps,
            candidate_reduction=getattr(
                record, "candidate_reduction", 1.0
            ),
        )
        for record, sweeps in zip(records, all_sweeps)
    ]


def _print_progress(record: GraphRecord, sweeps: dict[str, SweepResult]):
    best = max(sweeps.values(), key=lambda s: s.best_scores.f_measure)
    print(
        f"[runner] {record.dataset} {record.function}: top F1 "
        f"{best.best_scores.f_measure:.3f} ({best.algorithm})"
    )


def _sweep_graph(
    graph: SimilarityGraph,
    ground_truth: set[tuple[int, int]],
    codes: tuple[str, ...],
    config: ExperimentConfig,
) -> dict[str, SweepResult]:
    """One process-pool work unit: all algorithm sweeps of one graph.

    The ground-truth index and the compiled-graph artifacts are built
    once in the worker and shared by every algorithm.
    """
    truth_index = GroundTruthIndex(ground_truth)
    sweeps = {
        code: _sweep_algorithm(
            code, graph, ground_truth, config, truth_index
        )
        for code in codes
    }
    # The compiled artifacts served their sweep; release them so
    # corpus-sized serial runs do not accumulate derived arrays (in a
    # pool worker the graph is a private pickle copy and this is moot).
    graph.release_compiled()
    return sweeps


def _sweep_algorithm(
    code: str,
    graph: SimilarityGraph,
    ground_truth: set[tuple[int, int]],
    config: ExperimentConfig,
    truth_index: GroundTruthIndex,
) -> SweepResult:
    """Sweep ``code`` with the paper's per-algorithm configuration."""
    if code == "BMC":
        return threshold_sweep_best_of(
            [
                BestMatchClustering(basis="left"),
                BestMatchClustering(basis="right"),
            ],
            graph,
            ground_truth,
            config.grid,
            truth_index=truth_index,
        )
    if code == "BAH":
        matcher = BestAssignmentHeuristic(
            max_moves=config.bah_max_moves,
            time_limit=config.bah_time_limit,
            seed=config.bah_seed,
        )
    else:
        matcher = create_matcher(code)
    return threshold_sweep(
        matcher,
        graph,
        ground_truth,
        config.grid,
        truth_index=truth_index,
    )


def _apply_filters(
    results: list[GraphRunResult], config: ExperimentConfig
) -> list[GraphRunResult]:
    if config.apply_noise_filter:
        results = [r for r in results if not is_noisy_graph(r.sweeps)]
    if config.apply_duplicate_filter:
        entries = [(r.dataset, r.n_edges, r.sweeps) for r in results]
        duplicates = find_duplicate_inputs(entries)
        results = [
            r for i, r in enumerate(results) if i not in duplicates
        ]
    return results


# ----------------------------------------------------------------------
# Result (de)serialization
# ----------------------------------------------------------------------
def _store_results(path: Path, results: list[GraphRunResult]) -> None:
    payload = []
    for result in results:
        payload.append(
            {
                "dataset": result.dataset,
                "family": result.family,
                "function": result.function,
                "category": result.category,
                "n_edges": result.n_edges,
                "normalized_size": result.normalized_size,
                "candidate_reduction": result.candidate_reduction,
                "sweeps": sweeps_to_payload(result.sweeps),
            }
        )
    path.write_text(json.dumps(payload))


def _load_results(path: Path) -> list[GraphRunResult]:
    payload = json.loads(path.read_text())
    results = []
    for entry in payload:
        results.append(
            GraphRunResult(
                dataset=entry["dataset"],
                family=entry["family"],
                function=entry["function"],
                category=entry["category"],
                n_edges=entry["n_edges"],
                normalized_size=entry["normalized_size"],
                sweeps=sweeps_from_payload(entry["sweeps"]),
                candidate_reduction=entry.get("candidate_reduction", 1.0),
            )
        )
    return results


# ----------------------------------------------------------------------
# Journal codec: one graph's sweeps as a JSON entry
# ----------------------------------------------------------------------
def _write_sweeps_entry(sweeps: dict[str, SweepResult], path: Path) -> None:
    (path / "sweeps.json").write_text(json.dumps(sweeps_to_payload(sweeps)))


def _read_sweeps_entry(path: Path) -> dict[str, SweepResult]:
    return sweeps_from_payload(
        json.loads((path / "sweeps.json").read_text())
    )


#: How one matching-sweep task result journals (shared with dirty-ER
#: and the CLI sweep command — a sweeps dict is a sweeps dict).
SWEEP_JOURNAL_CODEC = JournalCodec(
    write=_write_sweeps_entry, read=_read_sweeps_entry
)
