"""Experiment runner: the paper's full protocol over the graph corpus.

For every graph of the corpus, every algorithm runs a full threshold
sweep; BMC runs once per basis collection and keeps the better sweep
("we examine both options and retain the best one").  The paper's
noise and duplicate filters are then applied, and the surviving
results are cached as JSON so the table/figure benches aggregate
without re-running anything.

The sweeps run on the compiled-graph matching engine
(:mod:`repro.graph.compiled` + ``Matcher.match_compiled``): each graph
is compiled once and shared by all algorithms and thresholds.  With
``workers > 1`` whole graphs are distributed over a process pool — the
same knob PR 1 introduced for corpus generation — one task (and one
graph pickle) per graph instead of one per ``(graph, algorithm)``
cell, so a corpus of large graphs crosses the process boundary once
per graph and the compiled artifacts are shared by all ten algorithms
inside the worker.  The assembled results are invariant under the
worker count: graphs are independent, every stochastic matcher is
seeded per cell, and assembly follows the deterministic
``(graph index, algorithm order)`` grid.

When the corpus itself must be (re)generated, ``artifact_store``
hands :func:`~repro.pipeline.workbench.generate_corpus` a persistent
cross-run store (:mod:`repro.pipeline.store`) so embeddings, token
matrices and entity graphs built by any earlier run over the same
datasets are loaded instead of rebuilt.  Like ``workers``, it changes
wall-clock only — results and cache keys are invariant.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from repro.evaluation.filtering import find_duplicate_inputs, is_noisy_graph
from repro.evaluation.metrics import EffectivenessScores, GroundTruthIndex
from repro.evaluation.sweep import (
    SweepPoint,
    SweepResult,
    threshold_sweep,
    threshold_sweep_best_of,
)
from repro.experiments.config import ExperimentConfig, default_cache_dir
from repro.graph.bipartite import SimilarityGraph
from repro.matching import (
    BestAssignmentHeuristic,
    BestMatchClustering,
    create_matcher,
)
from repro.matching.registry import PAPER_ALGORITHM_CODES
from repro.pipeline.workbench import GraphRecord, generate_corpus

__all__ = ["GraphRunResult", "run_experiments", "run_matching_sweeps"]

_RESULTS_NAME = "results.json"


@dataclass
class GraphRunResult:
    """All algorithms' sweep results on one similarity graph."""

    dataset: str
    family: str
    function: str
    category: str
    n_edges: int
    normalized_size: float
    sweeps: dict[str, SweepResult] = field(default_factory=dict)

    def best_f1(self, code: str) -> float:
        return self.sweeps[code].best_scores.f_measure

    def best_threshold(self, code: str) -> float:
        return self.sweeps[code].best_threshold


def run_experiments(
    config: ExperimentConfig,
    cache_dir: str | Path | None = None,
    progress: bool = False,
    workers: int | None = None,
    artifact_store: str | Path | None = None,
    store_read_tier: str | Path | None = None,
) -> list[GraphRunResult]:
    """Execute (or load from cache) the full experimental protocol.

    ``workers`` parallelizes both stages: corpus generation (see
    :func:`repro.pipeline.workbench.generate_corpus`) and the
    per-graph matching sweeps (see :func:`run_matching_sweeps`).
    ``artifact_store`` points corpus generation at a persistent
    cross-run artifact store (:mod:`repro.pipeline.store`) and
    ``store_read_tier`` layers a shared read-only store directory
    under it.  None of the three has any effect on the results or on
    any cache key.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    cache_dir = Path(cache_dir)
    results_path = cache_dir / "experiments" / (
        config.cache_key() + "_" + _RESULTS_NAME
    )
    if results_path.exists():
        return _load_results(results_path)

    corpus = generate_corpus(
        config.corpus,
        cache_dir=cache_dir / "corpus",
        progress=progress,
        workers=workers,
        artifact_store=artifact_store,
        store_read_tier=store_read_tier,
    )
    n_workers = workers if workers is not None else config.corpus.workers
    results = run_matching_sweeps(
        corpus, config, progress=progress, workers=n_workers
    )
    results = _apply_filters(results, config)

    results_path.parent.mkdir(parents=True, exist_ok=True)
    _store_results(results_path, results)
    return results


def run_matching_sweeps(
    records: list[GraphRecord],
    config: ExperimentConfig,
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
    progress: bool = False,
    workers: int = 1,
) -> list[GraphRunResult]:
    """Threshold-sweep every algorithm over every corpus record.

    The unit of parallel work is one *graph*: with ``workers > 1``
    each record is submitted to the process pool once — one graph
    pickle carrying all algorithm sweeps — instead of once per
    ``(graph, algorithm)`` cell, so large graphs cross the process
    boundary a single time and the worker's compiled-graph artifacts
    are shared by every algorithm.  A single-record corpus falls back
    to one task per algorithm so the pool is still used.  Results are
    assembled on the deterministic ``(record index, algorithm order)``
    grid, so the output is identical to a serial run for any worker
    count.
    """
    if workers > 1 and len(records) == 1 and len(codes) > 1:
        # A lone graph cannot be split by record; fall back to one
        # task per algorithm so the pool still has work (the graph is
        # pickled per algorithm, but there is only one graph to ship).
        record = records[0]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            code_futures = [
                pool.submit(
                    _sweep_graph,
                    record.graph,
                    record.ground_truth,
                    (code,),
                    config,
                )
                for code in codes
            ]
            merged: dict[str, SweepResult] = {}
            for future in code_futures:
                merged.update(future.result())
        sweeps = {code: merged[code] for code in codes}
        if progress:
            _print_progress(record, sweeps)
        all_sweeps = [sweeps]
    elif workers > 1 and len(records) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _sweep_graph,
                    record.graph,
                    record.ground_truth,
                    codes,
                    config,
                ): index
                for index, record in enumerate(records)
            }
            by_index: dict[int, dict[str, SweepResult]] = {}
            for future in as_completed(futures):
                index = futures[future]
                by_index[index] = future.result()
                if progress:
                    # Stream each graph as it lands (possibly out of
                    # submission order).
                    _print_progress(records[index], by_index[index])
        all_sweeps = [by_index[index] for index in range(len(records))]
    else:
        all_sweeps = []
        for record in records:
            truth_index = GroundTruthIndex(record.ground_truth)
            sweeps = {
                code: _sweep_algorithm(
                    code,
                    record.graph,
                    record.ground_truth,
                    config,
                    truth_index,
                )
                for code in codes
            }
            # The compiled artifacts served their sweep; release them
            # so corpus-sized runs do not accumulate derived arrays.
            record.graph.release_compiled()
            if progress:
                _print_progress(record, sweeps)
            all_sweeps.append(sweeps)

    return [
        GraphRunResult(
            dataset=record.dataset,
            family=record.family,
            function=record.function,
            category=record.category,
            n_edges=record.n_edges,
            normalized_size=record.graph.density,
            sweeps=sweeps,
        )
        for record, sweeps in zip(records, all_sweeps)
    ]


def _print_progress(record: GraphRecord, sweeps: dict[str, SweepResult]):
    best = max(sweeps.values(), key=lambda s: s.best_scores.f_measure)
    print(
        f"[runner] {record.dataset} {record.function}: top F1 "
        f"{best.best_scores.f_measure:.3f} ({best.algorithm})"
    )


def _sweep_graph(
    graph: SimilarityGraph,
    ground_truth: set[tuple[int, int]],
    codes: tuple[str, ...],
    config: ExperimentConfig,
) -> dict[str, SweepResult]:
    """One process-pool work unit: all algorithm sweeps of one graph.

    The ground-truth index and the compiled-graph artifacts are built
    once in the worker and shared by every algorithm.
    """
    truth_index = GroundTruthIndex(ground_truth)
    return {
        code: _sweep_algorithm(
            code, graph, ground_truth, config, truth_index
        )
        for code in codes
    }


def _sweep_algorithm(
    code: str,
    graph: SimilarityGraph,
    ground_truth: set[tuple[int, int]],
    config: ExperimentConfig,
    truth_index: GroundTruthIndex,
) -> SweepResult:
    """Sweep ``code`` with the paper's per-algorithm configuration."""
    if code == "BMC":
        return threshold_sweep_best_of(
            [
                BestMatchClustering(basis="left"),
                BestMatchClustering(basis="right"),
            ],
            graph,
            ground_truth,
            config.grid,
            truth_index=truth_index,
        )
    if code == "BAH":
        matcher = BestAssignmentHeuristic(
            max_moves=config.bah_max_moves,
            time_limit=config.bah_time_limit,
            seed=config.bah_seed,
        )
    else:
        matcher = create_matcher(code)
    return threshold_sweep(
        matcher,
        graph,
        ground_truth,
        config.grid,
        truth_index=truth_index,
    )


def _apply_filters(
    results: list[GraphRunResult], config: ExperimentConfig
) -> list[GraphRunResult]:
    if config.apply_noise_filter:
        results = [r for r in results if not is_noisy_graph(r.sweeps)]
    if config.apply_duplicate_filter:
        entries = [(r.dataset, r.n_edges, r.sweeps) for r in results]
        duplicates = find_duplicate_inputs(entries)
        results = [
            r for i, r in enumerate(results) if i not in duplicates
        ]
    return results


# ----------------------------------------------------------------------
# Result (de)serialization
# ----------------------------------------------------------------------
def _store_results(path: Path, results: list[GraphRunResult]) -> None:
    payload = []
    for result in results:
        payload.append(
            {
                "dataset": result.dataset,
                "family": result.family,
                "function": result.function,
                "category": result.category,
                "n_edges": result.n_edges,
                "normalized_size": result.normalized_size,
                "sweeps": {
                    code: [
                        [
                            point.threshold,
                            point.scores.precision,
                            point.scores.recall,
                            point.scores.f_measure,
                            point.scores.true_positives,
                            point.scores.output_pairs,
                            point.scores.ground_truth_pairs,
                            point.seconds,
                        ]
                        for point in sweep.points
                    ]
                    for code, sweep in result.sweeps.items()
                },
            }
        )
    path.write_text(json.dumps(payload))


def _load_results(path: Path) -> list[GraphRunResult]:
    payload = json.loads(path.read_text())
    results = []
    for entry in payload:
        sweeps = {}
        for code, points in entry["sweeps"].items():
            sweep = SweepResult(algorithm=code)
            for (
                threshold, precision, recall, f_measure,
                true_positives, output_pairs, truth_pairs, seconds,
            ) in points:
                sweep.points.append(
                    SweepPoint(
                        threshold=threshold,
                        scores=EffectivenessScores(
                            precision=precision,
                            recall=recall,
                            f_measure=f_measure,
                            true_positives=int(true_positives),
                            output_pairs=int(output_pairs),
                            ground_truth_pairs=int(truth_pairs),
                        ),
                        seconds=seconds,
                    )
                )
            sweeps[code] = sweep
        results.append(
            GraphRunResult(
                dataset=entry["dataset"],
                family=entry["family"],
                function=entry["function"],
                category=entry["category"],
                n_edges=entry["n_edges"],
                normalized_size=entry["normalized_size"],
                sweeps=sweeps,
            )
        )
    return results
