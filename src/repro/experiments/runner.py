"""Experiment runner: the paper's full protocol over the graph corpus.

For every graph of the corpus, every algorithm runs a full threshold
sweep; BMC runs once per basis collection and keeps the better sweep
("we examine both options and retain the best one").  The paper's
noise and duplicate filters are then applied, and the surviving
results are cached as JSON so the table/figure benches aggregate
without re-running anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.evaluation.filtering import find_duplicate_inputs, is_noisy_graph
from repro.evaluation.metrics import EffectivenessScores
from repro.evaluation.sweep import (
    SweepPoint,
    SweepResult,
    threshold_sweep,
    threshold_sweep_best_of,
)
from repro.experiments.config import ExperimentConfig, default_cache_dir
from repro.matching import (
    BestAssignmentHeuristic,
    BestMatchClustering,
    create_matcher,
)
from repro.matching.registry import PAPER_ALGORITHM_CODES
from repro.pipeline.workbench import GraphRecord, generate_corpus

__all__ = ["GraphRunResult", "run_experiments"]

_RESULTS_NAME = "results.json"


@dataclass
class GraphRunResult:
    """All algorithms' sweep results on one similarity graph."""

    dataset: str
    family: str
    function: str
    category: str
    n_edges: int
    normalized_size: float
    sweeps: dict[str, SweepResult] = field(default_factory=dict)

    def best_f1(self, code: str) -> float:
        return self.sweeps[code].best_scores.f_measure

    def best_threshold(self, code: str) -> float:
        return self.sweeps[code].best_threshold


def run_experiments(
    config: ExperimentConfig,
    cache_dir: str | Path | None = None,
    progress: bool = False,
    workers: int | None = None,
) -> list[GraphRunResult]:
    """Execute (or load from cache) the full experimental protocol.

    ``workers`` parallelizes corpus generation (see
    :func:`repro.pipeline.workbench.generate_corpus`); it has no
    effect on the results or on any cache key.
    """
    if cache_dir is None:
        cache_dir = default_cache_dir()
    cache_dir = Path(cache_dir)
    results_path = cache_dir / "experiments" / (
        config.cache_key() + "_" + _RESULTS_NAME
    )
    if results_path.exists():
        return _load_results(results_path)

    corpus = generate_corpus(
        config.corpus,
        cache_dir=cache_dir / "corpus",
        progress=progress,
        workers=workers,
    )
    results = [
        _run_graph(record, config, progress) for record in corpus
    ]
    results = _apply_filters(results, config)

    results_path.parent.mkdir(parents=True, exist_ok=True)
    _store_results(results_path, results)
    return results


def _run_graph(
    record: GraphRecord, config: ExperimentConfig, progress: bool
) -> GraphRunResult:
    sweeps: dict[str, SweepResult] = {}
    for code in PAPER_ALGORITHM_CODES:
        if code == "BMC":
            sweep = threshold_sweep_best_of(
                [
                    BestMatchClustering(basis="left"),
                    BestMatchClustering(basis="right"),
                ],
                record.graph,
                record.ground_truth,
                config.grid,
            )
        elif code == "BAH":
            matcher = BestAssignmentHeuristic(
                max_moves=config.bah_max_moves,
                time_limit=config.bah_time_limit,
                seed=config.bah_seed,
            )
            sweep = threshold_sweep(
                matcher, record.graph, record.ground_truth, config.grid
            )
        else:
            sweep = threshold_sweep(
                create_matcher(code),
                record.graph,
                record.ground_truth,
                config.grid,
            )
        sweeps[code] = sweep
    if progress:
        best = max(sweeps.values(), key=lambda s: s.best_scores.f_measure)
        print(
            f"[runner] {record.dataset} {record.function}: top F1 "
            f"{best.best_scores.f_measure:.3f} ({best.algorithm})"
        )
    return GraphRunResult(
        dataset=record.dataset,
        family=record.family,
        function=record.function,
        category=record.category,
        n_edges=record.n_edges,
        normalized_size=record.graph.density,
        sweeps=sweeps,
    )


def _apply_filters(
    results: list[GraphRunResult], config: ExperimentConfig
) -> list[GraphRunResult]:
    if config.apply_noise_filter:
        results = [r for r in results if not is_noisy_graph(r.sweeps)]
    if config.apply_duplicate_filter:
        entries = [(r.dataset, r.n_edges, r.sweeps) for r in results]
        duplicates = find_duplicate_inputs(entries)
        results = [
            r for i, r in enumerate(results) if i not in duplicates
        ]
    return results


# ----------------------------------------------------------------------
# Result (de)serialization
# ----------------------------------------------------------------------
def _store_results(path: Path, results: list[GraphRunResult]) -> None:
    payload = []
    for result in results:
        payload.append(
            {
                "dataset": result.dataset,
                "family": result.family,
                "function": result.function,
                "category": result.category,
                "n_edges": result.n_edges,
                "normalized_size": result.normalized_size,
                "sweeps": {
                    code: [
                        [
                            point.threshold,
                            point.scores.precision,
                            point.scores.recall,
                            point.scores.f_measure,
                            point.scores.true_positives,
                            point.scores.output_pairs,
                            point.scores.ground_truth_pairs,
                            point.seconds,
                        ]
                        for point in sweep.points
                    ]
                    for code, sweep in result.sweeps.items()
                },
            }
        )
    path.write_text(json.dumps(payload))


def _load_results(path: Path) -> list[GraphRunResult]:
    payload = json.loads(path.read_text())
    results = []
    for entry in payload:
        sweeps = {}
        for code, points in entry["sweeps"].items():
            sweep = SweepResult(algorithm=code)
            for (
                threshold, precision, recall, f_measure,
                true_positives, output_pairs, truth_pairs, seconds,
            ) in points:
                sweep.points.append(
                    SweepPoint(
                        threshold=threshold,
                        scores=EffectivenessScores(
                            precision=precision,
                            recall=recall,
                            f_measure=f_measure,
                            true_positives=int(true_positives),
                            output_pairs=int(output_pairs),
                            ground_truth_pairs=int(truth_pairs),
                        ),
                        seconds=seconds,
                    )
                )
            sweeps[code] = sweep
        results.append(
            GraphRunResult(
                dataset=entry["dataset"],
                family=entry["family"],
                function=entry["function"],
                category=entry["category"],
                n_edges=entry["n_edges"],
                normalized_size=entry["normalized_size"],
                sweeps=sweeps,
            )
        )
    return results
